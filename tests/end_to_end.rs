//! Cross-crate integration tests: full simulations through the public
//! facade API.

use std::sync::Arc;

use gridsched::prelude::*;

fn small_workload(seed: u64) -> Arc<Workload> {
    Arc::new(CoaddConfig::small(seed).generate())
}

/// Every strategy completes every task on a default-ish grid.
#[test]
fn all_strategies_complete() {
    let workload = small_workload(0);
    for strategy in [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
    ] {
        let config = SimConfig::paper(workload.clone(), strategy)
            .with_sites(4)
            .with_capacity(1000);
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200, "{strategy}");
        // Every completion had a compute start; executions aborted *during*
        // their data wait never start, so `started` is bounded by
        // completions plus every cancelled execution (losing replicas and
        // losing primaries alike).
        let cancelled = report.replicas_cancelled + report.primaries_cancelled;
        let started: u64 = report.per_site.iter().map(|s| s.tasks_started).sum();
        assert!(started >= 200, "{strategy}: starts cover completions");
        assert!(
            started <= 200 + cancelled,
            "{strategy}: starts {} exceed completions+cancels {}",
            started,
            200 + cancelled
        );
        // Fault-free replica books balance.
        assert_eq!(
            report.replicas_launched,
            report.replicas_cancelled + report.replicas_completed,
            "{strategy}"
        );
    }
}

/// Identical configs give bit-identical reports (full determinism).
#[test]
fn deterministic_end_to_end() {
    let make = || {
        let config = SimConfig::paper(small_workload(3), StrategyKind::Combined2)
            .with_sites(3)
            .with_seed(9)
            .with_topology_seed(2);
        GridSim::new(config).run()
    };
    assert_eq!(make(), make());
}

/// Bytes on the wire equal completed transfers × file size plus the
/// delivered fraction of cancelled transfers.
#[test]
fn bytes_accounting_consistent() {
    let workload = small_workload(1);
    let file_size = workload.file_size_bytes;
    for strategy in [StrategyKind::Rest, StrategyKind::StorageAffinity] {
        let config = SimConfig::paper(workload.clone(), strategy).with_sites(3);
        let report = GridSim::new(config).run();
        let expected_min = report.file_transfers as f64 * file_size;
        assert!(
            report.bytes_transferred >= expected_min - 1.0,
            "{strategy}: bytes {} < transfers×size {}",
            report.bytes_transferred,
            expected_min
        );
        // Partial (cancelled) deliveries can only add less than one file
        // size per cancelled execution (replica or losing primary).
        let cancelled = report.replicas_cancelled + report.primaries_cancelled;
        let slack = (cancelled as f64 + 1.0) * file_size;
        assert!(
            report.bytes_transferred <= expected_min + slack,
            "{strategy}: bytes {} too large",
            report.bytes_transferred
        );
    }
}

/// Per-site metrics sum to the global counters.
#[test]
fn per_site_sums_match_totals() {
    let config = SimConfig::paper(small_workload(2), StrategyKind::Rest2).with_sites(4);
    let report = GridSim::new(config).run();
    let site_transfers: u64 = report.per_site.iter().map(|s| s.file_transfers).sum();
    assert_eq!(site_transfers, report.file_transfers);
    let site_bytes: f64 = report.per_site.iter().map(|s| s.bytes_transferred).sum();
    assert!((site_bytes - report.bytes_transferred).abs() < 1.0);
    let requests: u64 = report.per_site.iter().map(|s| s.requests).sum();
    assert!(
        requests >= 200,
        "every task issues exactly one batch request"
    );
}

/// Locality-aware scheduling must beat the FIFO workqueue on transfers —
/// the premise of the whole paper.
#[test]
fn locality_beats_fifo() {
    let workload = small_workload(4);
    let run = |strategy| {
        let config = SimConfig::paper(workload.clone(), strategy).with_sites(4);
        GridSim::new(config).run()
    };
    let rest = run(StrategyKind::Rest);
    let wq = run(StrategyKind::Workqueue);
    assert!(rest.file_transfers < wq.file_transfers);
    assert!(rest.bytes_transferred < wq.bytes_transferred);
}

/// The `--quick`-style averaged runner reproduces per-replicate runs.
#[test]
fn averaged_runner_consistent_with_manual_average() {
    let workload = small_workload(5);
    let base = SimConfig::paper(workload, StrategyKind::Rest).with_sites(3);
    let avg = run_averaged(&base, &[0, 1]);
    let a = GridSim::new(base.clone().with_topology_seed(0).with_seed(0)).run();
    let b = GridSim::new(base.clone().with_topology_seed(1).with_seed(1)).run();
    assert!((avg.makespan_minutes - (a.makespan_minutes + b.makespan_minutes) / 2.0).abs() < 1e-6);
}

/// Worker-centric schedulers never replicate; storage affinity may.
#[test]
fn replication_only_for_task_centric() {
    let workload = small_workload(6);
    for strategy in [
        StrategyKind::Rest2,
        StrategyKind::Overlap,
        StrategyKind::Workqueue,
    ] {
        let config = SimConfig::paper(workload.clone(), strategy).with_sites(3);
        let report = GridSim::new(config).run();
        assert_eq!(report.replicas_launched, 0, "{strategy}");
        assert_eq!(report.cancelled_bytes, 0.0, "{strategy}");
    }
}

/// Heterogeneous workers: the faster the (single) site's worker, the
/// smaller the makespan — compute model sanity through the whole stack.
#[test]
fn faster_workers_finish_sooner() {
    let workload = small_workload(7);
    let run_with_speed = |speed| {
        let config = SimConfig::paper(workload.clone(), StrategyKind::Workqueue)
            .with_sites(1)
            .with_speeds(SpeedModel::Fixed(speed));
        GridSim::new(config).run().makespan_minutes
    };
    let slow = run_with_speed(5e10);
    let fast = run_with_speed(5e11);
    assert!(fast < slow);
    // Not 10× faster: the transfer component does not shrink.
    assert!(slow / fast < 10.0);
}
