//! Property-based invariants of whole simulations: random small grids and
//! workloads, every strategy, checked through the public API.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;
use gridsched::telemetry::{InstrumentValue, SpanPhase, Track};

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::StorageAffinity),
        Just(StrategyKind::Overlap),
        Just(StrategyKind::Rest),
        Just(StrategyKind::Combined),
        Just(StrategyKind::Rest2),
        Just(StrategyKind::Combined2),
        Just(StrategyKind::Workqueue),
    ]
}

proptest! {
    // Whole-simulation cases are comparatively expensive; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulations_complete_and_account(
        strategy in arb_strategy(),
        sites in 1usize..5,
        workers in 1usize..4,
        capacity in 120usize..2000,
        wl_seed in 0u64..4,
        seed in 0u64..4,
    ) {
        let mut cfg = CoaddConfig::small(wl_seed);
        cfg.tasks = 120;
        let workload = Arc::new(cfg.generate());
        let total_accesses: u64 =
            workload.tasks().iter().map(|t| t.file_count() as u64).sum();
        let config = SimConfig::paper(workload.clone(), strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(capacity)
            .with_seed(seed);
        let report = GridSim::new(config).run();

        // 1. Exactly-once completion.
        prop_assert_eq!(report.tasks_completed, 120);
        // 2. Transfers bounded by total accesses plus replica re-fetches.
        let bound = total_accesses * (1 + report.replicas_launched / 120 + 1);
        prop_assert!(report.file_transfers <= bound,
            "transfers {} > bound {}", report.file_transfers, bound);
        // 3. Makespan positive and finite.
        prop_assert!(report.makespan_minutes > 0.0);
        prop_assert!(report.makespan_minutes.is_finite());
        // 4. Per-site totals match.
        let site_sum: u64 = report.per_site.iter().map(|s| s.file_transfers).sum();
        prop_assert_eq!(site_sum, report.file_transfers);
        // 5. Requests: one batch per execution (task or replica).
        let requests: u64 = report.per_site.iter().map(|s| s.requests).sum();
        prop_assert!(requests >= 120);
        prop_assert!(requests <= 120 + report.replicas_launched);
        // 6. Waiting/transfer times non-negative.
        for s in &report.per_site {
            prop_assert!(s.waiting_time_s >= 0.0);
            prop_assert!(s.transfer_time_s >= 0.0);
        }
        // 7. Only task-centric strategies replicate.
        if strategy != StrategyKind::StorageAffinity {
            prop_assert_eq!(report.replicas_launched, 0);
        }
        // 8. Replica books balance: on a fault-free run every launched
        // replica either won its race or was cancelled by the winner —
        // cancelled speculative flows must never be double-counted as
        // completed work.
        prop_assert_eq!(
            report.replicas_launched,
            report.replicas_cancelled + report.replicas_completed,
            "launched != cancelled + completed"
        );
        prop_assert_eq!(report.replicas_lost, 0, "no faults, no lost replicas");
        prop_assert!(report.replicas_completed <= report.tasks_completed);
        // 9. Cancelled primaries are replica wins, never more.
        prop_assert!(report.primaries_cancelled <= report.replicas_completed);
    }

    /// The replica throttle preserves every completion/accounting
    /// invariant and never inflates the replica fan-out.
    #[test]
    fn throttled_storage_affinity_invariants(
        sites in 1usize..5,
        workers in 1usize..4,
        cap in 1u32..4,
        budget in 1u32..5,
        wl_seed in 0u64..3,
        seed in 0u64..3,
    ) {
        let mut cfg = CoaddConfig::small(wl_seed);
        cfg.tasks = 120;
        let workload = Arc::new(cfg.generate());
        let base = SimConfig::paper(workload, StrategyKind::StorageAffinity)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(800)
            .with_seed(seed);
        let uncapped = GridSim::new(base.clone()).run();
        let capped = GridSim::new(
            base.with_replica_cap(cap).with_site_replica_budget(budget),
        )
        .run();
        prop_assert_eq!(capped.tasks_completed, 120);
        prop_assert_eq!(
            capped.replicas_launched,
            capped.replicas_cancelled + capped.replicas_completed
        );
        prop_assert!(
            capped.replicas_launched <= uncapped.replicas_launched,
            "throttle inflated replicas: {} > {}",
            capped.replicas_launched,
            uncapped.replicas_launched
        );
    }

    /// Telemetry self-consistency on arbitrary runs: spans pair up, probe
    /// timestamps strictly increase, and histogram observation counts
    /// match their sibling counters exactly.
    #[test]
    fn telemetry_invariants_hold(
        strategy in arb_strategy(),
        sites in 2usize..5,
        workers in 1usize..4,
        seed in 0u64..3,
        churn in 0u8..2,
    ) {
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let mut config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(400)
            .with_seed(seed)
            .with_probe_interval(600.0);
        if churn == 1 {
            config = config
                .with_faults(
                    FaultConfig::none()
                        .with_worker_faults(3_000.0, 400.0)
                        .with_server_faults(25_000.0, 700.0),
                )
                .with_checkpointing(CheckpointConfig::fixed(300.0));
        }
        let telemetry = Telemetry::enabled();
        let report = GridSim::new(config)
            .with_telemetry(telemetry.clone())
            .run();
        prop_assert_eq!(report.tasks_completed, 80);

        // 1. Span pairing: on every track, every `B` has a matching later
        // `E` of the same name — depth never goes negative and every
        // opened span is closed exactly once by end of run.
        let mut depth: HashMap<(Track, &str), i64> = HashMap::new();
        let mut last_ts: HashMap<Track, f64> = HashMap::new();
        for ev in telemetry.trace_events() {
            // 2. Per-track timestamps never go backwards.
            let prev = last_ts.entry(ev.track).or_insert(ev.ts_s);
            prop_assert!(
                ev.ts_s >= *prev,
                "track {:?}: ts went backwards ({} < {})", ev.track, ev.ts_s, *prev
            );
            *prev = ev.ts_s;
            let d = depth.entry((ev.track, ev.name)).or_insert(0);
            match ev.phase {
                SpanPhase::Begin => *d += 1,
                SpanPhase::End => {
                    *d -= 1;
                    prop_assert!(
                        *d >= 0,
                        "track {:?}: `{}` closed more often than opened", ev.track, ev.name
                    );
                }
                SpanPhase::Instant => {}
            }
        }
        for ((track, name), d) in &depth {
            prop_assert_eq!(
                *d, 0,
                "track {:?}: `{}` left {} span(s) open at end of run", track, name, d
            );
        }

        // 3. Probe timestamps strictly increase and the shape is stable.
        let probes = telemetry.probes();
        prop_assert!(!probes.is_empty(), "probe sampler produced no samples");
        let mut prev_t = f64::NEG_INFINITY;
        for p in &probes {
            prop_assert!(
                p.t_s > prev_t,
                "probe timestamps not strictly increasing: {} after {}", p.t_s, prev_t
            );
            prev_t = p.t_s;
            prop_assert_eq!(p.sites.len(), sites);
            prop_assert_eq!(p.links_total, probes[0].links_total);
            prop_assert!(p.links_busy <= p.links_total);
            for s in &p.sites {
                prop_assert!(
                    s.busy_workers + s.parked_workers + s.dead_workers <= workers as u64
                );
            }
        }

        // 4. Histogram observation counts equal their sibling counters:
        // every wake call records exactly one fanout sample, and every
        // pending-log replay records exactly one replay length.
        let snaps: HashMap<&str, InstrumentValue> = telemetry
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.value))
            .collect();
        let counter = |name: &str| match snaps.get(name) {
            Some(InstrumentValue::Counter { value }) => *value,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        let histogram = |name: &str| match snaps.get(name) {
            Some(InstrumentValue::Histogram { count, buckets, .. }) => {
                (*count, buckets.iter().sum::<u64>())
            }
            other => panic!("{name}: expected histogram, got {other:?}"),
        };
        let (fanout_count, fanout_buckets) = histogram("engine.wake.fanout");
        prop_assert_eq!(fanout_count, counter("engine.wake.calls"));
        prop_assert_eq!(fanout_buckets, fanout_count, "bucket totals != count");
        // Only worker-centric strategies keep a pending log.
        if snaps.contains_key("scheduler.pending_log.replays") {
            let (replay_count, replay_buckets) =
                histogram("scheduler.pending_log.replay_len");
            prop_assert_eq!(replay_count, counter("scheduler.pending_log.replays"));
            prop_assert_eq!(replay_buckets, replay_count, "bucket totals != count");
        }
    }

    /// Availability-accounting audit: under heavy churn — Weibull repair
    /// tails, server outages, correlated crash bursts — per-site downtime
    /// tiles into the makespan horizon (overlapping outage sources are
    /// never double-counted) and every availability figure stays in
    /// `[0, 1]`.
    #[test]
    fn availability_accounting_audits(
        strategy in arb_strategy(),
        sites in 1usize..4,
        workers in 1usize..4,
        shape_idx in 0usize..3,
        burst in 0u8..2,
        seed in 0u64..3,
    ) {
        let shape = [0.7f64, 1.0, 2.0][shape_idx];
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let mut faults = FaultConfig::none()
            .with_worker_faults(2_500.0, 500.0)
            .with_worker_repair_shape(shape)
            .with_server_faults(20_000.0, 900.0)
            .with_server_repair_shape(shape);
        if burst == 1 {
            faults = faults.with_worker_bursts(4_000.0, 2);
        }
        let config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(500)
            .with_seed(seed)
            .with_faults(faults)
            .with_checkpointing(CheckpointConfig::fixed(400.0));
        let report = GridSim::new(config).run();
        prop_assert_eq!(report.tasks_completed, 80);
        let horizon = report.makespan_minutes * 60.0;
        prop_assert!(horizon > 0.0 && horizon.is_finite());
        let eps = 1e-6 * horizon;
        for (s, m) in report.per_site.iter().enumerate() {
            prop_assert!(m.worker_downtime_s >= 0.0);
            prop_assert!(m.server_downtime_s >= 0.0);
            // Downtime tiling: a worker's outage intervals never overlap
            // (a crash landing on an already-down worker is absorbed, and
            // burst victims repair through the same MTTR process), so a
            // site's worker downtime fits inside horizon x workers even
            // when independent crashes and correlated bursts coincide.
            prop_assert!(
                m.worker_downtime_s <= horizon * workers as f64 + eps,
                "site {}: worker downtime {} > horizon {} x {} workers",
                s, m.worker_downtime_s, horizon, workers
            );
            prop_assert!(
                m.server_downtime_s <= horizon + eps,
                "site {}: server downtime {} > horizon {}",
                s, m.server_downtime_s, horizon
            );
            let avail = report.site_availability(s);
            prop_assert!((0.0..=1.0).contains(&avail));
        }
        prop_assert!((0.0..=1.0).contains(&report.mean_worker_availability()));
        prop_assert!((0.0..=1.0).contains(&report.mean_server_availability()));
    }

    /// Network-fault invariants: under stochastic link outages (hard cuts
    /// or degraded-bandwidth windows), with and without the transfer
    /// guard, every task still completes, the flow-conservation ledger
    /// balances, and per-link downtime tiles into the horizon × link-count
    /// envelope (windows on one link never overlap — a stochastic failure
    /// landing inside an open window is absorbed).
    #[test]
    fn link_faults_conserve_flows_and_tile_downtime(
        strategy in arb_strategy(),
        sites in 2usize..5,
        seed in 0u64..3,
        link_mtbf in 2_500.0f64..6_000.0,
        degraded in 0u8..2,
        guarded in 0u8..2,
    ) {
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let mut faults = FaultConfig::none().with_link_faults(link_mtbf, 500.0);
        if degraded == 1 {
            faults = faults.with_link_degrade_factor(0.25);
        }
        let mut config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_capacity(400)
            .with_seed(seed)
            .with_probe_interval(600.0)
            .with_faults(faults);
        if guarded == 1 {
            config = config
                .with_transfer_timeout(3.0)
                .with_transfer_retries(4)
                .with_retry_backoff(30.0);
        }
        let telemetry = Telemetry::enabled();
        let report = GridSim::new(config)
            .with_telemetry(telemetry.clone())
            .run();
        prop_assert_eq!(report.tasks_completed, 80);
        prop_assert!(report.link_outages > 0, "MTBF this short must fault");

        // Flow conservation: every flow the run ever started ended in
        // exactly one sink. (The engine additionally debug-asserts the
        // exact balance including still-active flows at report time.)
        let sinks = report.flows_completed
            + report.flows_aborted
            + report.flows_retrying
            + report.flows_requeued;
        prop_assert!(report.flows_started > 0);
        prop_assert!(
            sinks <= report.flows_started,
            "sinks {} > started {}", sinks, report.flows_started
        );
        if guarded == 0 {
            // No guard, no guard-driven sinks.
            prop_assert_eq!(report.xfer_timeouts, 0);
            prop_assert_eq!(report.xfer_retries, 0);
            prop_assert_eq!(report.flows_retrying, 0);
            prop_assert_eq!(report.flows_requeued, 0);
        } else {
            // Every dispatched retry came from a timeout, and failovers
            // are a subset of retries.
            prop_assert!(report.xfer_retries <= report.xfer_timeouts);
            prop_assert!(report.xfer_failovers <= report.xfer_retries);
            prop_assert_eq!(report.flows_retrying, report.xfer_retries);
        }

        // Downtime tiling into the horizon × link-count envelope.
        let horizon = report.makespan_minutes * 60.0;
        prop_assert!(horizon > 0.0 && horizon.is_finite());
        let probes = telemetry.probes();
        prop_assert!(!probes.is_empty(), "probe sampler produced no samples");
        let links_total = probes[0].links_total as f64;
        prop_assert!(links_total > 0.0);
        prop_assert!(report.link_downtime_s >= 0.0);
        prop_assert!(
            report.link_downtime_s <= horizon * links_total + 1e-6 * horizon * links_total,
            "link downtime {} > horizon {} x {} links",
            report.link_downtime_s, horizon, links_total
        );
    }

    #[test]
    fn determinism_under_any_config(
        strategy in arb_strategy(),
        sites in 1usize..4,
        seed in 0u64..3,
    ) {
        let mut cfg = CoaddConfig::small(0);
        cfg.tasks = 60;
        let workload = Arc::new(cfg.generate());
        let make = || {
            let config = SimConfig::paper(workload.clone(), strategy)
                .with_sites(sites)
                .with_seed(seed)
                .with_capacity(500);
            GridSim::new(config).run()
        };
        prop_assert_eq!(make(), make());
    }
}
