//! Max–min fair bandwidth allocation by progressive filling.
//!
//! Given link capacities and the set of links each flow crosses, the
//! progressive-filling algorithm raises all flow rates together until a link
//! saturates, freezes the flows crossing it, and repeats. The result is the
//! unique max–min fair allocation: no flow's rate can be increased without
//! decreasing the rate of a flow that already has an equal or smaller rate.
//!
//! This is the allocation model SimGrid's fluid network engine uses (up to
//! SimGrid's optional RTT weighting, which the paper does not rely on).
//!
//! Two implementations share the algorithm:
//!
//! * [`max_min_rates`] — the executable specification: simple, allocates
//!   per call, scans every link per round;
//! * [`MaxMinSolver`] — the hot-path implementation `NetSim` uses for its
//!   per-flow-event recomputes. It is **bit-identical** to the
//!   specification (property-tested via `to_bits`) while touching only the
//!   links flows actually cross: a shared rate accumulator replaces the
//!   per-flow additions (all unsaturated flows accumulate the *same* share
//!   sequence, so one fold reproduces every flow's fold exactly), per-link
//!   repeated subtraction replaces the per-flow route walks (a link's
//!   `remaining` is decremented once per unsaturated crossing flow with
//!   the same value either way), and per-link flow lists make the freeze
//!   step `O(crossing flows)` instead of a full flow scan. Scratch buffers
//!   persist across calls, so a recompute allocates nothing.

/// Computes max–min fair rates.
///
/// * `capacities[l]` — capacity of link `l` (must be positive and finite).
/// * `flow_routes[f]` — the links flow `f` crosses. A flow with an **empty
///   route** shares no link and gets `f64::INFINITY` (used for co-located
///   endpoints).
///
/// Returns one rate per flow.
///
/// # Panics
///
/// Panics if a route references a link `>= capacities.len()` or a capacity
/// is not positive/finite.
///
/// # Complexity
///
/// `O(R · (F + L))` where `R ≤ L` is the number of filling rounds — at least
/// one link saturates per round.
#[must_use]
pub fn max_min_rates(capacities: &[f64], flow_routes: &[Vec<usize>]) -> Vec<f64> {
    for &c in capacities {
        assert!(c.is_finite() && c > 0.0, "capacity must be positive: {c}");
    }
    let n_links = capacities.len();
    let n_flows = flow_routes.len();
    let mut rates = vec![0.0_f64; n_flows];
    let mut saturated = vec![false; n_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Active flow count per link.
    let mut active = vec![0usize; n_links];
    for route in flow_routes {
        for &l in route {
            assert!(l < n_links, "route references unknown link {l}");
            active[l] += 1;
        }
    }
    for (f, route) in flow_routes.iter().enumerate() {
        if route.is_empty() {
            rates[f] = f64::INFINITY;
            saturated[f] = true;
        }
    }

    loop {
        // Find the tightest link among links carrying unsaturated flows.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..n_links {
            if active[l] == 0 {
                continue;
            }
            let share = remaining[l] / active[l] as f64;
            match best {
                Some((s, _)) if share >= s => {}
                _ => best = Some((share, l)),
            }
        }
        let Some((share, bottleneck)) = best else {
            break; // no unsaturated flows left
        };
        // Freeze every unsaturated flow crossing the bottleneck at
        // `current + share`... with progressive filling all unsaturated flows
        // have the same accumulated rate, tracked implicitly: we add `share`
        // to each unsaturated flow's rate and subtract it on every link they
        // cross, then freeze the bottleneck's flows.
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] || route.is_empty() {
                continue;
            }
            rates[f] += share;
            for &l in route {
                remaining[l] -= share;
            }
        }
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] {
                continue;
            }
            if route.contains(&bottleneck) {
                saturated[f] = true;
                for &l in route {
                    active[l] -= 1;
                }
            }
        }
        // Numerical hygiene: clamp tiny negatives from float error.
        remaining[bottleneck] = remaining[bottleneck].max(0.0);
    }
    rates
}

/// Allocation-free, incrementally-registered progressive filling,
/// bit-identical to [`max_min_rates`]. Keep one solver per
/// [`crate::NetSim`]; flows register once ([`MaxMinSolver::add_flow`] /
/// [`MaxMinSolver::remove_flow`]) instead of being re-described on every
/// recompute, so a [`MaxMinSolver::solve`] call touches only per-call
/// state (no CSR rebuild, no sort, no allocation).
///
/// Every transformation preserves the specification's float operations:
///
/// * all unsaturated flows accumulate the *same* share sequence from the
///   same starting `0.0`, so one shared fold (`acc`) reproduces each
///   flow's per-round additions bit for bit;
/// * a link's `remaining` is decremented once per unsaturated crossing
///   flow with the same share either way, so per-link repeated
///   subtraction yields the same bits (links are mutually independent,
///   order across links immaterial);
/// * `x / 1.0 == x` exactly, so single-flow links skip the division;
/// * links carrying exactly one flow all receive identical per-round
///   subtraction chains, which preserves their relative order (f64
///   subtraction of a common value is weakly monotone) — so the
///   single-flow bottleneck candidate comes from a cursor over a
///   **static** capacity-sorted link order instead of a per-round scan,
///   with an equal-value run walk reproducing the specification's
///   lowest-link-id tie-break when rounding merges adjacent values. Only
///   genuinely shared links (the backbone, a handful per topology) are
///   scanned per round.
#[derive(Debug)]
pub struct MaxMinSolver {
    capacities: Vec<f64>,
    /// Link ids sorted by `(capacity, id)` — static.
    caps_order: Vec<u32>,
    /// Per link: registered flows crossing it.
    crossing: Vec<u32>,
    /// Per link: the slots of its crossing flows (unordered — the freeze
    /// step's effects commute bitwise).
    link_flows: Vec<Vec<u32>>,
    /// Per slot: the links the flow crosses (with multiplicity).
    routes: Vec<Vec<u32>>,
    free_slots: Vec<u32>,
    live_slots: Vec<u32>,
    live_pos: Vec<u32>,
    /// Ascending link ids with `crossing > 0`.
    touched: Vec<u32>,
    // --- per-call scratch ---
    remaining: Vec<f64>,
    active: Vec<u32>,
    /// Links with ≥ 2 crossing flows at call start, ascending (compacted
    /// as they empty).
    multi: Vec<u32>,
    /// This call's per-round shares — the drain history single-flow links
    /// replay lazily.
    shares: Vec<f64>,
    /// Per link: how many rounds of `shares` have been applied to
    /// `remaining` (single-flow links only; shared links drain eagerly).
    applied: Vec<u32>,
    saturated: Vec<bool>,
    rates: Vec<f64>,
}

/// Applies the outstanding drain history to a lazily-drained link: the
/// same per-round subtractions the specification performs, just deferred
/// until the value is actually read (most single-flow links are never read
/// in a given round — only the head of the capacity order and its
/// equal-value run are).
#[inline]
fn materialize(remaining: &mut [f64], applied: &mut [u32], shares: &[f64], l: usize) {
    let mut k = applied[l] as usize;
    while k < shares.len() {
        remaining[l] -= shares[k];
        k += 1;
    }
    applied[l] = shares.len() as u32;
}

impl MaxMinSolver {
    /// A solver over links with the given capacities (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if any capacity is non-positive or non-finite.
    #[must_use]
    pub fn new(capacities: Vec<f64>) -> Self {
        for &c in &capacities {
            assert!(c.is_finite() && c > 0.0, "capacity must be positive: {c}");
        }
        let n = capacities.len();
        let mut caps_order: Vec<u32> = (0..n as u32).collect();
        caps_order.sort_unstable_by(|&a, &b| {
            capacities[a as usize]
                .partial_cmp(&capacities[b as usize])
                .expect("finite capacities")
                .then(a.cmp(&b))
        });
        MaxMinSolver {
            capacities,
            caps_order,
            crossing: vec![0; n],
            link_flows: vec![Vec::new(); n],
            routes: Vec::new(),
            free_slots: Vec::new(),
            live_slots: Vec::new(),
            live_pos: Vec::new(),
            touched: Vec::new(),
            remaining: vec![0.0; n],
            active: vec![0; n],
            multi: Vec::new(),
            shares: Vec::new(),
            applied: vec![0; n],
            saturated: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Registers a flow crossing `route` (empty = co-located endpoints,
    /// rate `+∞`). Returns the flow's slot.
    ///
    /// # Panics
    ///
    /// Panics if the route references a link `>= capacities.len()`.
    pub fn add_flow(&mut self, route: &[usize]) -> u32 {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.routes.len() as u32;
            self.routes.push(Vec::new());
            self.saturated.push(false);
            self.rates.push(0.0);
            self.live_pos.push(0);
            s
        });
        let s = slot as usize;
        self.routes[s].clear();
        for &l in route {
            assert!(
                l < self.capacities.len(),
                "route references unknown link {l}"
            );
            self.routes[s].push(l as u32);
            if self.crossing[l] == 0 {
                let pos = self
                    .touched
                    .binary_search(&(l as u32))
                    .expect_err("link was untouched");
                self.touched.insert(pos, l as u32);
            }
            self.crossing[l] += 1;
            self.link_flows[l].push(slot);
        }
        self.live_pos[s] = self.live_slots.len() as u32;
        self.live_slots.push(slot);
        slot
    }

    /// Unregisters a flow.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a registered flow.
    pub fn remove_flow(&mut self, slot: u32) {
        let s = slot as usize;
        for j in 0..self.routes[s].len() {
            let l = self.routes[s][j] as usize;
            self.crossing[l] -= 1;
            let lf = &mut self.link_flows[l];
            let pos = lf.iter().position(|&x| x == slot).expect("flow registered");
            lf.swap_remove(pos);
            if self.crossing[l] == 0 {
                let pos = self
                    .touched
                    .binary_search(&(l as u32))
                    .expect("touched link listed");
                self.touched.remove(pos);
            }
        }
        let pos = self.live_pos[s] as usize;
        let last = self.live_slots.pop().expect("slot is live");
        if last != slot {
            self.live_slots[pos] = last;
            self.live_pos[last as usize] = pos as u32;
        }
        self.free_slots.push(slot);
    }

    /// Number of registered flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.live_slots.len()
    }

    /// Number of links crossed by at least one registered flow (the
    /// touched-link working set a [`MaxMinSolver::solve`] visits).
    #[must_use]
    pub fn busy_links(&self) -> usize {
        self.touched.len()
    }

    /// Total number of links (registered capacities).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.capacities.len()
    }

    /// The rate computed for `slot` by the last [`MaxMinSolver::solve`].
    #[must_use]
    pub fn rate(&self, slot: u32) -> f64 {
        self.rates[slot as usize]
    }

    /// Computes max–min fair rates for the registered flows (read back
    /// with [`MaxMinSolver::rate`]).
    pub fn solve(&mut self) {
        for i in 0..self.live_slots.len() {
            let s = self.live_slots[i] as usize;
            if self.routes[s].is_empty() {
                self.saturated[s] = true;
                self.rates[s] = f64::INFINITY;
            } else {
                self.saturated[s] = false;
                self.rates[s] = 0.0;
            }
        }
        self.multi.clear();
        self.shares.clear();
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            self.active[l] = self.crossing[l];
            self.remaining[l] = self.capacities[l];
            if self.crossing[l] == 1 {
                self.applied[l] = 0;
            } else {
                self.multi.push(l as u32);
            }
        }
        // Progressive filling; `acc` is the shared accumulated rate of
        // every still-unsaturated flow.
        let mut cursor = 0usize;
        let mut acc = 0.0f64;
        loop {
            // Single-flow candidate: the first still-active entry in the
            // static (capacity, id) order; rounding can merge adjacent
            // values, and the specification breaks value ties by the
            // lowest link id, so walk the equal-value run.
            while cursor < self.caps_order.len() {
                let l = self.caps_order[cursor] as usize;
                if self.crossing[l] == 1 && self.active[l] == 1 {
                    break;
                }
                cursor += 1;
            }
            let single = if cursor < self.caps_order.len() {
                let head = self.caps_order[cursor] as usize;
                materialize(&mut self.remaining, &mut self.applied, &self.shares, head);
                let value = self.remaining[head];
                let mut best_l = head;
                let mut j = cursor + 1;
                while j < self.caps_order.len() {
                    let l = self.caps_order[j] as usize;
                    j += 1;
                    if self.crossing[l] != 1 || self.active[l] != 1 {
                        continue;
                    }
                    materialize(&mut self.remaining, &mut self.applied, &self.shares, l);
                    if self.remaining[l] == value {
                        best_l = best_l.min(l);
                        continue;
                    }
                    break;
                }
                Some((value, best_l))
            } else {
                None
            };
            // Shared-link candidate: ascending scan (first strictly
            // smaller kept, matching the specification's tie-break),
            // compacting emptied links.
            let mut m_best: Option<(f64, usize)> = None;
            let mut w = 0;
            for i in 0..self.multi.len() {
                let l = self.multi[i] as usize;
                if self.active[l] == 0 {
                    continue;
                }
                self.multi[w] = l as u32;
                w += 1;
                // `x / 1.0 == x` exactly (IEEE 754).
                let share = if self.active[l] == 1 {
                    self.remaining[l]
                } else {
                    self.remaining[l] / f64::from(self.active[l])
                };
                match m_best {
                    Some((s, _)) if share >= s => {}
                    _ => m_best = Some((share, l)),
                }
            }
            self.multi.truncate(w);
            // Combine: strictly smaller wins; equal values go to the
            // lowest link id, exactly like the specification's ascending
            // first-strictly-smaller scan.
            let (share, bottleneck) = match (single, m_best) {
                (None, None) => break,
                (Some((v, l)), None) | (None, Some((v, l))) => (v, l),
                (Some((sv, sl)), Some((mv, ml))) => {
                    if sv < mv {
                        (sv, sl)
                    } else if mv < sv {
                        (mv, ml)
                    } else {
                        (sv, sl.min(ml))
                    }
                }
            };
            acc += share;
            // Drain: one subtraction per unsaturated crossing flow per
            // link (bit-identical to the specification's per-flow route
            // walks; see the type docs). Single-flow links record the
            // share in the history and replay it on their next read;
            // shared links drain eagerly (their values are read every
            // round by the candidate scan).
            self.shares.push(share);
            for i in 0..self.multi.len() {
                let l = self.multi[i] as usize;
                let mut n = self.active[l];
                while n > 0 {
                    self.remaining[l] -= share;
                    n -= 1;
                }
            }
            // Freeze the bottleneck's unsaturated flows at the shared
            // accumulated rate (order within the freeze commutes bitwise:
            // same rate value, integer decrements).
            for i in 0..self.link_flows[bottleneck].len() {
                let f = self.link_flows[bottleneck][i] as usize;
                if self.saturated[f] {
                    continue;
                }
                self.saturated[f] = true;
                self.rates[f] = acc;
                for j in 0..self.routes[f].len() {
                    let l = self.routes[f][j] as usize;
                    self.active[l] -= 1;
                }
            }
            // Numerical hygiene: clamp tiny negatives from float error.
            self.remaining[bottleneck] = self.remaining[bottleneck].max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_flow_gets_full_link() {
        let r = max_min_rates(&[10.0], &[vec![0]]);
        assert!((r[0] - 10.0).abs() < EPS);
    }

    #[test]
    fn two_flows_share_equally() {
        let r = max_min_rates(&[10.0], &[vec![0], vec![0]]);
        assert!((r[0] - 5.0).abs() < EPS);
        assert!((r[1] - 5.0).abs() < EPS);
    }

    #[test]
    fn empty_route_is_infinite() {
        let r = max_min_rates(&[10.0], &[vec![], vec![0]]);
        assert!(r[0].is_infinite());
        assert!((r[1] - 10.0).abs() < EPS);
    }

    #[test]
    fn classic_three_flow_example() {
        // Links: A (cap 10), B (cap 10).
        // f0 crosses A and B, f1 crosses A, f2 crosses B.
        // Max–min: all rates 5.
        let r = max_min_rates(&[10.0, 10.0], &[vec![0, 1], vec![0], vec![1]]);
        for &x in &r {
            assert!((x - 5.0).abs() < EPS, "rates {r:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck() {
        // Link A cap 2 carries f0; link B cap 10 carries f0 and f1.
        // f0 limited to 2 by A; f1 then gets the rest of B = 8.
        let r = max_min_rates(&[2.0, 10.0], &[vec![0, 1], vec![1]]);
        assert!((r[0] - 2.0).abs() < EPS);
        assert!((r[1] - 8.0).abs() < EPS);
    }

    #[test]
    fn no_flows() {
        let r = max_min_rates(&[1.0, 2.0], &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn unused_links_ignored() {
        let r = max_min_rates(&[1.0, 100.0], &[vec![0]]);
        assert!((r[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn many_flows_one_link() {
        let routes: Vec<Vec<usize>> = (0..100).map(|_| vec![0]).collect();
        let r = max_min_rates(&[50.0], &routes);
        for &x in &r {
            assert!((x - 0.5).abs() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_route_panics() {
        let _ = max_min_rates(&[1.0], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }

    /// Invariant check used by both unit and property tests: the allocation
    /// never oversubscribes a link and every finite-rate flow has at least
    /// one saturated link on its route (Pareto optimality / bottleneck
    /// property).
    pub(crate) fn assert_max_min_invariants(
        capacities: &[f64],
        routes: &[Vec<usize>],
        rates: &[f64],
    ) {
        let tol = 1e-6;
        // 1. Feasibility.
        let mut load = vec![0.0; capacities.len()];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                load[l] += rates[f];
            }
        }
        for (l, &cap) in capacities.iter().enumerate() {
            assert!(
                load[l] <= cap * (1.0 + tol) + tol,
                "link {l} oversubscribed: load={} cap={}",
                load[l],
                cap
            );
        }
        // 2. Bottleneck property: every flow has a saturated link on its
        //    route where it has a maximal rate among that link's flows.
        for (f, route) in routes.iter().enumerate() {
            if route.is_empty() {
                assert!(rates[f].is_infinite());
                continue;
            }
            let has_bottleneck = route.iter().any(|&l| {
                let saturated = load[l] >= capacities[l] * (1.0 - tol) - tol;
                let maximal = routes
                    .iter()
                    .enumerate()
                    .filter(|(_, r2)| r2.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] + tol);
                saturated && maximal
            });
            assert!(
                has_bottleneck,
                "flow {f} (rate {}) has no bottleneck link",
                rates[f]
            );
        }
    }

    #[test]
    fn invariants_on_examples() {
        let cases: Vec<(Vec<f64>, Vec<Vec<usize>>)> = vec![
            (vec![10.0], vec![vec![0], vec![0], vec![0]]),
            (vec![10.0, 10.0], vec![vec![0, 1], vec![0], vec![1]]),
            (vec![2.0, 10.0], vec![vec![0, 1], vec![1]]),
            (
                vec![5.0, 7.0, 3.0],
                vec![vec![0, 1, 2], vec![0], vec![1], vec![2], vec![0, 2]],
            ),
        ];
        for (caps, routes) in cases {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::assert_max_min_invariants;
    use super::*;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        // 1..8 links with capacities 0.5..100, 0..12 flows crossing random
        // non-empty subsets.
        (1usize..8).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(0.5f64..100.0, n_links);
            let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>());
            let flows = proptest::collection::vec(route, 0..12);
            (caps, flows)
        })
    }

    proptest! {
        #[test]
        fn max_min_invariants_hold((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }

        #[test]
        fn rates_positive((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            for (f, r) in rates.iter().enumerate() {
                prop_assert!(*r > 0.0, "flow {} got non-positive rate {}", f, r);
            }
        }

        #[test]
        fn deterministic((caps, routes) in arb_case()) {
            let a = max_min_rates(&caps, &routes);
            let b = max_min_rates(&caps, &routes);
            prop_assert_eq!(a, b);
        }

        /// The hot-path solver is bit-identical to the specification —
        /// compared via `to_bits`, not approximately — across flow
        /// add/remove churn on one registration state (stale-state
        /// hazards: slot reuse, touched-list maintenance, scratch reuse).
        #[test]
        fn solver_matches_spec_bitwise(
            (caps, routes) in (2usize..8).prop_flat_map(|n_links| {
                let caps = proptest::collection::vec(0.5f64..100.0, n_links);
                let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>());
                let flows = proptest::collection::vec(route, 0..24);
                (caps, flows)
            }),
            removals in proptest::collection::vec(0u8..2, 24),
        ) {
            let mut solver = MaxMinSolver::new(caps.clone());
            let mut live: Vec<(u32, Vec<usize>)> = Vec::new();
            let check = |solver: &mut MaxMinSolver, live: &[(u32, Vec<usize>)]| {
                let spec_routes: Vec<Vec<usize>> =
                    live.iter().map(|(_, r)| r.clone()).collect();
                let spec = max_min_rates(&caps, &spec_routes);
                solver.solve();
                for (f, (slot, _)) in live.iter().enumerate() {
                    let got = solver.rate(*slot);
                    assert_eq!(
                        spec[f].to_bits(),
                        got.to_bits(),
                        "flow {f} differs: {} vs {got}",
                        spec[f]
                    );
                }
            };
            for (i, route) in routes.iter().enumerate() {
                let slot = solver.add_flow(route);
                live.push((slot, route.clone()));
                check(&mut solver, &live);
                // Interleave removals so slots get reused mid-sequence.
                if removals[i % removals.len()] == 1 && !live.is_empty() {
                    let victim = i % live.len();
                    let (slot, _) = live.remove(victim);
                    solver.remove_flow(slot);
                    check(&mut solver, &live);
                }
            }
            while let Some((slot, _)) = live.pop() {
                solver.remove_flow(slot);
                check(&mut solver, &live);
            }
        }
    }
}
