//! Simulation time and durations.
//!
//! [`SimTime`] is an absolute timestamp on the simulation clock and
//! [`SimDuration`] is a length of simulated time. Both are thin wrappers
//! around `f64` seconds that (a) are totally ordered — construction from NaN
//! panics — and (b) make unit mistakes (seconds vs minutes vs hours) explicit
//! at the API boundary, following the newtype guidance of the Rust API
//! guidelines (C-NEWTYPE).
//!
//! The paper reports makespans in **minutes**; the simulator computes in
//! seconds and converts at the reporting boundary via [`SimDuration::as_minutes`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute point on the simulation clock, in seconds since simulation
/// start.
///
/// `SimTime` is `Copy`, totally ordered and NaN-free: all constructors panic
/// when handed a NaN, so `Ord` can be implemented soundly.
///
/// # Example
///
/// ```
/// use gridsched_des::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_minutes(2.0);
/// assert_eq!(t.as_secs(), 120.0);
/// ```
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May be zero but never negative or
/// NaN.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A timestamp later than every event a simulation can produce.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Creates a timestamp `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        assert!(secs >= 0.0, "SimTime must not be negative: {secs}");
        SimTime(secs)
    }

    /// Creates a timestamp `minutes` minutes after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is NaN or negative.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::from_secs(minutes * 60.0)
    }

    /// The timestamp as seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The timestamp as minutes since simulation start (the paper's figures
    /// use minutes).
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The timestamp as hours since simulation start (Table 3 of the paper
    /// uses hours).
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Whether this is a finite timestamp (i.e. not [`SimTime::FAR_FUTURE`]).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (simulated time never runs
    /// backwards).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier={earlier:?} is after self={self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two timestamps.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimDuration must not be NaN");
        assert!(secs >= 0.0, "SimDuration must not be negative: {secs}");
        SimDuration(secs)
    }

    /// Creates a duration of `minutes` minutes.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is NaN or negative.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::from_secs(minutes * 60.0)
    }

    /// Creates a duration of `hours` hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is NaN or negative.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// The duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Whether the duration is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Default for SimDuration {
    fn default() -> Self {
        SimDuration::ZERO
    }
}

impl Eq for SimTime {}
impl Eq for SimDuration {}

// NaN-free by construction, so total order is sound.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is NaN-free by construction")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is NaN-free by construction")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({}s)", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_minutes(1.0).as_secs(), 60.0);
        assert_eq!(SimTime::from_secs(7200.0).as_hours(), 2.0);
        assert_eq!(SimDuration::from_hours(1.0).as_minutes(), 60.0);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::FAR_FUTURE > b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        let d = t - SimTime::from_secs(3.0);
        assert_eq!(d, SimDuration::from_secs(12.0));
        assert_eq!(
            SimDuration::from_secs(4.0) * 2.5,
            SimDuration::from_secs(10.0)
        );
        assert_eq!(
            SimDuration::from_secs(9.0) / 3.0,
            SimDuration::from_secs(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must not be negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn backwards_duration_panics() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(
            format!("{:?}", SimDuration::from_secs(2.0)),
            "SimDuration(2s)"
        );
    }

    #[test]
    fn far_future_is_not_finite() {
        assert!(!SimTime::FAR_FUTURE.is_finite());
        assert!(SimTime::ZERO.is_finite());
    }
}
