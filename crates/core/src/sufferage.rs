//! XSufferage-style data-aware baseline (Casanova et al. [5]).
//!
//! The storage-affinity paper ([14], this paper's baseline) positioned
//! itself against **XSufferage**, the cluster-level sufferage heuristic of
//! Casanova et al.: a task's *sufferage* is the difference between its
//! best and second-best cluster-level completion-time estimate; tasks that
//! would "suffer" most from not getting their best cluster are scheduled
//! first.
//!
//! The original heuristic needs completion-time estimates (CPU speeds and
//! forecast bandwidths). In the data-intensive setting of this paper those
//! estimates are dominated by data placement, so our reproduction uses the
//! natural data-aware instantiation: the *estimate* for (task, site) is
//! the site's overlap cardinality `|F_t|` (more local bytes → earlier
//! completion), and
//!
//! ```text
//! sufferage(t) = overlap(t, best site) − overlap(t, second-best site)
//! ```
//!
//! When a worker idles, it receives the highest-sufferage pending task
//! whose best site is the worker's own; if no pending task prefers this
//! site, the worker falls back to the task with the largest local overlap
//! (never idling, like XSufferage's MCT fallback). This is a *demand-
//! driven* scheduler — under the paper's taxonomy it sits between the two
//! camps: decisions happen at idle time (no premature decisions) but each
//! decision inspects **all** sites (`O(T·S)` with the incremental views,
//! `O(T·I·S)` naively), which is exactly the per-decision cost §4.4
//! attributes to task-centric strategies.
//!
//! In [`EvalMode::Incremental`] (the default) that per-decision cost goes
//! away: each task carries an ordered set of its **nonzero-overlap sites**
//! keyed `(overlap, ¬site)`, so a storage event re-files one `(task,
//! site)` entry in `O(log S)` and the `(best, second, best site)` triple
//! is read off the set's tail in `O(1)` — no all-sites rescan anywhere.
//! The triples feed two incrementally-maintained ordered structures — a
//! per-site *contest* set keyed by `(sufferage desc, id asc)` over the
//! pending tasks whose best site it is, and a per-site overlap
//! [`TaskRank`] for the fallback, with pool membership propagated lazily
//! (see [`crate::index`]): a pool removal is `O(log T)` (one contest
//! entry), a requeue additionally appends to the [`PendingLog`]. A
//! decision then reads one set head, `O(log T)`; the scan modes are kept
//! for validation and benchmarking and are property-tested to pick
//! identically.
//!
//! [`TaskRank`]: crate::index::TaskRank

use std::collections::BTreeSet;
use std::sync::Arc;

use gridsched_storage::SiteStore;
use gridsched_telemetry::Telemetry;
use gridsched_workload::{FileId, TaskId, Workload};

use crate::ids::{GridEnv, SiteId, WorkerId};
use crate::index::{enable_ranks, FileIndex, PendingLog, RankStats, SiteView};
use crate::pool::TaskPool;
use crate::scheduler::{Assignment, CompletionOutcome, EvalMode, Scheduler};
use crate::weight::WeightMetric;

/// Data-aware XSufferage-style scheduler.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gridsched_core::{Scheduler, Sufferage};
/// use gridsched_workload::coadd::CoaddConfig;
///
/// let wl = Arc::new(CoaddConfig::small(0).generate());
/// let sched = Sufferage::new(wl);
/// assert_eq!(sched.name(), "xsufferage");
/// ```
pub struct Sufferage {
    workload: Arc<Workload>,
    pool: TaskPool,
    index: Arc<FileIndex>,
    views: Vec<SiteView>,
    mode: EvalMode,
    /// Per-task ordered set of the sites with nonzero overlap, keyed
    /// `(overlap, u32::MAX − site)` so the tail yields the best-two in
    /// scan order: max overlap with ties to the lowest site id
    /// (incremental mode only; empty otherwise).
    site_rank: Vec<BTreeSet<(u32, u32)>>,
    /// Per-task `(best, second, best_site)` triples, maintained for every
    /// task (incremental mode only; empty otherwise).
    best: Vec<(u32, u32, u32)>,
    /// Per-site contest: pending tasks whose best site this is (with
    /// `best > 0`), ordered `(sufferage desc, id asc)` via the key
    /// `(u64::MAX − sufferage, id)`.
    contest: Vec<BTreeSet<(u64, u32)>>,
    /// Become-live journal for the lazy fallback ranks.
    log: PendingLog,
    completed: usize,
    /// Hot-path instruments for the fallback ranked walks (inert unless
    /// telemetry is attached).
    stats: RankStats,
}

/// Reads `(best, second, best_site)` off a task's nonzero-overlap site
/// set — identical to the ascending-site scan: best = max overlap, ties to
/// the lowest site; second = next-largest overlap counting duplicates
/// (zero-overlap sites contribute the implicit floor of 0).
fn best_two_from(set: &BTreeSet<(u32, u32)>) -> (u32, u32, u32) {
    let mut tail = set.iter().rev();
    match tail.next() {
        None => (0, 0, 0),
        Some(&(best, inv_site)) => {
            let second = tail.next().map_or(0, |&(ov, _)| ov);
            (best, second, u32::MAX - inv_site)
        }
    }
}

impl Sufferage {
    /// Creates the scheduler over `workload`.
    #[must_use]
    pub fn new(workload: Arc<Workload>) -> Self {
        let tasks = workload.task_count();
        let index = Arc::new(FileIndex::build(&workload));
        Sufferage {
            workload,
            pool: TaskPool::full(tasks),
            index,
            views: Vec::new(),
            mode: EvalMode::default(),
            site_rank: Vec::new(),
            best: Vec::new(),
            contest: Vec::new(),
            log: PendingLog::new(),
            completed: 0,
            stats: RankStats::default(),
        }
    }

    /// Switches the evaluation path (see [`EvalMode`]; `Naive` and
    /// `Indexed` both mean the per-decision `O(T·S)` scan here — sufferage
    /// cannot probe remote stores directly). Call before
    /// [`Scheduler::initialize`].
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Best and second-best overlap of `task` across all sites, plus the
    /// best site's id (ties to the lower site id) — the `O(S)` scan the
    /// non-incremental modes use per decision.
    fn best_two_scan(&self, task: TaskId) -> (u32, u32, usize) {
        let mut best = 0u32;
        let mut second = 0u32;
        let mut best_site = 0usize;
        for (site, view) in self.views.iter().enumerate() {
            let ov = view.overlap(task);
            if ov > best {
                second = best;
                best = ov;
                best_site = site;
            } else if ov > second {
                second = ov;
            }
        }
        (best, second, best_site)
    }

    fn contest_key(best: u32, second: u32, task: u32) -> (u64, u32) {
        (u64::MAX - u64::from(best - second), task)
    }

    /// Drops `task` from its contest set, if it competes.
    fn contest_remove(&mut self, task: TaskId) {
        let (best, second, site) = self.best[task.index()];
        if best > 0 {
            self.contest[site as usize].remove(&Self::contest_key(best, second, task.0));
        }
    }

    /// (Re-)enters `task` into its contest set, if it competes.
    fn contest_insert(&mut self, task: TaskId) {
        let (best, second, site) = self.best[task.index()];
        if best > 0 {
            self.contest[site as usize].insert(Self::contest_key(best, second, task.0));
        }
    }

    /// One site's overlap of every task reading `file` moved by `delta`
    /// (+1 add, −1 evict): re-files the single `(task, site)` entry in
    /// each affected task's nonzero-overlap site set — `O(log S)` — and
    /// refreshes the triple off the set's tail, keeping contest membership
    /// in step. This replaces the all-sites best-two rescan: no other
    /// site's value moved, so no other entry needs touching.
    fn on_site_overlap_changed(&mut self, site: usize, file: FileId, delta: i32) {
        let index = Arc::clone(&self.index);
        let inv_site = u32::MAX - site as u32;
        for &t in index.tasks_of(file) {
            let task = TaskId(t);
            let new_ov = self.views[site].overlap(task);
            let old_ov = (i64::from(new_ov) - i64::from(delta)) as u32;
            let set = &mut self.site_rank[task.index()];
            if old_ov > 0 {
                set.remove(&(old_ov, inv_site));
            }
            if new_ov > 0 {
                set.insert((new_ov, inv_site));
            }
            let pending = self.pool.contains(task);
            if pending {
                self.contest_remove(task);
            }
            self.best[task.index()] = best_two_from(&self.site_rank[task.index()]);
            if pending {
                self.contest_insert(task);
            }
        }
    }

    /// Removes an assigned/completed task from the incremental structures:
    /// one contest-set removal — the fallback ranks are repaired lazily.
    fn pool_remove(&mut self, task: TaskId) {
        self.pool.remove(task);
        if self.mode == EvalMode::Incremental {
            self.contest_remove(task);
        }
    }

    /// Requeues a task (fault recovery) into the incremental structures:
    /// one contest-set insert plus a journal append.
    fn pool_insert(&mut self, task: TaskId) {
        if self.pool.insert(task) && self.mode == EvalMode::Incremental {
            self.contest_insert(task);
            self.log.record(task, &mut self.views);
        }
    }

    /// The scan-mode pick (the pre-index algorithm, kept verbatim for
    /// validation and benchmarking).
    fn pick_scan(&self, my_site: usize) -> TaskId {
        let mut best_suff: Option<(u32, std::cmp::Reverse<TaskId>, TaskId)> = None;
        let mut best_local: Option<(u32, std::cmp::Reverse<TaskId>, TaskId)> = None;
        for t in self.pool.iter() {
            let (best, second, best_site) = self.best_two_scan(t);
            if best_site == my_site && best > 0 {
                let key = (best - second, std::cmp::Reverse(t), t);
                if best_suff.as_ref().is_none_or(|b| key > *b) {
                    best_suff = Some(key);
                }
            }
            let local = self.views[my_site].overlap(t);
            let key = (local, std::cmp::Reverse(t), t);
            if best_local.as_ref().is_none_or(|b| key > *b) {
                best_local = Some(key);
            }
        }
        best_suff
            .or(best_local)
            .map(|(_, _, t)| t)
            .expect("pool is non-empty")
    }
}

impl Scheduler for Sufferage {
    fn name(&self) -> String {
        "xsufferage".to_string()
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.stats = RankStats::attach(telemetry);
    }

    fn initialize(&mut self, env: &GridEnv, stores: &[SiteStore]) {
        assert_eq!(env.sites, stores.len(), "one store per site");
        let tasks = self.workload.task_count();
        self.views = (0..env.sites)
            .map(|_| {
                let mut v = SiteView::new(tasks);
                v.set_stats(self.stats.clone());
                v
            })
            .collect();
        if self.mode == EvalMode::Incremental {
            // Allocate the incremental structures *before* seeding so the
            // seed loop routes through the same sparse update path as the
            // run-time notifications. Empty stores ⇒ all-zero triples, so
            // initialization is O(T), not O(T·S).
            self.site_rank = vec![BTreeSet::new(); tasks];
            self.best = vec![(0, 0, 0); tasks];
            self.contest = vec![BTreeSet::new(); env.sites];
        }
        for (site, store) in stores.iter().enumerate() {
            for f in store.resident() {
                self.views[site].on_file_added(&self.index, f, store.ref_count(f));
                if self.mode == EvalMode::Incremental {
                    self.on_site_overlap_changed(site, f, 1);
                }
            }
        }
        if self.mode == EvalMode::Incremental {
            enable_ranks(
                &mut self.views,
                WeightMetric::Overlap,
                &self.index,
                &self.pool,
            );
        }
    }

    fn on_worker_idle(&mut self, worker: WorkerId, _store: &SiteStore) -> Assignment {
        if self.pool.is_empty() {
            return Assignment::Finished;
        }
        let my_site = worker.site.index();
        // Highest sufferage among tasks whose best site is mine; fallback:
        // highest local overlap.
        let task = if self.mode == EvalMode::Incremental {
            match self.contest[my_site].first() {
                Some(&(_, t)) => TaskId(t),
                None => {
                    let pool = &self.pool;
                    let view = &mut self.views[my_site];
                    view.sync_pending(&self.index, &self.log, |t| pool.contains(t));
                    view.top_overlap_where(|t| pool.contains(t), |_| true)
                        .expect("pool is non-empty")
                }
            }
        } else {
            self.pick_scan(my_site)
        };
        self.pool_remove(task);
        Assignment::Run(task)
    }

    fn on_task_complete(&mut self, _worker: WorkerId, _task: TaskId) -> CompletionOutcome {
        self.completed += 1;
        CompletionOutcome::default()
    }

    fn on_worker_lost(&mut self, _worker: WorkerId, in_flight: Option<TaskId>) -> bool {
        // No replication here either: a crashed execution is the only
        // copy, so the task rejoins the pending pool.
        match in_flight {
            Some(task) => {
                self.pool_insert(task);
                true
            }
            None => false,
        }
    }

    fn on_file_added(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_file_added_pruning(&self.index, file, ref_count, |t| pool.contains(t));
            if self.mode == EvalMode::Incremental {
                self.on_site_overlap_changed(site.index(), file, 1);
            }
        }
    }

    fn on_file_evicted(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_file_evicted_pruning(&self.index, file, ref_count, |t| pool.contains(t));
            if self.mode == EvalMode::Incremental {
                self.on_site_overlap_changed(site.index(), file, -1);
            }
        }
    }

    fn on_task_reference(&mut self, site: SiteId, file: FileId) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_task_reference_pruning(&self.index, file, |t| pool.contains(t));
        }
    }

    fn unfinished(&self) -> usize {
        self.workload.task_count() - self.completed
    }
}

impl std::fmt::Debug for Sufferage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sufferage")
            .field("pending", &self.pool.len())
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;

    fn wl() -> Arc<Workload> {
        Arc::new(Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 1.0),
                TaskSpec::new(TaskId(1), vec![FileId(2), FileId(3)], 1.0),
                TaskSpec::new(TaskId(2), vec![FileId(0), FileId(2)], 1.0),
            ],
            4,
            1.0,
            "w",
        ))
    }

    fn env(sites: usize) -> GridEnv {
        GridEnv {
            sites,
            workers_per_site: 1,
            capacity_files: 10,
        }
    }

    #[test]
    fn prefers_high_sufferage_task_at_its_best_site() {
        let mut stores: Vec<SiteStore> = (0..2)
            .map(|_| SiteStore::new(10, EvictionPolicy::Lru))
            .collect();
        // Site 0 holds {0,1}: task 0 overlap (2,0) → sufferage 2.
        //                      task 2 overlap (1,1) → sufferage 0.
        // Site 1 holds {2}:    task 1 overlap (0,1), best site 1.
        stores[0].insert(FileId(0));
        stores[0].insert(FileId(1));
        stores[1].insert(FileId(2));
        let mut sched = Sufferage::new(wl());
        sched.initialize(&env(2), &stores);
        let w0 = WorkerId::new(SiteId(0), 0);
        match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Run(t) => assert_eq!(t, TaskId(0), "task 0 suffers most without site 0"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn falls_back_to_local_overlap() {
        let mut stores: Vec<SiteStore> = (0..2)
            .map(|_| SiteStore::new(10, EvictionPolicy::Lru))
            .collect();
        // Only site 1 holds data; a worker at site 0 must still get a task.
        stores[1].insert(FileId(2));
        let mut sched = Sufferage::new(wl());
        sched.initialize(&env(2), &stores);
        let w0 = WorkerId::new(SiteId(0), 0);
        match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Run(_) => {}
            other => panic!("worker must not idle: {other:?}"),
        }
    }

    #[test]
    fn incremental_matches_scan_under_churn() {
        // Drive a scan-mode and an incremental-mode instance through the
        // same interleaving of storage churn, idle requests and a requeue;
        // every assignment must match.
        let wl = Arc::new(CoaddConfig_like());
        let env = env(3);
        let stores_init: Vec<SiteStore> = (0..3)
            .map(|_| SiteStore::new(4, EvictionPolicy::Lru))
            .collect();
        let mut scan = Sufferage::new(Arc::clone(&wl)).with_eval_mode(EvalMode::Indexed);
        let mut inc = Sufferage::new(wl);
        scan.initialize(&env, &stores_init);
        inc.initialize(&env, &stores_init);
        let mut stores = stores_init;
        let file_events: &[(usize, u32)] = &[(0, 0), (1, 2), (0, 3), (2, 1), (1, 4), (0, 5)];
        let mut assigned: Vec<(WorkerId, TaskId)> = Vec::new();
        for (step, &(site, f)) in file_events.iter().enumerate() {
            let f = FileId(f);
            if !stores[site].contains(f) {
                let evicted = stores[site].insert(f);
                for e in evicted {
                    let rc = stores[site].ref_count(e);
                    scan.on_file_evicted(SiteId(site as u32), e, rc);
                    inc.on_file_evicted(SiteId(site as u32), e, rc);
                }
                let rc = stores[site].ref_count(f);
                scan.on_file_added(SiteId(site as u32), f, rc);
                inc.on_file_added(SiteId(site as u32), f, rc);
            }
            let w = WorkerId::new(SiteId((step % 3) as u32), 0);
            let a = scan.on_worker_idle(w, &stores[w.site.index()]);
            let b = inc.on_worker_idle(w, &stores[w.site.index()]);
            assert_eq!(a, b, "step {step}");
            if let Assignment::Run(t) = a {
                assigned.push((w, t));
            }
            // Inject one crash/requeue mid-sequence.
            if step == 2 {
                let (cw, ct) = assigned.pop().expect("something assigned");
                assert!(scan.on_worker_lost(cw, Some(ct)));
                assert!(inc.on_worker_lost(cw, Some(ct)));
            }
        }
        // Drain both to completion identically.
        let w = WorkerId::new(SiteId(0), 0);
        loop {
            let a = scan.on_worker_idle(w, &stores[0]);
            let b = inc.on_worker_idle(w, &stores[0]);
            assert_eq!(a, b);
            match a {
                Assignment::Run(t) => {
                    scan.on_task_complete(w, t);
                    inc.on_task_complete(w, t);
                }
                _ => break,
            }
        }
        for (w, t) in assigned {
            scan.on_task_complete(w, t);
            inc.on_task_complete(w, t);
        }
        assert_eq!(scan.unfinished(), inc.unfinished());
    }

    // A slightly richer workload than `wl()` for the equivalence test.
    #[allow(non_snake_case)]
    fn CoaddConfig_like() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 1.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 1.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 1.0),
                TaskSpec::new(TaskId(3), vec![FileId(3), FileId(4)], 1.0),
                TaskSpec::new(TaskId(4), vec![FileId(4), FileId(5)], 1.0),
                TaskSpec::new(TaskId(5), vec![FileId(0), FileId(5)], 1.0),
            ],
            6,
            1.0,
            "w",
        )
    }

    #[test]
    fn drains_and_finishes() {
        let stores: Vec<SiteStore> = (0..2)
            .map(|_| SiteStore::new(10, EvictionPolicy::Lru))
            .collect();
        let mut sched = Sufferage::new(wl());
        sched.initialize(&env(2), &stores);
        let w = WorkerId::new(SiteId(0), 0);
        let mut got = Vec::new();
        for _ in 0..3 {
            match sched.on_worker_idle(w, &stores[0]) {
                Assignment::Run(t) => {
                    got.push(t);
                    sched.on_task_complete(w, t);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort();
        assert_eq!(got, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(sched.on_worker_idle(w, &stores[0]), Assignment::Finished);
        assert_eq!(sched.unfinished(), 0);
    }
}
