//! Run metrics: everything the paper's figures and tables report.

use serde::{Deserialize, Serialize};

use crate::config::ConfigSummary;

/// Per-site accounting (Table 3 of the paper reports these per-request
/// averages for one site).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteMetrics {
    /// Batch requests served by this site's data server.
    pub requests: u64,
    /// Σ waiting time (enqueue → service start), seconds.
    pub waiting_time_s: f64,
    /// Σ transfer time (service start → last missing file arrived),
    /// seconds.
    pub transfer_time_s: f64,
    /// Files fetched from the external file server.
    pub file_transfers: u64,
    /// Bytes fetched from the external file server.
    pub bytes_transferred: f64,
    /// Tasks that started executing at this site.
    pub tasks_started: u64,
    /// Files evicted by the data server.
    pub evictions: u64,
    /// Σ seconds this site's workers spent crashed (summed over workers).
    pub worker_downtime_s: f64,
    /// Σ seconds this site's data server was down.
    pub server_downtime_s: f64,
    /// Cached files lost to data-server outages at this site.
    pub files_lost: u64,
}

impl SiteMetrics {
    /// Average request waiting time in hours (Table 3 column 1).
    #[must_use]
    pub fn avg_waiting_hours(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.waiting_time_s / self.requests as f64 / 3600.0
        }
    }

    /// Average batch transfer time in hours (Table 3 column 2).
    #[must_use]
    pub fn avg_transfer_hours(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.transfer_time_s / self.requests as f64 / 3600.0
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// The configuration that produced this report.
    pub config: ConfigSummary,
    /// Job makespan in minutes (the paper's main metric).
    pub makespan_minutes: f64,
    /// Total file transfers from the external file server (Figure 5).
    pub file_transfers: u64,
    /// Total bytes moved from the external file server.
    pub bytes_transferred: f64,
    /// Bytes of transfers that were cancelled mid-flight (aborted
    /// replicas) — wasted bandwidth.
    pub cancelled_bytes: f64,
    /// Tasks completed (must equal the workload size).
    pub tasks_completed: u64,
    /// Replica executions launched (task-centric storage affinity only).
    pub replicas_launched: u64,
    /// Replica executions aborted because another copy won. Counts only
    /// executions that were *launched as replicas* — a primary execution
    /// cancelled because its replica finished first is in
    /// [`MetricsReport::primaries_cancelled`] instead, so on fault-free
    /// runs `replicas_launched == replicas_cancelled + replicas_completed`
    /// (with faults, add [`MetricsReport::replicas_lost`]).
    pub replicas_cancelled: u64,
    /// Replica executions that finished first (won their race) — completed
    /// useful work, as opposed to the cancelled speculative flows.
    pub replicas_completed: u64,
    /// Primary executions cancelled because a replica of the same task won.
    pub primaries_cancelled: u64,
    /// Replica executions killed by worker crashes (fault injection).
    pub replicas_lost: u64,
    /// Per-site breakdown, indexed by site id.
    pub per_site: Vec<SiteMetrics>,
    /// Proactive replication pushes issued (ablation extension).
    pub replication_pushes: u64,
    /// Bytes moved by proactive replication (included in
    /// `bytes_transferred`).
    pub replication_bytes: f64,
    /// Total DES events dispatched (diagnostic).
    pub events_dispatched: u64,
    /// Storage-layer evictions across all sites.
    pub total_evictions: u64,
    /// Inserts that overflowed capacity because everything was pinned.
    pub overflow_inserts: u64,
    // --- disruption accounting: all zero on fault-free runs except
    // `wasted_compute_s`, which also counts replica cancellations ---
    /// Executions killed by a fault with no other replica running — each
    /// forces a re-execution.
    pub tasks_lost: u64,
    /// Executions (initial or replica) handed out for tasks that had
    /// previously been fault-lost. Always ≥ [`MetricsReport::tasks_lost`]
    /// once the run completes.
    pub re_executions: u64,
    /// Worker crash events injected.
    pub worker_crashes: u64,
    /// Data-server outage events injected.
    pub server_outages: u64,
    /// Cached files lost to data-server outages (sum over sites).
    pub files_lost: u64,
    /// Compute-seconds thrown away by aborted executions (fault kills and
    /// replica cancellations).
    pub wasted_compute_s: f64,
    // --- checkpoint/restart accounting: all zero when checkpointing is
    // off ---
    /// Checkpoint images successfully written to a site data server.
    pub checkpoints_written: u64,
    /// Checkpoint images lost to data-server outages.
    pub checkpoints_lost: u64,
    /// Executions that resumed from a surviving checkpoint image instead
    /// of restarting from scratch.
    pub checkpoint_restores: u64,
    /// Seconds spent on checkpointing itself: compute stalls while writing
    /// images plus restore-image transfer time.
    pub checkpoint_overhead_s: f64,
    /// Compute-seconds restores rescued from re-execution (the progress a
    /// resumed execution did *not* have to redo).
    pub work_saved_s: f64,
    // --- network faults & transfer resilience: all zero when link faults
    // and the transfer guard are off. `#[serde(default)]` keeps reports
    // written before this accounting existed deserializable ---
    /// Link outage/degradation windows opened (stochastic + scripted).
    #[serde(default)]
    pub link_outages: u64,
    /// Σ seconds links spent down or degraded (summed over links, clipped
    /// to the horizon like worker/server downtime).
    #[serde(default)]
    pub link_downtime_s: f64,
    /// Batch fetches cancelled by the transfer guard's timeout.
    #[serde(default)]
    pub xfer_timeouts: u64,
    /// Retry attempts actually dispatched after a timeout.
    #[serde(default)]
    pub xfer_retries: u64,
    /// Retries that re-sourced the file from an alternate replica site.
    #[serde(default)]
    pub xfer_failovers: u64,
    /// Bytes already delivered that a resuming retry did *not* re-send.
    #[serde(default)]
    pub xfer_bytes_resumed: f64,
    /// Bytes a naive restart-from-zero retry threw away and re-sent.
    #[serde(default)]
    pub xfer_bytes_retransmitted: f64,
    // --- flow conservation ledger: every network flow the run ever
    // started ends in exactly one of the four sinks below or is still
    // active at report time (asserted in `GridSim::report`) ---
    /// Network flows started (batch fetches, checkpoint writes/restores,
    /// proactive replication pushes, retry re-fetches).
    #[serde(default)]
    pub flows_started: u64,
    /// Flows that delivered all their bytes.
    #[serde(default)]
    pub flows_completed: u64,
    /// Flows cancelled by replica abort, worker crash, or server failure.
    #[serde(default)]
    pub flows_aborted: u64,
    /// Flows cancelled by a transfer timeout with retry budget remaining.
    #[serde(default)]
    pub flows_retrying: u64,
    /// Flows cancelled by a transfer timeout with the budget exhausted —
    /// each one requeued its task.
    #[serde(default)]
    pub flows_requeued: u64,
}

impl MetricsReport {
    /// Makespan in hours.
    #[must_use]
    pub fn makespan_hours(&self) -> f64 {
        self.makespan_minutes / 60.0
    }

    /// Average per-request waiting time across all sites, hours.
    #[must_use]
    pub fn avg_waiting_hours(&self) -> f64 {
        let requests: u64 = self.per_site.iter().map(|s| s.requests).sum();
        if requests == 0 {
            return 0.0;
        }
        let total: f64 = self.per_site.iter().map(|s| s.waiting_time_s).sum();
        total / requests as f64 / 3600.0
    }

    /// Average per-request transfer time across all sites, hours.
    #[must_use]
    pub fn avg_transfer_hours(&self) -> f64 {
        let requests: u64 = self.per_site.iter().map(|s| s.requests).sum();
        if requests == 0 {
            return 0.0;
        }
        let total: f64 = self.per_site.iter().map(|s| s.transfer_time_s).sum();
        total / requests as f64 / 3600.0
    }

    /// Average number of file transfers per site.
    #[must_use]
    pub fn avg_transfers_per_site(&self) -> f64 {
        if self.per_site.is_empty() {
            return 0.0;
        }
        self.file_transfers as f64 / self.per_site.len() as f64
    }

    /// Fraction of the makespan `site`'s data server was up, in `[0, 1]`
    /// (1.0 on fault-free runs or a zero-length run).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_availability(&self, site: usize) -> f64 {
        let horizon = self.makespan_minutes * 60.0;
        if horizon <= 0.0 {
            return 1.0;
        }
        (1.0 - self.per_site[site].server_downtime_s / horizon).clamp(0.0, 1.0)
    }

    /// Mean data-server availability across sites.
    #[must_use]
    pub fn mean_server_availability(&self) -> f64 {
        if self.per_site.is_empty() {
            return 1.0;
        }
        (0..self.per_site.len())
            .map(|s| self.site_availability(s))
            .sum::<f64>()
            / self.per_site.len() as f64
    }

    /// Mean worker availability: the fraction of worker-seconds the grid's
    /// workers were up, in `[0, 1]`.
    #[must_use]
    pub fn mean_worker_availability(&self) -> f64 {
        let horizon = self.makespan_minutes * 60.0;
        let worker_seconds = horizon * (self.per_site.len() * self.config.workers_per_site) as f64;
        if worker_seconds <= 0.0 {
            return 1.0;
        }
        let down: f64 = self.per_site.iter().map(|s| s.worker_downtime_s).sum();
        (1.0 - down / worker_seconds).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_averages() {
        let s = SiteMetrics {
            requests: 2,
            waiting_time_s: 7200.0,
            transfer_time_s: 3600.0,
            ..SiteMetrics::default()
        };
        assert!((s.avg_waiting_hours() - 1.0).abs() < 1e-12);
        assert!((s.avg_transfer_hours() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_requests_safe() {
        let s = SiteMetrics::default();
        assert_eq!(s.avg_waiting_hours(), 0.0);
        assert_eq!(s.avg_transfer_hours(), 0.0);
    }
}
