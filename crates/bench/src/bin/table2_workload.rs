//! Table 2 — characteristics of Coadd with 6,000 tasks.
//!
//! Paper values: 53,390 total files; max 101 / min 36 / mean 78.4327 files
//! per task. Our synthetic generator is calibrated to land within a few
//! percent (see `gridsched-workload`'s calibration tests).

use gridsched_bench::{check, fmt, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let wl = cli.workload();
    let s = wl.stats();

    let mut table = Table::new(
        "Table 2: characteristics of Coadd",
        &["metric", "paper", "measured"],
    );
    let paper_total = if cli.quick { f64::NAN } else { 53_390.0 };
    table.push_row(vec![
        "total number of files".into(),
        if cli.quick {
            "n/a (quick)".into()
        } else {
            "53390".into()
        },
        s.total_files.to_string(),
    ]);
    table.push_row(vec![
        "max files needed by a task".into(),
        "101".into(),
        s.max_files_per_task.to_string(),
    ]);
    table.push_row(vec![
        "min files needed by a task".into(),
        "36".into(),
        s.min_files_per_task.to_string(),
    ]);
    table.push_row(vec![
        "avg files needed by a task".into(),
        "78.4327".into(),
        fmt(s.mean_files_per_task, 4),
    ]);
    table.emit(&cli, "table2_workload");

    if !cli.quick {
        check(
            &cli,
            "total files within 5% of 53,390",
            (s.total_files as f64 - paper_total).abs() < paper_total * 0.05,
        );
        check(
            &cli,
            "mean files/task within 3 of 78.4327",
            (s.mean_files_per_task - 78.4327).abs() < 3.0,
        );
    }
    check(
        &cli,
        "min files/task in [30, 45]",
        (30..=45).contains(&s.min_files_per_task),
    );
    check(
        &cli,
        "max files/task in [95, 130]",
        (95..=130).contains(&s.max_files_per_task),
    );
}
