//! The classic workqueue scheduler (Cirne et al. [6]).
//!
//! "One example of the worker-centric scheduling is the traditional
//! workqueue algorithm, which dispatches a task in FIFO order to an idle
//! worker" (§2.3). Workqueue ignores data location entirely — it is the
//! no-locality control in ablations.

use std::collections::VecDeque;
use std::sync::Arc;

use gridsched_storage::SiteStore;
use gridsched_workload::{TaskId, Workload};

use crate::ids::WorkerId;
use crate::scheduler::{Assignment, CompletionOutcome, Scheduler};

/// FIFO pull scheduler.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gridsched_core::{Scheduler, Workqueue};
/// use gridsched_workload::coadd::CoaddConfig;
///
/// let wl = Arc::new(CoaddConfig::small(0).generate());
/// let sched = Workqueue::new(wl);
/// assert_eq!(sched.name(), "workqueue");
/// ```
#[derive(Debug)]
pub struct Workqueue {
    queue: VecDeque<TaskId>,
    total: usize,
    completed: usize,
}

impl Workqueue {
    /// Creates a workqueue over `workload`, dispensing tasks in id order.
    #[must_use]
    pub fn new(workload: Arc<Workload>) -> Self {
        let total = workload.task_count();
        Workqueue {
            queue: (0..total as u32).map(TaskId).collect(),
            total,
            completed: 0,
        }
    }
}

impl Scheduler for Workqueue {
    fn name(&self) -> String {
        "workqueue".to_string()
    }

    fn on_worker_idle(&mut self, _worker: WorkerId, _store: &SiteStore) -> Assignment {
        match self.queue.pop_front() {
            Some(t) => Assignment::Run(t),
            None => Assignment::Finished,
        }
    }

    fn on_task_complete(&mut self, _worker: WorkerId, _task: TaskId) -> CompletionOutcome {
        self.completed += 1;
        CompletionOutcome::default()
    }

    fn on_worker_lost(&mut self, _worker: WorkerId, in_flight: Option<TaskId>) -> bool {
        // FIFO semantics: the lost task goes back to the head so it is
        // retried before untouched work.
        match in_flight {
            Some(task) => {
                self.queue.push_front(task);
                true
            }
            None => false,
        }
    }

    fn unfinished(&self) -> usize {
        self.total - self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::coadd::CoaddConfig;

    #[test]
    fn fifo_order() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let mut q = Workqueue::new(wl);
        let store = SiteStore::new(10, EvictionPolicy::Lru);
        let w = WorkerId::new(SiteId(0), 0);
        for expect in 0..5u32 {
            match q.on_worker_idle(w, &store) {
                Assignment::Run(t) => assert_eq!(t, TaskId(expect)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn finishes_when_drained() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let n = wl.task_count();
        let mut q = Workqueue::new(wl);
        let store = SiteStore::new(10, EvictionPolicy::Lru);
        let w = WorkerId::new(SiteId(0), 0);
        for _ in 0..n {
            match q.on_worker_idle(w, &store) {
                Assignment::Run(t) => {
                    q.on_task_complete(w, t);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(q.on_worker_idle(w, &store), Assignment::Finished);
        assert_eq!(q.unfinished(), 0);
    }
}
