//! End-to-end simulation benchmark: one full grid run per strategy on a
//! small Coadd workload (the unit the experiment harness repeats hundreds
//! of times). Useful for tracking simulator-throughput regressions.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gridsched_core::StrategyKind;
use gridsched_sim::{GridSim, SimConfig};
use gridsched_workload::coadd::CoaddConfig;

fn bench_full_run(c: &mut Criterion) {
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = 400;
    let workload = Arc::new(cfg.generate());

    let mut group = c.benchmark_group("end_to_end_400tasks");
    group.sample_size(10);
    for strategy in [
        StrategyKind::Rest2,
        StrategyKind::Overlap,
        StrategyKind::StorageAffinity,
        StrategyKind::Workqueue,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let config = SimConfig::paper(workload.clone(), strategy).with_sites(5);
                    let report = GridSim::new(config).run();
                    assert_eq!(report.tasks_completed, 400);
                    std::hint::black_box(report)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_run);
criterion_main!(benches);
