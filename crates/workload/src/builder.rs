//! Generic synthetic Bag-of-Tasks workloads.
//!
//! The paper's workload is Coadd, but the scheduling strategies are generic
//! over any Bag-of-Tasks job. This module provides a [`WorkloadBuilder`]
//! with two popularity models used in ablations and tests:
//!
//! * [`Popularity::Uniform`] — every file equally likely; little sharing,
//!   the adversarial case for locality-aware scheduling,
//! * [`Popularity::Zipf`] — a few hot files dominate, the distribution
//!   Ranganathan & Foster's replication study assumes ("geometric"-like
//!   skew).

use rand::Rng;
use serde::{Deserialize, Serialize};

use gridsched_des::rng::{rng_for, Stream};

use crate::types::{FileId, TaskId, TaskSpec, Workload};

/// File-popularity model for the generic generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Popularity {
    /// Uniform file selection.
    Uniform,
    /// Zipf-like selection with the given exponent (`1.0` ≈ classic Zipf).
    Zipf(f64),
}

/// Builder for synthetic Bag-of-Tasks workloads.
///
/// # Example
///
/// ```
/// use gridsched_workload::builder::{Popularity, WorkloadBuilder};
///
/// let wl = WorkloadBuilder::new(100, 1000)
///     .files_per_task(20, 40)
///     .popularity(Popularity::Zipf(1.0))
///     .seed(7)
///     .build();
/// assert_eq!(wl.task_count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    tasks: u32,
    universe: u32,
    files_min: u32,
    files_max: u32,
    popularity: Popularity,
    flops_per_file: f64,
    file_size_bytes: f64,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for `tasks` tasks over a universe of `universe`
    /// files.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(tasks: u32, universe: u32) -> Self {
        assert!(tasks > 0, "need at least one task");
        assert!(universe > 0, "need at least one file");
        WorkloadBuilder {
            tasks,
            universe,
            files_min: 10,
            files_max: 30,
            popularity: Popularity::Uniform,
            flops_per_file: 1.3e12,
            file_size_bytes: 25e6,
            seed: 0,
        }
    }

    /// Sets the per-task file-count range (inclusive).
    #[must_use]
    pub fn files_per_task(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && min <= max, "bad files-per-task range");
        self.files_min = min;
        self.files_max = max;
        self
    }

    /// Sets the popularity model.
    #[must_use]
    pub fn popularity(mut self, p: Popularity) -> Self {
        self.popularity = p;
        self
    }

    /// Sets the compute cost per file.
    #[must_use]
    pub fn flops_per_file(mut self, flops: f64) -> Self {
        assert!(flops >= 0.0 && flops.is_finite());
        self.flops_per_file = flops;
        self
    }

    /// Sets the uniform file size in bytes.
    #[must_use]
    pub fn file_size_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0 && bytes.is_finite());
        self.file_size_bytes = bytes;
        self
    }

    /// Sets the generator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the workload (deterministic in the builder state).
    #[must_use]
    pub fn build(&self) -> Workload {
        let mut rng = rng_for(self.seed, Stream::Workload);
        // Zipf CDF over ranks 1..=universe (precomputed for binary search).
        let zipf_cdf: Option<Vec<f64>> = match self.popularity {
            Popularity::Uniform => None,
            Popularity::Zipf(s) => {
                let mut acc = 0.0;
                let cdf: Vec<f64> = (1..=self.universe as u64)
                    .map(|r| {
                        acc += 1.0 / (r as f64).powf(s);
                        acc
                    })
                    .collect();
                Some(cdf)
            }
        };
        let max_files = self.files_max.min(self.universe);
        let min_files = self.files_min.min(max_files);
        let mut tasks = Vec::with_capacity(self.tasks as usize);
        for i in 0..self.tasks {
            let want = rng.gen_range(min_files..=max_files) as usize;
            let mut set = std::collections::BTreeSet::new();
            // Rejection-sample distinct files; universe >> want in practice.
            let mut guard = 0u32;
            while set.len() < want {
                let f = match &zipf_cdf {
                    None => rng.gen_range(0..self.universe),
                    Some(cdf) => {
                        let total = *cdf.last().expect("non-empty universe");
                        let x: f64 = rng.gen_range(0.0..total);
                        cdf.partition_point(|&c| c < x) as u32
                    }
                };
                set.insert(FileId(f.min(self.universe - 1)));
                guard += 1;
                if guard > 100 * self.universe {
                    break; // pathological config; keep what we have
                }
            }
            let files: Vec<FileId> = set.into_iter().collect();
            let flops = self.flops_per_file * files.len() as f64;
            tasks.push(TaskSpec::new(TaskId(i), files, flops));
        }
        let wl = Workload::new(
            tasks,
            self.universe,
            self.file_size_bytes,
            format!(
                "synthetic(tasks={}, universe={}, files=[{},{}], {:?}, seed={})",
                self.tasks, self.universe, min_files, max_files, self.popularity, self.seed
            ),
        );
        wl.take_prefix(wl.task_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_within_bounds() {
        let wl = WorkloadBuilder::new(50, 500)
            .files_per_task(5, 9)
            .seed(1)
            .build();
        assert_eq!(wl.task_count(), 50);
        for t in wl.tasks() {
            assert!(t.file_count() >= 5 && t.file_count() <= 9);
        }
    }

    #[test]
    fn deterministic() {
        let a = WorkloadBuilder::new(30, 100).seed(9).build();
        let b = WorkloadBuilder::new(30, 100).seed(9).build();
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_is_skewed() {
        let wl = WorkloadBuilder::new(300, 1000)
            .files_per_task(10, 10)
            .popularity(Popularity::Zipf(1.2))
            .seed(2)
            .build();
        let mut refs = wl.reference_counts();
        refs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = refs.iter().take(10).sum();
        let total: u32 = refs.iter().sum();
        assert!(
            top10 as f64 > total as f64 * 0.08,
            "zipf should concentrate references (top10={top10}, total={total})"
        );
    }

    #[test]
    fn uniform_is_flat() {
        let wl = WorkloadBuilder::new(300, 100)
            .files_per_task(10, 10)
            .popularity(Popularity::Uniform)
            .seed(2)
            .build();
        let refs = wl.reference_counts();
        let max = *refs.iter().max().unwrap() as f64;
        let mean = refs.iter().map(|&c| c as f64).sum::<f64>() / refs.len() as f64;
        assert!(max < mean * 2.5, "uniform refs should be flat-ish");
    }

    #[test]
    fn files_per_task_clamped_to_universe() {
        let wl = WorkloadBuilder::new(5, 8).files_per_task(10, 50).build();
        for t in wl.tasks() {
            assert!(t.file_count() <= 8);
        }
    }
}
