//! Figure 6 — makespan vs number of workers per site.
//!
//! Sweeps 2–10 workers per site (Table 1 defaults otherwise). The paper's
//! observations, asserted under `--check`:
//!
//! * makespan broadly decreases with more workers but **flattens** — the
//!   data server serialises batch requests, so its contention grows with
//!   the worker count and eats the extra parallelism;
//! * per-request waiting time rises with the number of workers per site
//!   (the contention factor of Table 3).

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let worker_counts: &[usize] = if cli.quick {
        &[2, 6]
    } else {
        &[2, 4, 6, 8, 10]
    };
    let strategies = paper_strategies();

    let mut table = Table::new(
        "Figure 6: makespan (minutes) vs workers per site",
        &["workers", "algorithm", "makespan_min", "avg_wait_h"],
    );
    let mut results = vec![Vec::new(); strategies.len()];
    for &w in worker_counts {
        for (i, &strategy) in strategies.iter().enumerate() {
            let config = SimConfig::paper(workload.clone(), strategy).with_workers_per_site(w);
            let r = run(&cli, &config);
            table.push_row(vec![
                w.to_string(),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
                fmt(r.avg_waiting_hours(), 3),
            ]);
            results[i].push((r.makespan_minutes, r.avg_waiting_hours()));
        }
    }
    table.emit(&cli, "fig6_makespan_vs_workers");

    let rest = strategies
        .iter()
        .position(|&s| s == StrategyKind::Rest)
        .expect("rest in set");
    let last = worker_counts.len() - 1;
    check(
        &cli,
        "makespan decreases from fewest to most workers (rest)",
        results[rest][0].0 > results[rest][last].0,
    );
    check(
        &cli,
        "per-request waiting time rises with workers per site (rest)",
        results[rest][last].1 > results[rest][0].1,
    );
    if !cli.quick {
        // Flattening: the last doubling of workers (4→8 equivalent; here
        // 8→10) buys much less than proportional speed-up.
        let second_last = worker_counts.len() - 2;
        let gain = results[rest][second_last].0 / results[rest][last].0;
        let ideal = worker_counts[last] as f64 / worker_counts[second_last] as f64;
        check(
            &cli,
            "makespan flattens at high worker counts (rest)",
            gain < ideal,
        );
    }
}
