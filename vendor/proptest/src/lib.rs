//! Offline mini property-testing harness, API-compatible with the subset
//! of `proptest` this workspace uses (see `vendor/README.md`).
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! per-test RNG (seeded from the test's module path and name) and failing
//! inputs are **not shrunk** — the panic message carries the values via
//! the assertion text instead. The strategy combinators (`prop_map`,
//! `prop_flat_map`, tuples, ranges, `Just`, `prop_oneof!`,
//! `collection::vec` / `collection::btree_set`, `any::<T>()`) behave as
//! upstream for sampling purposes.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{any, Arbitrary, Just, Strategy, Union};

/// Per-run configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps whole-simulation
        // properties affordable while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over a test identifier — the per-test RNG seed.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The deterministic RNG of one property test.
#[must_use]
pub fn test_rng(test_id: &str) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_id))
}

/// The `proptest! { ... }` block: zero or more `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ($cfg).cases;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let _ = __case;
                    $(
                        let $pat =
                            $crate::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
