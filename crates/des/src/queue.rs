//! Cancellable, FIFO-stable event priority queue.
//!
//! [`EventQueue`] orders events primarily by [`SimTime`] and secondarily by
//! insertion order, so two events scheduled for the same instant pop in the
//! order they were pushed — this keeps simulations deterministic. Events can
//! be cancelled in O(1) via the [`EventHandle`] returned at push time;
//! cancelled entries are lazily discarded on pop (the standard
//! tombstone technique for binary-heap event queues).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// A handle identifying a scheduled event, used to cancel it later.
///
/// Handles are unique over the lifetime of one [`EventQueue`]; cancelling a
/// handle twice, or after its event fired, is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest-first, and for
// equal times, smallest sequence number first (FIFO).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with stable ordering and O(1)
/// cancellation.
///
/// # Example
///
/// ```
/// use gridsched_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1.0), 'a');
/// q.push(SimTime::from_secs(1.0), 'b');
/// assert_eq!(q.pop().map(|(_, e)| e), Some('a')); // FIFO at equal times
/// assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers currently scheduled (pushed, not yet popped or
    /// cancelled).
    pending: HashSet<u64>,
    /// Sequence numbers cancelled while still in the heap (tombstones).
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`, returning a handle that can
    /// cancel it.
    pub fn push(&mut self, at: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event, if any.
    ///
    /// Takes `&mut self` because it opportunistically drains cancelled
    /// tombstones off the top of the heap.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the queue holds no live events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.len())
            .field("heap_len", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let _a = q.push(t(1.0), "a");
        let b = q.push(t(2.0), "b");
        let c = q.push(t(3.0), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.pop().is_none());
        assert!(!q.cancel(c), "cancel after fire is a no-op");
    }

    #[test]
    fn cancel_after_fire_does_not_corrupt_len() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_cancel() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10.0), 1);
        q.push(t(5.0), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        q.cancel(h1);
        q.push(t(1.0), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Push a batch, cancel a subset, pop everything: the pops are
        /// exactly the non-cancelled entries, ordered by (time, insertion).
        #[test]
        fn pops_are_sorted_stable_and_exclude_cancelled(
            times in proptest::collection::vec(0u32..1000, 1..60),
            cancel_mask in proptest::collection::vec(any::<bool>(), 60),
        ) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                handles.push((i, q.push(SimTime::from_secs(f64::from(t)), i)));
            }
            let mut expected: Vec<(u32, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                if cancel_mask.get(i).copied().unwrap_or(false) {
                    prop_assert!(q.cancel(handles[i].1));
                } else {
                    expected.push((t, i));
                }
            }
            expected.sort_by_key(|&(t, i)| (t, i));
            let mut got = Vec::new();
            while let Some((at, ev)) = q.pop() {
                got.push((at.as_secs() as u32, ev));
            }
            prop_assert_eq!(got, expected);
            prop_assert!(q.is_empty());
        }

        /// len() always equals pushes − pops − successful cancels.
        #[test]
        fn len_is_consistent(ops in proptest::collection::vec(0u8..3, 1..120)) {
            let mut q = EventQueue::new();
            let mut handles: Vec<EventHandle> = Vec::new();
            let mut live: i64 = 0;
            let mut tick = 0.0;
            for op in ops {
                match op {
                    0 => {
                        tick += 1.0;
                        handles.push(q.push(SimTime::from_secs(tick), ()));
                        live += 1;
                    }
                    1 => {
                        if let Some(h) = handles.pop() {
                            if q.cancel(h) {
                                live -= 1;
                            }
                        }
                    }
                    _ => {
                        if q.pop().is_some() {
                            live -= 1;
                        }
                    }
                }
                prop_assert_eq!(q.len() as i64, live);
            }
        }
    }
}
