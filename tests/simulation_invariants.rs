//! Property-based invariants of whole simulations: random small grids and
//! workloads, every strategy, checked through the public API.

use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::StorageAffinity),
        Just(StrategyKind::Overlap),
        Just(StrategyKind::Rest),
        Just(StrategyKind::Combined),
        Just(StrategyKind::Rest2),
        Just(StrategyKind::Combined2),
        Just(StrategyKind::Workqueue),
    ]
}

proptest! {
    // Whole-simulation cases are comparatively expensive; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulations_complete_and_account(
        strategy in arb_strategy(),
        sites in 1usize..5,
        workers in 1usize..4,
        capacity in 120usize..2000,
        wl_seed in 0u64..4,
        seed in 0u64..4,
    ) {
        let mut cfg = CoaddConfig::small(wl_seed);
        cfg.tasks = 120;
        let workload = Arc::new(cfg.generate());
        let total_accesses: u64 =
            workload.tasks().iter().map(|t| t.file_count() as u64).sum();
        let config = SimConfig::paper(workload.clone(), strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(capacity)
            .with_seed(seed);
        let report = GridSim::new(config).run();

        // 1. Exactly-once completion.
        prop_assert_eq!(report.tasks_completed, 120);
        // 2. Transfers bounded by total accesses plus replica re-fetches.
        let bound = total_accesses * (1 + report.replicas_launched / 120 + 1);
        prop_assert!(report.file_transfers <= bound,
            "transfers {} > bound {}", report.file_transfers, bound);
        // 3. Makespan positive and finite.
        prop_assert!(report.makespan_minutes > 0.0);
        prop_assert!(report.makespan_minutes.is_finite());
        // 4. Per-site totals match.
        let site_sum: u64 = report.per_site.iter().map(|s| s.file_transfers).sum();
        prop_assert_eq!(site_sum, report.file_transfers);
        // 5. Requests: one batch per execution (task or replica).
        let requests: u64 = report.per_site.iter().map(|s| s.requests).sum();
        prop_assert!(requests >= 120);
        prop_assert!(requests <= 120 + report.replicas_launched);
        // 6. Waiting/transfer times non-negative.
        for s in &report.per_site {
            prop_assert!(s.waiting_time_s >= 0.0);
            prop_assert!(s.transfer_time_s >= 0.0);
        }
        // 7. Only task-centric strategies replicate.
        if strategy != StrategyKind::StorageAffinity {
            prop_assert_eq!(report.replicas_launched, 0);
        }
        // 8. Replica books balance: on a fault-free run every launched
        // replica either won its race or was cancelled by the winner —
        // cancelled speculative flows must never be double-counted as
        // completed work.
        prop_assert_eq!(
            report.replicas_launched,
            report.replicas_cancelled + report.replicas_completed,
            "launched != cancelled + completed"
        );
        prop_assert_eq!(report.replicas_lost, 0, "no faults, no lost replicas");
        prop_assert!(report.replicas_completed <= report.tasks_completed);
        // 9. Cancelled primaries are replica wins, never more.
        prop_assert!(report.primaries_cancelled <= report.replicas_completed);
    }

    /// The replica throttle preserves every completion/accounting
    /// invariant and never inflates the replica fan-out.
    #[test]
    fn throttled_storage_affinity_invariants(
        sites in 1usize..5,
        workers in 1usize..4,
        cap in 1u32..4,
        budget in 1u32..5,
        wl_seed in 0u64..3,
        seed in 0u64..3,
    ) {
        let mut cfg = CoaddConfig::small(wl_seed);
        cfg.tasks = 120;
        let workload = Arc::new(cfg.generate());
        let base = SimConfig::paper(workload, StrategyKind::StorageAffinity)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(800)
            .with_seed(seed);
        let uncapped = GridSim::new(base.clone()).run();
        let capped = GridSim::new(
            base.with_replica_cap(cap).with_site_replica_budget(budget),
        )
        .run();
        prop_assert_eq!(capped.tasks_completed, 120);
        prop_assert_eq!(
            capped.replicas_launched,
            capped.replicas_cancelled + capped.replicas_completed
        );
        prop_assert!(
            capped.replicas_launched <= uncapped.replicas_launched,
            "throttle inflated replicas: {} > {}",
            capped.replicas_launched,
            uncapped.replicas_launched
        );
    }

    #[test]
    fn determinism_under_any_config(
        strategy in arb_strategy(),
        sites in 1usize..4,
        seed in 0u64..3,
    ) {
        let mut cfg = CoaddConfig::small(0);
        cfg.tasks = 60;
        let workload = Arc::new(cfg.generate());
        let make = || {
            let config = SimConfig::paper(workload.clone(), strategy)
                .with_sites(sites)
                .with_seed(seed)
                .with_capacity(500);
            GridSim::new(config).run()
        };
        prop_assert_eq!(make(), make());
    }
}
