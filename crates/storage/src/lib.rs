//! # gridsched-storage — site data-server storage
//!
//! Every grid site in the paper's system model has **one data server** with
//! a capacity-bounded local storage (measured in number of equally-sized
//! files, Table 1: 6,000 by default). The storage must:
//!
//! * answer overlap queries (`|F_t|` — how many of a task's files are
//!   already local) for the scheduler,
//! * evict files when full ("since a storage is usually limited in size, it
//!   has to replace files at some point of time", §3.1) — we provide LRU
//!   (default), FIFO and LFU policies,
//! * never evict files *pinned* by an in-flight batch request or an
//!   executing task (a worker "can start executing a task only when all the
//!   files necessary for the task are present in the local data storage"),
//! * track `r_i`, the number of **past task references** of each file at
//!   this site — the `combined` metric's input. Reference counts survive
//!   eviction (they are bookkeeping, not cache state).
//!
//! [`SiteStore`] implements all of this with O(log n) insert/evict and O(1)
//! lookup; residency lives in a dense [`FileSet`] bitset (FileIds are dense
//! `u32`s) so membership probes are a shift-and-mask and overlap queries
//! can use AND+popcount via [`FileMask`]. [`ImageVault`] holds the checkpoint images the checkpoint/restart
//! subsystem parks beside the file cache — task-private blobs that never
//! enter the replacement policy but are lost with the server when it fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fileset;
pub mod images;
pub mod policy;
pub mod store;

pub use fileset::{FileMask, FileSet};
pub use images::{CheckpointImage, ImageVault};
pub use policy::EvictionPolicy;
pub use store::{SiteStore, StoreStats};
