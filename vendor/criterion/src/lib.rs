//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses (see `vendor/README.md`).
//!
//! `cargo bench` still works: every benchmark runs a warmup pass plus a
//! fixed number of timed samples and prints `bench-id  median  min..max`
//! lines. There is no statistical analysis, HTML report or regression
//! detection — this harness exists so the bench targets compile and give
//! ballpark timings without network access to the real crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches mostly use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id distinguished only by its parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.per_sample {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(black_box(out));
        }
    }

    /// Times `routine` on fresh input from `setup` (setup excluded).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..self.per_sample {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(black_box(out));
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup.
    let mut warm = Bencher {
        samples: Vec::new(),
        per_sample: 1,
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::new(),
        per_sample: sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (min, max) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!("bench {id:<50} median {median:>12.3?}  ({min:.3?} .. {max:.3?})");
}

/// Declares a benchmark group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
