//! Simulation driver: clock + event queue.
//!
//! [`Schedule`] owns an [`EventQueue`] and the current simulation time. It is
//! deliberately minimal: the grid simulator (in `gridsched-sim`) pulls events
//! one at a time with [`Schedule::next`] and dispatches them itself, which
//! keeps borrow patterns simple for large mutable simulation states.

use crate::queue::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A simulation clock bound to an event queue.
///
/// Guarantees that time never moves backwards: every popped event advances
/// the clock monotonically, and scheduling an event in the past panics.
///
/// # Example
///
/// ```
/// use gridsched_des::{Schedule, SimDuration, SimTime};
///
/// let mut s: Schedule<&str> = Schedule::new();
/// s.schedule_in(SimDuration::from_secs(5.0), "tick");
/// let (t, ev) = s.next().expect("one event pending");
/// assert_eq!(ev, "tick");
/// assert_eq!(s.now(), SimTime::from_secs(5.0));
/// assert_eq!(t, s.now());
/// ```
#[derive(Debug)]
pub struct Schedule<E> {
    queue: EventQueue<E>,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for Schedule<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Schedule<E> {
    /// Creates a schedule with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Schedule {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or is not finite.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        assert!(at.is_finite(), "cannot schedule event at FAR_FUTURE");
        self.queue.push(at, event)
    }

    /// Schedules `event` after a delay from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is not finite.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (still FIFO-ordered after
    /// events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no events remain (the simulation is over).
    // Deliberately named like `Iterator::next` (same semantics), but the
    // driver cannot be an `Iterator`: the borrow must end between events.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue yielded a past event");
        self.now = at;
        self.dispatched += 1;
        Some((at, event))
    }

    /// Timestamp of the next pending event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any events are pending.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut s: Schedule<u32> = Schedule::new();
        s.schedule_at(SimTime::from_secs(10.0), 1);
        s.schedule_at(SimTime::from_secs(4.0), 2);
        s.schedule_at(SimTime::from_secs(7.0), 3);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = s.next() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(last, SimTime::from_secs(10.0));
        assert_eq!(s.now(), SimTime::from_secs(10.0));
        assert_eq!(s.dispatched(), 3);
    }

    #[test]
    fn schedule_now_is_fifo() {
        let mut s: Schedule<u32> = Schedule::new();
        s.schedule_now(1);
        s.schedule_now(2);
        assert_eq!(s.next().map(|(_, e)| e), Some(1));
        assert_eq!(s.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut s: Schedule<u32> = Schedule::new();
        s.schedule_at(SimTime::from_secs(5.0), 1);
        s.next();
        s.schedule_at(SimTime::from_secs(1.0), 2);
    }

    #[test]
    fn cancel_through_schedule() {
        let mut s: Schedule<&str> = Schedule::new();
        let h = s.schedule_in(SimDuration::from_secs(1.0), "a");
        s.schedule_in(SimDuration::from_secs(2.0), "b");
        assert!(s.cancel(h));
        assert_eq!(s.next().map(|(_, e)| e), Some("b"));
        assert!(s.is_idle());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut s: Schedule<u8> = Schedule::new();
        s.schedule_at(SimTime::from_secs(3.0), 0);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(3.0)));
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.pending(), 1);
    }
}
