//! Checkpoint-image storage on a site data server.
//!
//! Checkpoint images live *beside* the file cache on a site's data server:
//! they are task-private blobs, not shared workload files, so they never
//! participate in the replacement policy or overlap queries of
//! [`SiteStore`](crate::SiteStore) — but they share the server's fate. When
//! the server fails, every image it held is lost with it (images are not
//! pinned by anything: an execution keeps its *progress* in worker memory,
//! the image on the server is only needed after a crash).

use gridsched_workload::TaskId;
use std::collections::HashMap;

/// One task's latest checkpoint image as held by a data server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointImage {
    /// Task progress at checkpoint time, in flops completed.
    pub flops_done: f64,
    /// Compute-seconds invested in that progress (what a resume saves from
    /// re-execution).
    pub invested_s: f64,
    /// Image size in bytes.
    pub bytes: f64,
}

/// The checkpoint images resident on one site's data server.
///
/// # Example
///
/// ```
/// use gridsched_storage::{CheckpointImage, ImageVault};
/// use gridsched_workload::TaskId;
///
/// let mut vault = ImageVault::new();
/// vault.put(TaskId(3), CheckpointImage { flops_done: 1e12, invested_s: 40.0, bytes: 25e6 });
/// assert!(vault.get(TaskId(3)).is_some());
/// let lost = vault.fail();
/// assert_eq!(lost, 1);
/// assert!(vault.get(TaskId(3)).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ImageVault {
    images: HashMap<TaskId, CheckpointImage>,
    /// Lifetime count of images written to this server.
    written: u64,
    /// Lifetime count of images lost to server failures.
    lost: u64,
}

impl ImageVault {
    /// An empty vault.
    #[must_use]
    pub fn new() -> Self {
        ImageVault::default()
    }

    /// The latest image of `task` held here, if any.
    #[must_use]
    pub fn get(&self, task: TaskId) -> Option<CheckpointImage> {
        self.images.get(&task).copied()
    }

    /// Stores `task`'s image, superseding any older image of the task held
    /// here.
    pub fn put(&mut self, task: TaskId, image: CheckpointImage) {
        self.images.insert(task, image);
        self.written += 1;
    }

    /// Removes `task`'s image (superseded elsewhere, or the task
    /// completed). Not counted as a loss.
    pub fn remove(&mut self, task: TaskId) {
        self.images.remove(&task);
    }

    /// A data-server outage: every image on this server is lost. Returns
    /// the number of images lost.
    pub fn fail(&mut self) -> u64 {
        let n = self.images.len() as u64;
        self.images.clear();
        self.lost += n;
        n
    }

    /// Number of images currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether no images are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Total bytes of resident images.
    #[must_use]
    pub fn resident_bytes(&self) -> f64 {
        self.images.values().map(|i| i.bytes).sum()
    }

    /// Lifetime count of images written to this server.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Lifetime count of images lost to server failures.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(flops: f64) -> CheckpointImage {
        CheckpointImage {
            flops_done: flops,
            invested_s: flops / 1e10,
            bytes: 25e6,
        }
    }

    #[test]
    fn put_get_supersede() {
        let mut v = ImageVault::new();
        assert!(v.is_empty());
        v.put(TaskId(1), img(1e12));
        v.put(TaskId(1), img(2e12));
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(TaskId(1)).unwrap().flops_done, 2e12);
        assert_eq!(v.written(), 2);
        assert!((v.resident_bytes() - 25e6).abs() < 1e-9);
    }

    #[test]
    fn remove_is_not_a_loss() {
        let mut v = ImageVault::new();
        v.put(TaskId(1), img(1e12));
        v.remove(TaskId(1));
        assert!(v.is_empty());
        assert_eq!(v.lost(), 0);
    }

    #[test]
    fn fail_loses_everything() {
        let mut v = ImageVault::new();
        v.put(TaskId(1), img(1e12));
        v.put(TaskId(2), img(3e12));
        assert_eq!(v.fail(), 2);
        assert!(v.is_empty());
        assert_eq!(v.lost(), 2);
        // A second outage on an empty vault loses nothing more.
        assert_eq!(v.fail(), 0);
        assert_eq!(v.lost(), 2);
    }
}
