//! The paper's basic worker-centric scheduling algorithm (Figure 2).
//!
//! ```text
//! while(forever):
//!     req = GetNextRequest()
//!     if taskQueue is empty: wait for a task
//!     for each task t in taskQueue: CalculateWeight(t)
//!     t = ChooseTask(n)
//!     ReturnRequest(t)
//! ```
//!
//! Each idle worker's request triggers one full weighing of the pending
//! queue against that worker's site storage, then a `ChooseTask(n)`
//! selection. With `n = 1` this yields the deterministic `overlap`, `rest`
//! and `combined` algorithms of §5.3; with `n = 2` the randomized `rest.2`
//! and `combined.2`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gridsched_des::rng::{derive_seed, Stream};
use gridsched_storage::SiteStore;
use gridsched_workload::{FileId, TaskId, Workload};

use gridsched_telemetry::Telemetry;

use crate::choose::ChooseTask;
use crate::ids::{GridEnv, SiteId, WorkerId};
use crate::index::{
    enable_ranks, weigh_all_indexed, ComboAggregates, FileIndex, PendingLog, RankStats, SiteView,
};
use crate::pool::TaskPool;
use crate::scheduler::{Assignment, CompletionOutcome, EvalMode, Scheduler};
use crate::weight::{weigh_all_naive, WeightMetric};

/// Worker-centric scheduler: weight metric + `ChooseTask(n)`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gridsched_core::{Scheduler, WeightMetric, WorkerCentric};
/// use gridsched_workload::coadd::CoaddConfig;
///
/// let wl = Arc::new(CoaddConfig::small(0).generate());
/// let sched = WorkerCentric::new(wl, WeightMetric::Rest, 2, 42);
/// assert_eq!(sched.name(), "rest.2");
/// assert_eq!(sched.unfinished(), 200);
/// ```
pub struct WorkerCentric {
    workload: Arc<Workload>,
    metric: WeightMetric,
    chooser: ChooseTask,
    mode: EvalMode,
    pool: TaskPool,
    index: Arc<FileIndex>,
    views: Vec<SiteView>,
    /// Become-live journal for the lazy per-site ranks (incremental mode):
    /// requeues append here instead of broadcasting into every view.
    log: PendingLog,
    /// Exact `combined` normalisers, maintained sparsely (incremental mode
    /// with [`WeightMetric::Combined`] only).
    combo: Option<ComboAggregates>,
    rng: StdRng,
    running: usize,
    completed: usize,
    /// Hot-path instruments, installed into every view at initialize time
    /// (inert unless [`Scheduler::attach_telemetry`] ran).
    stats: RankStats,
}

impl WorkerCentric {
    /// Creates a worker-centric scheduler over `workload` with the given
    /// metric and `ChooseTask(n)` parameter, seeding its randomization from
    /// `seed`.
    #[must_use]
    pub fn new(workload: Arc<Workload>, metric: WeightMetric, n: usize, seed: u64) -> Self {
        let index = Arc::new(FileIndex::build(&workload));
        let tasks = workload.task_count();
        WorkerCentric {
            workload,
            metric,
            chooser: ChooseTask::new(n),
            mode: EvalMode::default(),
            pool: TaskPool::full(tasks),
            index,
            views: Vec::new(),
            log: PendingLog::new(),
            combo: None,
            rng: StdRng::seed_from_u64(derive_seed(seed, Stream::Scheduler)),
            running: 0,
            completed: 0,
            stats: RankStats::default(),
        }
    }

    /// Creates a scheduler sharing a pre-built [`FileIndex`] (avoids
    /// rebuilding the index when sweeping strategies over one workload).
    #[must_use]
    pub fn with_index(
        workload: Arc<Workload>,
        index: Arc<FileIndex>,
        metric: WeightMetric,
        n: usize,
        seed: u64,
    ) -> Self {
        let tasks = workload.task_count();
        WorkerCentric {
            workload,
            metric,
            chooser: ChooseTask::new(n),
            mode: EvalMode::default(),
            pool: TaskPool::full(tasks),
            index,
            views: Vec::new(),
            log: PendingLog::new(),
            combo: None,
            rng: StdRng::seed_from_u64(derive_seed(seed, Stream::Scheduler)),
            running: 0,
            completed: 0,
            stats: RankStats::default(),
        }
    }

    /// Switches the weight-evaluation path (see [`EvalMode`]). Call before
    /// [`Scheduler::initialize`].
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// The metric in use.
    #[must_use]
    pub fn metric(&self) -> WeightMetric {
        self.metric
    }

    /// The `ChooseTask(n)` parameter.
    #[must_use]
    pub fn choose_n(&self) -> usize {
        self.chooser.n()
    }

    /// Number of pending (unassigned) tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    fn weigh(&self, site: SiteId, store: &SiteStore) -> Vec<(TaskId, f64)> {
        match self.mode {
            EvalMode::Incremental => unreachable!("incremental mode picks off the rank"),
            EvalMode::Indexed => {
                let view = &self.views[site.index()];
                weigh_all_indexed(self.metric, &self.index, &self.pool, view)
            }
            EvalMode::Naive => weigh_all_naive(self.metric, &self.workload, &self.pool, store),
        }
    }

    /// Removes an assigned task from the pending pool. `O(1)` plus the
    /// sparse `combined`-normaliser sweep: no rank is touched — the ranks'
    /// entries go stale in place and are repaired lazily at read time.
    fn pool_remove(&mut self, task: TaskId) {
        self.pool.remove(task);
        if let Some(combo) = self.combo.as_mut() {
            combo.on_pool_remove(
                &self.index,
                task,
                self.workload.task(task).files(),
                &self.views,
            );
        }
    }

    /// Requeues a task (fault recovery): `O(1)` journal append plus the
    /// sparse normaliser sweep; each view re-admits it on its next read.
    fn pool_insert(&mut self, task: TaskId) {
        self.pool.insert(task);
        if let Some(combo) = self.combo.as_mut() {
            combo.on_pool_insert(
                &self.index,
                task,
                self.workload.task(task).files(),
                &self.views,
            );
        }
        if self.mode == EvalMode::Incremental {
            self.log.record(task, &mut self.views);
        }
    }
}

impl Scheduler for WorkerCentric {
    fn name(&self) -> String {
        if self.chooser.is_deterministic() {
            self.metric.to_string()
        } else {
            format!("{}.{}", self.metric, self.chooser.n())
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.stats = RankStats::attach(telemetry);
    }

    fn initialize(&mut self, env: &GridEnv, stores: &[SiteStore]) {
        assert_eq!(env.sites, stores.len(), "one store per site");
        self.views = (0..env.sites)
            .map(|_| {
                let mut v = SiteView::new(self.workload.task_count());
                v.set_stats(self.stats.clone());
                v
            })
            .collect();
        if self.mode == EvalMode::Incremental && self.metric == WeightMetric::Combined {
            self.combo = Some(ComboAggregates::new(&self.index, &self.pool, env.sites));
        }
        // Seed views (and normalisers) from any pre-populated storage
        // (normally empty).
        for (s, store) in stores.iter().enumerate() {
            for f in store.resident() {
                let view = &mut self.views[s];
                view.on_file_added(&self.index, f, store.ref_count(f));
                if let Some(combo) = self.combo.as_mut() {
                    combo.on_file_added(s, &self.index, view, f, store.ref_count(f), &self.pool);
                }
            }
        }
        if self.mode == EvalMode::Incremental {
            enable_ranks(&mut self.views, self.metric, &self.index, &self.pool);
        }
    }

    fn on_worker_idle(&mut self, worker: WorkerId, store: &SiteStore) -> Assignment {
        if self.pool.is_empty() {
            // Worker-centric scheduling never replicates; once the queue is
            // drained this worker is done.
            return Assignment::Finished;
        }
        let task = if self.mode == EvalMode::Incremental {
            let totals = self.combo.as_ref().map(|c| c.totals(worker.site.index()));
            let pool = &self.pool;
            let view = &mut self.views[worker.site.index()];
            view.sync_pending(&self.index, &self.log, |t| pool.contains(t));
            view.pick_ranked(&self.chooser, &mut self.rng, |t| pool.contains(t), totals)
                .expect("pool is non-empty")
        } else {
            let weights = self.weigh(worker.site, store);
            self.chooser
                .pick(&weights, &mut self.rng)
                .expect("pool is non-empty")
        };
        self.pool_remove(task);
        self.running += 1;
        Assignment::Run(task)
    }

    fn on_task_complete(&mut self, _worker: WorkerId, _task: TaskId) -> CompletionOutcome {
        self.running -= 1;
        self.completed += 1;
        CompletionOutcome::default()
    }

    fn on_worker_lost(&mut self, _worker: WorkerId, in_flight: Option<TaskId>) -> bool {
        // Worker-centric schedulers never replicate, so a crashed
        // execution is always the only copy: requeue it.
        match in_flight {
            Some(task) => {
                self.pool_insert(task);
                self.running -= 1;
                true
            }
            None => false,
        }
    }

    fn on_file_added(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_file_added_pruning(&self.index, file, ref_count, |t| pool.contains(t));
            if let Some(combo) = self.combo.as_mut() {
                combo.on_file_added(site.index(), &self.index, view, file, ref_count, &self.pool);
            }
        }
    }

    fn on_file_evicted(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_file_evicted_pruning(&self.index, file, ref_count, |t| pool.contains(t));
            if let Some(combo) = self.combo.as_mut() {
                combo.on_file_evicted(site.index(), &self.index, view, file, ref_count, &self.pool);
            }
        }
    }

    fn on_task_reference(&mut self, site: SiteId, file: FileId) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pool = &self.pool;
            view.on_task_reference_pruning(&self.index, file, |t| pool.contains(t));
            if let Some(combo) = self.combo.as_mut() {
                combo.on_task_reference(site.index(), &self.index, file, &self.pool);
            }
        }
    }

    fn unfinished(&self) -> usize {
        self.workload.task_count() - self.completed
    }
}

impl std::fmt::Debug for WorkerCentric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCentric")
            .field("metric", &self.metric)
            .field("n", &self.chooser.n())
            .field("pending", &self.pool.len())
            .field("running", &self.running)
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;

    fn wl() -> Arc<Workload> {
        Arc::new(Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 1.0),
                TaskSpec::new(TaskId(1), vec![FileId(2)], 1.0),
                TaskSpec::new(TaskId(2), vec![FileId(0), FileId(2)], 1.0),
            ],
            3,
            1.0,
            "w",
        ))
    }

    fn env(sites: usize) -> GridEnv {
        GridEnv {
            sites,
            workers_per_site: 1,
            capacity_files: 10,
        }
    }

    fn stores(n: usize) -> Vec<SiteStore> {
        (0..n)
            .map(|_| SiteStore::new(10, EvictionPolicy::Lru))
            .collect()
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(
            WorkerCentric::new(wl(), WeightMetric::Overlap, 1, 0).name(),
            "overlap"
        );
        assert_eq!(
            WorkerCentric::new(wl(), WeightMetric::Rest, 2, 0).name(),
            "rest.2"
        );
        assert_eq!(
            WorkerCentric::new(wl(), WeightMetric::Combined, 2, 0).name(),
            "combined.2"
        );
    }

    #[test]
    fn prefers_local_overlap() {
        let mut sched = WorkerCentric::new(wl(), WeightMetric::Overlap, 1, 0);
        let mut st = stores(1);
        // Site 0 holds files {0,1} → task 0 has overlap 2, task 2 overlap 1.
        st[0].insert(FileId(0));
        st[0].insert(FileId(1));
        sched.initialize(&env(1), &st);
        let w = WorkerId::new(SiteId(0), 0);
        match sched.on_worker_idle(w, &st[0]) {
            Assignment::Run(t) => assert_eq!(t, TaskId(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rest_prefers_fewest_missing() {
        let mut sched = WorkerCentric::new(wl(), WeightMetric::Rest, 1, 0);
        let mut st = stores(1);
        // Files {0}: task0 misses 1, task1 misses 1, task2 misses 1... make
        // task1 fully resident instead.
        st[0].insert(FileId(2));
        sched.initialize(&env(1), &st);
        let w = WorkerId::new(SiteId(0), 0);
        match sched.on_worker_idle(w, &st[0]) {
            Assignment::Run(t) => assert_eq!(t, TaskId(1), "task 1 needs zero transfers"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drains_pool_then_finishes() {
        let mut sched = WorkerCentric::new(wl(), WeightMetric::Rest, 1, 0);
        let st = stores(1);
        sched.initialize(&env(1), &st);
        let w = WorkerId::new(SiteId(0), 0);
        let mut got = Vec::new();
        for _ in 0..3 {
            match sched.on_worker_idle(w, &st[0]) {
                Assignment::Run(t) => {
                    got.push(t);
                    sched.on_task_complete(w, t);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort();
        assert_eq!(got, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(sched.on_worker_idle(w, &st[0]), Assignment::Finished);
        assert_eq!(sched.unfinished(), 0);
    }

    #[test]
    fn all_eval_modes_agree_end_to_end() {
        for metric in [
            WeightMetric::Overlap,
            WeightMetric::Rest,
            WeightMetric::Combined,
        ] {
            for n in [1usize, 2] {
                let mut scheds: Vec<WorkerCentric> =
                    [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive]
                        .into_iter()
                        .map(|mode| WorkerCentric::new(wl(), metric, n, 7).with_eval_mode(mode))
                        .collect();
                let mut st = stores(2);
                st[1].insert(FileId(0));
                for s in &mut scheds {
                    s.initialize(&env(2), &st);
                }
                let w = WorkerId::new(SiteId(1), 0);
                for _ in 0..4 {
                    let picks: Vec<Assignment> = scheds
                        .iter_mut()
                        .map(|s| s.on_worker_idle(w, &st[1]))
                        .collect();
                    assert_eq!(picks[0], picks[1], "metric {metric} n {n}");
                    assert_eq!(picks[0], picks[2], "metric {metric} n {n}");
                    if let Assignment::Run(t) = picks[0] {
                        for s in &mut scheds {
                            s.on_task_complete(w, t);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_survives_requeue() {
        let mut sched = WorkerCentric::new(wl(), WeightMetric::Rest, 1, 0);
        let st = stores(1);
        sched.initialize(&env(1), &st);
        let w = WorkerId::new(SiteId(0), 0);
        let Assignment::Run(t) = sched.on_worker_idle(w, &st[0]) else {
            panic!("expected work");
        };
        assert!(sched.on_worker_lost(w, Some(t)), "orphaned task requeues");
        let Assignment::Run(t2) = sched.on_worker_idle(w, &st[0]) else {
            panic!("requeued task must be assignable");
        };
        assert_eq!(t, t2, "same deterministic pick after requeue");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sched = WorkerCentric::new(wl(), WeightMetric::Rest, 2, seed);
            let st = stores(1);
            sched.initialize(&env(1), &st);
            let w = WorkerId::new(SiteId(0), 0);
            let mut order = Vec::new();
            while let Assignment::Run(t) = sched.on_worker_idle(w, &st[0]) {
                order.push(t);
                sched.on_task_complete(w, t);
            }
            order
        };
        assert_eq!(run(5), run(5));
    }
}
