//! Run forensics: post-hoc blame decomposition and critical-path
//! extraction over a recorded Chrome trace.
//!
//! The engine's worker tracks carry each task attempt as a strictly
//! sequential run of lifecycle phase spans — `queued`, `staging`,
//! `restore`, `compute`, `checkpoint` — terminated by a `complete` or
//! `aborted` instant. Phase boundaries share timestamps (one phase ends
//! exactly where the next begins), so, per *execution*, the phase
//! durations tile the attempt's extent exactly, and the analyzer's
//! integer-microsecond arithmetic makes "components sum to the span" an
//! identity it asserts rather than an approximation.
//!
//! Per task, the completing execution contributes its phase breakdown
//! (queue-wait / staging / compute / checkpoint overhead / restore); every
//! other attempt — crashed and rescheduled work, or a speculative replica
//! that lost the race — is charged as *re-executed* time. The critical
//! path is extracted by walking blocking spans backward from the last
//! completion: at each step the span covering the current frontier with
//! the earliest start wins (falling back to the latest-ending earlier span
//! across idle gaps), so the path's segments are disjoint and its length
//! lower-bounds the makespan by construction.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, JsonValue};

/// Lifecycle phases that participate in blame and the critical path.
pub const LIFECYCLE_PHASES: [&str; 5] = ["queued", "staging", "restore", "compute", "checkpoint"];

/// One span/instant event parsed back from a Chrome trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Chrome process id (1 = workers, 2 = data servers).
    pub pid: u32,
    /// Chrome thread id (the worker / server index).
    pub tid: u32,
    /// Event name.
    pub name: String,
    /// `'B'`, `'E'` or `'i'`.
    pub phase: char,
    /// Timestamp, microseconds.
    pub ts_us: u64,
    /// Task id from `args.task`, when present.
    pub task: Option<u64>,
}

/// Parses the span/instant events out of a Chrome Trace Event Format
/// document produced by [`crate::Telemetry::to_chrome_trace`] (metadata
/// and counter events are skipped).
///
/// # Errors
///
/// Returns a message on malformed JSON or a missing `traceEvents` array.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("document has no traceEvents array")?;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or("event missing ph")?;
        let phase = match ph {
            "B" => 'B',
            "E" => 'E',
            "i" => 'i',
            _ => continue, // metadata (M) and counter (C) events
        };
        let field = |name: &str| {
            e.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event missing {name}"))
        };
        out.push(ParsedEvent {
            pid: field("pid")? as u32,
            tid: field("tid")? as u32,
            name: e
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("event missing name")?
                .to_string(),
            phase,
            ts_us: field("ts")?,
            task: e
                .get("args")
                .and_then(|a| a.get("task"))
                .and_then(JsonValue::as_u64),
        });
    }
    Ok(out)
}

/// Blame decomposition of one task's lifetime. All durations are
/// microseconds of sim time; the five phase components plus
/// [`TaskBlame::re_executed_us`] sum to [`TaskBlame::span_us`] exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskBlame {
    /// Task id.
    pub task: u64,
    /// Queue-wait (assigned, waiting for service) in the winning attempt.
    pub queue_wait_us: u64,
    /// Input staging transfers in the winning attempt.
    pub staging_us: u64,
    /// Checkpoint-image restore fetches in the winning attempt.
    pub restore_us: u64,
    /// Pure compute in the winning attempt.
    pub compute_us: u64,
    /// Checkpoint-write overhead in the winning attempt.
    pub checkpoint_us: u64,
    /// Total time of attempts that did not complete (crashed and
    /// rescheduled work, losing speculative replicas).
    pub re_executed_us: u64,
    /// Sum of all attempt extents (first span begin to terminating
    /// instant, per attempt).
    pub span_us: u64,
    /// Number of attempts observed.
    pub executions: u32,
    /// Whether any attempt completed.
    pub completed: bool,
}

impl TaskBlame {
    /// The five winning-attempt phase components plus re-executed time.
    #[must_use]
    pub fn components_sum_us(&self) -> u64 {
        self.queue_wait_us
            + self.staging_us
            + self.restore_us
            + self.compute_us
            + self.checkpoint_us
            + self.re_executed_us
    }
}

/// One segment of the extracted critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Lifecycle phase name.
    pub phase: String,
    /// Flat worker index the span ran on.
    pub worker: u32,
    /// Task the span belonged to, when recorded.
    pub task: Option<u64>,
    /// Segment start, microseconds.
    pub start_us: u64,
    /// Segment end, microseconds (clipped to the walk frontier).
    pub end_us: u64,
}

/// The full forensics report over one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// Time of the last task completion, microseconds.
    pub makespan_us: u64,
    /// Per-task blame, ascending by task id.
    pub tasks: Vec<TaskBlame>,
    /// Critical-path segments, ascending by time (disjoint).
    pub critical_path: Vec<PathSegment>,
}

#[derive(Debug)]
struct Execution {
    task: Option<u64>,
    start_us: u64,
    end_us: u64,
    completed: bool,
    phase_us: BTreeMap<String, u64>,
    spans: Vec<PathSegment>,
}

impl BlameReport {
    /// Builds the report from parsed trace events (emission order).
    ///
    /// # Errors
    ///
    /// Returns a message when the worker tracks are not well-formed
    /// (unmatched span ends, a phase left open at a terminating instant
    /// boundary mismatch, or a task attempt with no task id).
    pub fn from_events(events: &[ParsedEvent]) -> Result<BlameReport, String> {
        let mut open: BTreeMap<u32, OpenExecution> = BTreeMap::new();
        let mut executions: Vec<Execution> = Vec::new();
        let mut makespan_us = 0u64;

        for e in events {
            if e.pid != 1 || !is_lifecycle(&e.name) && e.phase != 'i' {
                continue;
            }
            match e.phase {
                'B' if is_lifecycle(&e.name) => {
                    let exec = open.entry(e.tid).or_insert_with(|| OpenExecution {
                        task: None,
                        start_us: e.ts_us,
                        phase_us: BTreeMap::new(),
                        spans: Vec::new(),
                        open_phase: None,
                    });
                    if exec.open_phase.is_some() {
                        return Err(format!(
                            "worker {} begins '{}' inside an open phase at {} us",
                            e.tid, e.name, e.ts_us
                        ));
                    }
                    if exec.task.is_none() {
                        exec.task = e.task;
                    }
                    exec.open_phase = Some((e.name.clone(), e.ts_us));
                }
                'E' if is_lifecycle(&e.name) => {
                    let exec = open.get_mut(&e.tid).ok_or_else(|| {
                        format!("worker {} ends '{}' with no open attempt", e.tid, e.name)
                    })?;
                    let (phase, began) = exec.open_phase.take().ok_or_else(|| {
                        format!("worker {} ends '{}' with no open phase", e.tid, e.name)
                    })?;
                    if phase != e.name {
                        return Err(format!(
                            "worker {} ends '{}' but '{phase}' is open",
                            e.tid, e.name
                        ));
                    }
                    *exec.phase_us.entry(phase.clone()).or_insert(0) += e.ts_us - began;
                    exec.spans.push(PathSegment {
                        phase,
                        worker: e.tid,
                        task: exec.task,
                        start_us: began,
                        end_us: e.ts_us,
                    });
                }
                'i' if e.name == "complete" || e.name == "aborted" => {
                    let Some(mut exec) = open.remove(&e.tid) else {
                        continue; // instants we don't attribute (none today)
                    };
                    if let Some((phase, began)) = exec.open_phase.take() {
                        // Defensive: close a dangling phase at the instant.
                        *exec.phase_us.entry(phase.clone()).or_insert(0) += e.ts_us - began;
                        exec.spans.push(PathSegment {
                            phase,
                            worker: e.tid,
                            task: exec.task,
                            start_us: began,
                            end_us: e.ts_us,
                        });
                    }
                    let completed = e.name == "complete";
                    if completed {
                        makespan_us = makespan_us.max(e.ts_us);
                    }
                    executions.push(Execution {
                        task: exec.task.or(e.task),
                        start_us: exec.start_us,
                        end_us: e.ts_us,
                        completed,
                        phase_us: exec.phase_us,
                        spans: exec.spans,
                    });
                }
                _ => {}
            }
        }
        // A well-formed run trace terminates every attempt; tolerate an
        // interrupted trace by charging open attempts as incomplete.
        for (_tid, mut exec) in open {
            let end = exec.open_phase.take().map_or_else(
                || exec.spans.last().map_or(exec.start_us, |s| s.end_us),
                |(_, b)| b,
            );
            executions.push(Execution {
                task: exec.task,
                start_us: exec.start_us,
                end_us: end,
                completed: false,
                phase_us: exec.phase_us,
                spans: exec.spans,
            });
        }

        let mut by_task: BTreeMap<u64, Vec<&Execution>> = BTreeMap::new();
        for exec in &executions {
            let task = exec
                .task
                .ok_or("task attempt without a task id (trace predates args.task?)")?;
            by_task.entry(task).or_default().push(exec);
        }

        let mut tasks = Vec::with_capacity(by_task.len());
        for (task, execs) in &by_task {
            let mut blame = TaskBlame {
                task: *task,
                executions: execs.len() as u32,
                ..TaskBlame::default()
            };
            for exec in execs {
                blame.span_us += exec.end_us - exec.start_us;
                if exec.completed && !blame.completed {
                    blame.completed = true;
                    let get = |name: &str| exec.phase_us.get(name).copied().unwrap_or(0);
                    blame.queue_wait_us = get("queued");
                    blame.staging_us = get("staging");
                    blame.restore_us = get("restore");
                    blame.compute_us = get("compute");
                    blame.checkpoint_us = get("checkpoint");
                } else {
                    blame.re_executed_us += exec.end_us - exec.start_us;
                }
            }
            debug_assert_eq!(blame.components_sum_us(), blame.span_us);
            tasks.push(blame);
        }

        let all_spans: Vec<&PathSegment> = executions.iter().flat_map(|e| &e.spans).collect();
        let critical_path = extract_critical_path(&all_spans, makespan_us);

        Ok(BlameReport {
            makespan_us,
            tasks,
            critical_path,
        })
    }

    /// Builds the report straight from a Chrome trace document.
    ///
    /// # Errors
    ///
    /// Propagates parse and structural errors.
    pub fn from_chrome_trace(text: &str) -> Result<BlameReport, String> {
        Self::from_events(&parse_chrome_trace(text)?)
    }

    /// Total critical-path length, microseconds (≤ makespan: segments are
    /// disjoint within `[0, makespan]`).
    #[must_use]
    pub fn critical_path_us(&self) -> u64 {
        self.critical_path
            .iter()
            .map(|s| s.end_us - s.start_us)
            .sum()
    }

    /// Critical-path time per phase name.
    #[must_use]
    pub fn path_by_phase(&self) -> BTreeMap<String, u64> {
        let mut by = BTreeMap::new();
        for s in &self.critical_path {
            *by.entry(s.phase.clone()).or_insert(0) += s.end_us - s.start_us;
        }
        by
    }

    /// Renders the machine-readable blame report (one JSON document).
    #[must_use]
    pub fn to_json(&self) -> String {
        let secs = |us: u64| us as f64 / 1e6;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"blame-report\",\"makespan_s\":{:.6},\"task_count\":{},\
             \"completed\":{},\n\"tasks\":[",
            secs(self.makespan_us),
            self.tasks.len(),
            self.tasks.iter().filter(|t| t.completed).count(),
        );
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n{{\"task\":{},\"span_s\":{:.6},\"queue_wait_s\":{:.6},\
                 \"staging_s\":{:.6},\"restore_s\":{:.6},\"compute_s\":{:.6},\
                 \"checkpoint_s\":{:.6},\"re_executed_s\":{:.6},\
                 \"executions\":{},\"completed\":{}}}",
                if i == 0 { "" } else { "," },
                t.task,
                secs(t.span_us),
                secs(t.queue_wait_us),
                secs(t.staging_us),
                secs(t.restore_us),
                secs(t.compute_us),
                secs(t.checkpoint_us),
                secs(t.re_executed_us),
                t.executions,
                t.completed,
            );
        }
        let _ = write!(
            out,
            "],\n\"critical_path\":{{\"length_s\":{:.6},\"segments\":[",
            secs(self.critical_path_us()),
        );
        for (i, s) in self.critical_path.iter().enumerate() {
            let _ = write!(out, "{}\n{{\"phase\":", if i == 0 { "" } else { "," });
            json::write_json_string(&mut out, &s.phase);
            let _ = write!(
                out,
                ",\"worker\":{},\"task\":{},\"start_s\":{:.6},\"end_s\":{:.6}}}",
                s.worker,
                s.task.map_or_else(|| "null".to_string(), |t| t.to_string()),
                secs(s.start_us),
                secs(s.end_us),
            );
        }
        out.push_str("],\n\"by_phase\":{");
        for (i, (phase, us)) in self.path_by_phase().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_json_string(&mut out, phase);
            let _ = write!(out, ":{:.6}", secs(*us));
        }
        out.push_str("}}}\n");
        out
    }

    /// Renders the human top-`k` bottleneck summary.
    #[must_use]
    pub fn summary(&self, top: usize) -> String {
        let secs = |us: u64| us as f64 / 1e6;
        let mut out = String::new();
        let completed = self.tasks.iter().filter(|t| t.completed).count();
        let _ = writeln!(
            out,
            "run forensics: makespan {:.3} s, {} tasks ({completed} completed)",
            secs(self.makespan_us),
            self.tasks.len(),
        );
        let path_us = self.critical_path_us();
        let pct = if self.makespan_us == 0 {
            0.0
        } else {
            100.0 * path_us as f64 / self.makespan_us as f64
        };
        let _ = writeln!(
            out,
            "critical path: {:.3} s across {} segments ({pct:.1}% of makespan)",
            secs(path_us),
            self.critical_path.len(),
        );
        let by_phase = self.path_by_phase();
        let mut phases: Vec<_> = by_phase.iter().collect();
        phases.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (phase, us) in phases {
            let share = if path_us == 0 {
                0.0
            } else {
                100.0 * *us as f64 / path_us as f64
            };
            let _ = writeln!(
                out,
                "  path {phase:<10} {:>10.3} s  ({share:.1}%)",
                secs(*us)
            );
        }
        let mut ranked: Vec<&TaskBlame> = self.tasks.iter().collect();
        ranked.sort_by(|a, b| b.span_us.cmp(&a.span_us).then(a.task.cmp(&b.task)));
        ranked.truncate(top);
        let _ = writeln!(out, "top {} tasks by lifetime:", ranked.len());
        for t in ranked {
            let _ = writeln!(
                out,
                "  task {:>5}: span {:>9.3} s = queue {:.3} + staging {:.3} + restore {:.3} \
                 + compute {:.3} + ckpt {:.3} + re-exec {:.3}  ({} attempt{})",
                t.task,
                secs(t.span_us),
                secs(t.queue_wait_us),
                secs(t.staging_us),
                secs(t.restore_us),
                secs(t.compute_us),
                secs(t.checkpoint_us),
                secs(t.re_executed_us),
                t.executions,
                if t.executions == 1 { "" } else { "s" },
            );
        }
        out
    }
}

#[derive(Debug)]
struct OpenExecution {
    task: Option<u64>,
    start_us: u64,
    phase_us: BTreeMap<String, u64>,
    spans: Vec<PathSegment>,
    open_phase: Option<(String, u64)>,
}

fn is_lifecycle(name: &str) -> bool {
    LIFECYCLE_PHASES.contains(&name)
}

/// Backward greedy walk from `makespan_us` toward 0: at each frontier pick
/// the span covering it with the earliest start (jumping across idle gaps
/// to the latest-ending earlier span when nothing covers the frontier).
/// Segments come out disjoint, so the path length lower-bounds the
/// makespan.
fn extract_critical_path(spans: &[&PathSegment], makespan_us: u64) -> Vec<PathSegment> {
    let mut path = Vec::new();
    let mut cur = makespan_us;
    while cur > 0 {
        let mut best: Option<&PathSegment> = None;
        for s in spans {
            if s.start_us >= cur || s.end_us <= s.start_us {
                continue;
            }
            best = Some(match best {
                None => s,
                Some(b) => {
                    let cover_s = s.end_us.min(cur);
                    let cover_b = b.end_us.min(cur);
                    // Prefer the span reaching the frontier; then the
                    // earliest start; then a deterministic tie-break.
                    if (
                        cover_s,
                        std::cmp::Reverse(s.start_us),
                        std::cmp::Reverse(s.worker),
                    ) > (
                        cover_b,
                        std::cmp::Reverse(b.start_us),
                        std::cmp::Reverse(b.worker),
                    ) {
                        s
                    } else {
                        b
                    }
                }
            });
        }
        let Some(s) = best else { break };
        path.push(PathSegment {
            phase: s.phase.clone(),
            worker: s.worker,
            task: s.task,
            start_us: s.start_us,
            end_us: s.end_us.min(cur),
        });
        cur = s.start_us;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, Track};

    fn report_from(t: &Telemetry) -> BlameReport {
        BlameReport::from_chrome_trace(&t.to_chrome_trace()).unwrap()
    }

    #[test]
    fn single_task_blame_tiles_exactly() {
        let t = Telemetry::enabled();
        let w = Track::worker(0);
        t.span_begin_for_task(w, "queued", 0.0, 7);
        t.span_end(w, "queued", 1.5);
        t.span_begin_for_task(w, "staging", 1.5, 7);
        t.span_end(w, "staging", 4.0);
        t.span_begin_for_task(w, "compute", 4.0, 7);
        t.span_end(w, "compute", 10.0);
        t.instant_for_task(w, "complete", 10.0, 7);
        let r = report_from(&t);
        assert_eq!(r.makespan_us, 10_000_000);
        assert_eq!(r.tasks.len(), 1);
        let b = &r.tasks[0];
        assert!(b.completed);
        assert_eq!(b.queue_wait_us, 1_500_000);
        assert_eq!(b.staging_us, 2_500_000);
        assert_eq!(b.compute_us, 6_000_000);
        assert_eq!(b.span_us, 10_000_000);
        assert_eq!(b.components_sum_us(), b.span_us);
        // The whole run is one worker's chain: path length == makespan.
        assert_eq!(r.critical_path_us(), 10_000_000);
        assert_eq!(r.critical_path.len(), 3);
    }

    #[test]
    fn losing_attempts_are_charged_as_reexecution() {
        let t = Telemetry::enabled();
        let a = Track::worker(0);
        let b = Track::worker(1);
        // Worker 0 crashes mid-compute; worker 1 re-runs and completes.
        t.span_begin_for_task(a, "queued", 0.0, 3);
        t.span_end(a, "queued", 1.0);
        t.span_begin_for_task(a, "compute", 1.0, 3);
        t.span_end(a, "compute", 5.0);
        t.instant_for_task(a, "aborted", 5.0, 3);
        t.span_begin_for_task(b, "queued", 5.0, 3);
        t.span_end(b, "queued", 6.0);
        t.span_begin_for_task(b, "compute", 6.0, 3);
        t.span_end(b, "compute", 9.0);
        t.instant_for_task(b, "complete", 9.0, 3);
        let r = report_from(&t);
        let blame = &r.tasks[0];
        assert_eq!(blame.executions, 2);
        assert_eq!(blame.re_executed_us, 5_000_000);
        assert_eq!(blame.queue_wait_us, 1_000_000);
        assert_eq!(blame.compute_us, 3_000_000);
        assert_eq!(blame.span_us, 9_000_000);
        assert_eq!(blame.components_sum_us(), blame.span_us);
        assert_eq!(r.critical_path_us(), r.makespan_us);
    }

    #[test]
    fn critical_path_jumps_idle_gaps_and_lower_bounds_makespan() {
        let t = Telemetry::enabled();
        let w = Track::worker(2);
        t.span_begin_for_task(w, "compute", 1.0, 0);
        t.span_end(w, "compute", 4.0);
        t.instant_for_task(w, "complete", 4.0, 0);
        // Idle gap [4, 6); second task computes [6, 9).
        t.span_begin_for_task(w, "compute", 6.0, 1);
        t.span_end(w, "compute", 9.0);
        t.instant_for_task(w, "complete", 9.0, 1);
        let r = report_from(&t);
        assert_eq!(r.makespan_us, 9_000_000);
        assert_eq!(r.critical_path_us(), 6_000_000);
        assert!(r.critical_path_us() <= r.makespan_us);
        assert_eq!(r.critical_path.len(), 2);
    }

    #[test]
    fn json_and_summary_render() {
        let t = Telemetry::enabled();
        let w = Track::worker(0);
        t.span_begin_for_task(w, "queued", 0.0, 1);
        t.span_end(w, "queued", 2.0);
        t.instant_for_task(w, "complete", 2.0, 1);
        let r = report_from(&t);
        let jsonified = r.to_json();
        let doc = json::parse(&jsonified).unwrap();
        assert_eq!(
            doc.get("type").and_then(JsonValue::as_str),
            Some("blame-report")
        );
        assert_eq!(
            doc.get("tasks")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            1
        );
        let human = r.summary(5);
        assert!(human.contains("run forensics"));
        assert!(human.contains("critical path"));
    }

    #[test]
    fn malformed_tracks_are_rejected() {
        let t = Telemetry::enabled();
        t.span_end(Track::worker(0), "compute", 1.0);
        let events = parse_chrome_trace(&t.to_chrome_trace()).unwrap();
        assert!(BlameReport::from_events(&events).is_err());
    }
}
