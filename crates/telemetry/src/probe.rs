//! The sim-time probe sampler's data model.
//!
//! The engine samples its own state at fixed sim-time intervals — between
//! dispatched events, never *as* an event, so the sampler cannot perturb
//! the run — and records one [`ProbeSample`] per boundary. The series is
//! the context feed the ROADMAP's adaptive controllers (throttle tuning,
//! churn-aware placement) consume.

use std::fmt::Write as _;

/// Per-site state at one probe instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteProbe {
    /// Batch requests queued at the site's data server (stale entries
    /// included — they are what the server will actually scan).
    pub queue_depth: u64,
    /// Workers staging data, restoring, or computing.
    pub busy_workers: u64,
    /// Workers parked on `Assignment::Wait` verdicts.
    pub parked_workers: u64,
    /// Workers currently down (fault injection).
    pub dead_workers: u64,
    /// Files resident in the site's data server.
    pub server_files: u64,
    /// Whether the data server is down.
    pub server_down: bool,
    /// The control plane's placement score for the site, in milli-units
    /// (`1000` = fully available, `0` = breaker open / crash storm).
    /// Stays `1000` when the churn-placement loop is off — the neutral
    /// multiplier. Fixed-point keeps the probe `Eq`.
    pub control_score_milli: u64,
}

/// One sample of the whole grid's state at a probe boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeSample {
    /// Simulation time of the boundary, seconds.
    pub t_s: f64,
    /// Per-site state, indexed by site.
    pub sites: Vec<SiteProbe>,
    /// Active flows in the fluid network.
    pub in_flight_flows: u64,
    /// Links crossed by at least one active flow.
    pub links_busy: u64,
    /// Total links in the topology (for utilisation ratios).
    pub links_total: u64,
    /// Links currently down or degraded by a fault window.
    pub links_down: u64,
}

impl ProbeSample {
    /// Appends this sample as one JSONL line (`{"type":"probe",…}`).
    pub fn write_jsonl_line(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"type\":\"probe\",\"t_s\":{:.3},\"flows\":{},\"links_busy\":{},\
             \"links_total\":{},\"links_down\":{},\"sites\":[",
            self.t_s, self.in_flight_flows, self.links_busy, self.links_total, self.links_down
        );
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"site\":{i},\"queue\":{},\"busy\":{},\"parked\":{},\"dead\":{},\
                 \"files\":{},\"down\":{},\"score_milli\":{}}}",
                s.queue_depth,
                s.busy_workers,
                s.parked_workers,
                s.dead_workers,
                s.server_files,
                s.server_down,
                s.control_score_milli,
            );
        }
        out.push_str("]}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_line_shape() {
        let p = ProbeSample {
            t_s: 300.0,
            sites: vec![
                SiteProbe {
                    queue_depth: 2,
                    busy_workers: 1,
                    ..SiteProbe::default()
                },
                SiteProbe::default(),
            ],
            in_flight_flows: 3,
            links_busy: 4,
            links_total: 10,
            links_down: 1,
        };
        let mut s = String::new();
        p.write_jsonl_line(&mut s);
        let line = s.trim_end();
        assert!(line.starts_with("{\"type\":\"probe\",\"t_s\":300.000"));
        assert!(line.contains("\"links_down\":1"));
        assert!(line.contains("\"sites\":[{\"site\":0,\"queue\":2,\"busy\":1"));
        assert!(line.contains("\"down\":false"));
        assert!(line.ends_with("]}"));
    }
}
