//! Plain-text workload trace format.
//!
//! Lets the experiment harness persist a generated workload and reload it
//! later (or lets a user feed in a *real* trace — e.g. the original Coadd
//! task→files mapping — without recompiling). The format is deliberately
//! simple and diff-friendly:
//!
//! ```text
//! # gridsched workload v1
//! label <free text>
//! files <num_files>
//! file_size_bytes <f64>
//! task <flops> <file_id> <file_id> ...
//! task <flops> ...
//! ```
//!
//! One `task` line per task, in id order.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::types::{FileId, TaskId, TaskSpec, Workload};

/// Magic first line of the format.
const MAGIC: &str = "# gridsched workload v1";

/// Errors from [`read_trace`].
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a valid trace; the string describes the problem and
    /// the line number.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serialises `workload` to `writer` in the v1 text format.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(workload: &Workload, mut writer: W) -> io::Result<()> {
    let mut buf = String::new();
    buf.push_str(MAGIC);
    buf.push('\n');
    let _ = writeln!(buf, "label {}", workload.label.replace('\n', " "));
    let _ = writeln!(buf, "files {}", workload.file_count());
    let _ = writeln!(buf, "file_size_bytes {}", workload.file_size_bytes);
    for t in workload.tasks() {
        let _ = write!(buf, "task {}", t.flops);
        for f in t.files() {
            let _ = write!(buf, " {}", f.0);
        }
        buf.push('\n');
        // Flush periodically to keep memory flat on huge workloads.
        if buf.len() > 1 << 20 {
            writer.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    writer.write_all(buf.as_bytes())?;
    Ok(())
}

/// Parses a workload from `reader`.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on malformed input and [`TraceError::Io`]
/// on reader failures.
pub fn read_trace<R: Read>(reader: R) -> Result<Workload, TraceError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let first = lines
        .next()
        .ok_or_else(|| TraceError::Parse("empty input".into()))??;
    if first.trim() != MAGIC {
        return Err(TraceError::Parse(format!(
            "line 1: expected `{MAGIC}`, got `{first}`"
        )));
    }
    let mut label = String::from("trace");
    let mut num_files: Option<u32> = None;
    let mut file_size: Option<f64> = None;
    let mut tasks: Vec<TaskSpec> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let lineno = idx + 2;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line has a first token");
        match key {
            "label" => {
                label = line["label".len()..].trim().to_string();
            }
            "files" => {
                let v = parts.next().ok_or_else(|| {
                    TraceError::Parse(format!("line {lineno}: files needs a count"))
                })?;
                num_files = Some(v.parse().map_err(|e| {
                    TraceError::Parse(format!("line {lineno}: bad file count: {e}"))
                })?);
            }
            "file_size_bytes" => {
                let v = parts.next().ok_or_else(|| {
                    TraceError::Parse(format!("line {lineno}: file_size_bytes needs a value"))
                })?;
                file_size = Some(v.parse().map_err(|e| {
                    TraceError::Parse(format!("line {lineno}: bad file size: {e}"))
                })?);
            }
            "task" => {
                let flops: f64 = parts
                    .next()
                    .ok_or_else(|| TraceError::Parse(format!("line {lineno}: task needs flops")))?
                    .parse()
                    .map_err(|e| TraceError::Parse(format!("line {lineno}: bad flops: {e}")))?;
                let files: Result<Vec<FileId>, TraceError> = parts
                    .map(|p| {
                        p.parse::<u32>().map(FileId).map_err(|e| {
                            TraceError::Parse(format!("line {lineno}: bad file id `{p}`: {e}"))
                        })
                    })
                    .collect();
                let files = files?;
                if files.is_empty() {
                    return Err(TraceError::Parse(format!(
                        "line {lineno}: task has no files"
                    )));
                }
                let id =
                    TaskId(u32::try_from(tasks.len()).map_err(|_| {
                        TraceError::Parse(format!("line {lineno}: too many tasks"))
                    })?);
                tasks.push(TaskSpec::new(id, files, flops));
            }
            other => {
                return Err(TraceError::Parse(format!(
                    "line {lineno}: unknown directive `{other}`"
                )));
            }
        }
    }
    let num_files =
        num_files.ok_or_else(|| TraceError::Parse("missing `files` directive".into()))?;
    let file_size =
        file_size.ok_or_else(|| TraceError::Parse("missing `file_size_bytes` directive".into()))?;
    if tasks.is_empty() {
        return Err(TraceError::Parse("trace contains no tasks".into()));
    }
    for t in &tasks {
        for f in t.files() {
            if f.0 >= num_files {
                return Err(TraceError::Parse(format!(
                    "task {} references file {} >= declared universe {}",
                    t.id, f.0, num_files
                )));
            }
        }
    }
    Ok(Workload::new(tasks, num_files, file_size, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coadd::CoaddConfig;

    #[test]
    fn round_trip() {
        let wl = CoaddConfig::small(4).generate();
        let mut buf = Vec::new();
        write_trace(&wl, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(wl, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("nope\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse(_)));
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn rejects_out_of_range_file() {
        let text = format!("{MAGIC}\nfiles 2\nfile_size_bytes 1\ntask 1.0 0 5\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains(">= declared universe"));
    }

    #[test]
    fn rejects_taskless_trace() {
        let text = format!("{MAGIC}\nfiles 2\nfile_size_bytes 1\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("no tasks"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{MAGIC}\n\n# comment\nfiles 2\nfile_size_bytes 1\ntask 1.0 0 1\n");
        let wl = read_trace(text.as_bytes()).unwrap();
        assert_eq!(wl.task_count(), 1);
        assert_eq!(wl.file_count(), 2);
    }

    #[test]
    fn unknown_directive_is_error() {
        let text = format!("{MAGIC}\nbogus 1\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }
}
