//! Scaled-down versions of the paper's qualitative claims, cheap enough
//! for `cargo test`. The full-scale versions live in the experiment
//! binaries' `--check` mode (`gridsched-bench`).

use std::sync::Arc;

use gridsched::prelude::*;

fn workload(tasks: u32) -> Arc<Workload> {
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = tasks;
    Arc::new(cfg.generate())
}

fn run(config: SimConfig, seeds: &[u64]) -> MetricsReport {
    run_averaged(&config, seeds)
}

/// §5.4 / Figure 5: the overlap metric does not consider the number of
/// transfers and therefore performs more of them than `rest`.
#[test]
fn overlap_transfers_exceed_rest() {
    let wl = workload(600);
    let seeds = [0u64, 1];
    let overlap = run(SimConfig::paper(wl.clone(), StrategyKind::Overlap), &seeds);
    let rest = run(SimConfig::paper(wl, StrategyKind::Rest), &seeds);
    assert!(
        overlap.file_transfers as f64 > rest.file_transfers as f64 * 1.2,
        "overlap {} vs rest {}",
        overlap.file_transfers,
        rest.file_transfers
    );
    assert!(overlap.makespan_minutes > rest.makespan_minutes);
}

/// §5.6 / Figure 7: more sites reduce the makespan.
#[test]
fn more_sites_reduce_makespan() {
    let wl = workload(600);
    let seeds = [0u64];
    let small = run(
        SimConfig::paper(wl.clone(), StrategyKind::Combined2).with_sites(4),
        &seeds,
    );
    let large = run(
        SimConfig::paper(wl, StrategyKind::Combined2).with_sites(12),
        &seeds,
    );
    assert!(large.makespan_minutes < small.makespan_minutes);
}

/// §5.7 / Figure 8: larger files grow the makespan.
#[test]
fn larger_files_grow_makespan() {
    let seeds = [0u64];
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = 600;
    let small = run(
        SimConfig::paper(
            Arc::new(cfg.clone().with_file_size_mb(5.0).generate()),
            StrategyKind::Rest,
        ),
        &seeds,
    );
    let large = run(
        SimConfig::paper(
            Arc::new(cfg.with_file_size_mb(50.0).generate()),
            StrategyKind::Rest,
        ),
        &seeds,
    );
    assert!(large.makespan_minutes > small.makespan_minutes);
}

/// §5.5 / Figure 6: adding workers per site reduces makespan, but the
/// per-request waiting time at the serialising data server rises.
#[test]
fn workers_tradeoff() {
    let wl = workload(600);
    let seeds = [0u64];
    let two = run(
        SimConfig::paper(wl.clone(), StrategyKind::Rest).with_workers_per_site(2),
        &seeds,
    );
    let eight = run(
        SimConfig::paper(wl, StrategyKind::Rest).with_workers_per_site(8),
        &seeds,
    );
    assert!(eight.makespan_minutes < two.makespan_minutes);
    assert!(eight.avg_waiting_hours() >= two.avg_waiting_hours());
}

/// §3.2: data replication is orthogonal to worker-centric scheduling —
/// enabling it does not change the worker-centric result much.
#[test]
fn replication_is_orthogonal_for_worker_centric() {
    let wl = workload(600);
    let seeds = [0u64];
    let without = run(SimConfig::paper(wl.clone(), StrategyKind::Rest), &seeds);
    let with = run(
        SimConfig::paper(wl, StrategyKind::Rest).with_replication(ReplicationConfig {
            popularity_threshold: 4,
            max_replicas_per_file: 1,
        }),
        &seeds,
    );
    let delta = (with.makespan_minutes - without.makespan_minutes).abs();
    assert!(
        delta / without.makespan_minutes < 0.15,
        "replication moved worker-centric makespan by {delta} min"
    );
    assert!(with.replication_pushes > 0, "the extension actually ran");
}

/// Table 2 / Figure 3 statistics hold for the full-size workload (cheap —
/// generation only, no simulation).
#[test]
fn workload_statistics_match_table2() {
    let wl = CoaddConfig::paper_6000().generate();
    let s = wl.stats();
    assert_eq!(s.tasks, 6000);
    assert!((s.total_files as f64 - 53_390.0).abs() < 53_390.0 * 0.05);
    assert!((s.mean_files_per_task - 78.4327).abs() < 3.0);
    let pct6 = s.pct_files_with_at_least(6);
    assert!((75.0..=97.0).contains(&pct6), "pct >=6 refs: {pct6}");
}
