//! Smoke tests of the `gridsched` CLI binary (built by Cargo and exposed
//! via `CARGO_BIN_EXE_gridsched`).

use std::path::PathBuf;
use std::process::Command;

fn gridsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gridsched"))
        .args(args)
        .output()
        .expect("spawn gridsched")
}

/// A per-test scratch directory, unique across concurrent test *processes*
/// (pid) and across tests within one process (tag) — a fixed path here
/// makes parallel `cargo test` runs clobber each other's files.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("gridsched-cli-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        TestDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn strategies_lists_all_algorithms() {
    let out = gridsched(&["strategies"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for name in [
        "storage-affinity",
        "overlap",
        "rest",
        "combined",
        "rest.2",
        "combined.2",
        "workqueue",
        "xsufferage",
    ] {
        assert!(stdout.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn workload_stats_and_trace() {
    let dir = TestDir::new("workload-trace");
    let trace = dir.path("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");

    let out = gridsched(&["workload", "--tasks", "150", "--out", trace_str]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("tasks              : 150"));
    assert!(trace.exists());

    // Simulate from the written trace, CSV output.
    let out = gridsched(&[
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--csv",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let mut lines = stdout.lines();
    let header = lines.next().expect("csv header");
    assert!(header.starts_with("strategy,sites,workers"));
    let row = lines.next().expect("csv row");
    assert!(row.starts_with("rest.2,2,1,"), "row: {row}");
}

#[test]
fn simulate_with_fault_injection() {
    let dir = TestDir::new("faults");
    let trace = dir.path("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");
    let out = gridsched(&["workload", "--tasks", "120", "--out", trace_str]);
    assert!(out.status.success());

    let fault_trace = dir.path("faults.trace");
    std::fs::write(&fault_trace, "600 server-fail 1\n5400 server-recover 1\n")
        .expect("write fault trace");
    let args = [
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--strategy",
        "rest.2",
        "--mtbf",
        "3600",
        "--mttr",
        "600",
        "--fault-trace",
        fault_trace.to_str().expect("utf8 path"),
    ];
    let out = gridsched(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(
        stdout.contains("faults            : worker mtbf=3600s"),
        "{stdout}"
    );
    assert!(stdout.contains("re-execution"), "{stdout}");
    assert!(stdout.contains("availability"), "{stdout}");

    // Same invocation again: byte-identical output (determinism).
    let again = gridsched(&args);
    assert_eq!(out.stdout, again.stdout, "fault runs must be deterministic");
}

#[test]
fn simulate_rejects_bad_fault_flags() {
    let out = gridsched(&["simulate", "--mtbf", "-5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");

    // An MTTR without its MTBF would otherwise be silently ignored.
    let out = gridsched(&["simulate", "--mttr", "60"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--mttr requires --mtbf"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--server-mttr", "60"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--server-mttr requires --server-mtbf"),
        "stderr: {stderr}"
    );

    // Repair-shape flags depend on their churn process too.
    let out = gridsched(&["simulate", "--mttr-shape", "0.5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--mttr-shape requires --mtbf"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--server-mttr-shape", "0.5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--server-mttr-shape requires --server-mtbf"),
        "stderr: {stderr}"
    );
}

#[test]
fn simulate_rejects_bad_checkpoint_flags() {
    // Interval/size without a policy would otherwise be silently ignored.
    let out = gridsched(&["simulate", "--checkpoint-interval", "600"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--checkpoint-interval requires --checkpoint-policy"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--checkpoint-size", "50"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--checkpoint-size requires --checkpoint-policy"),
        "stderr: {stderr}"
    );

    // The fixed policy needs its interval.
    let out = gridsched(&["simulate", "--checkpoint-policy", "fixed"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("requires --checkpoint-interval"),
        "stderr: {stderr}"
    );

    // Young/Daly derives its interval from the fault model.
    let out = gridsched(&["simulate", "--checkpoint-policy", "young-daly"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("requires --mtbf"), "stderr: {stderr}");

    let out = gridsched(&["simulate", "--checkpoint-policy", "sometimes"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("unknown checkpoint policy"),
        "stderr: {stderr}"
    );

    let out = gridsched(&[
        "simulate",
        "--checkpoint-policy",
        "fixed",
        "--checkpoint-interval",
        "-60",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");
}

#[test]
fn simulate_with_checkpointing_reports_and_is_deterministic() {
    let dir = TestDir::new("checkpoint");
    let trace = dir.path("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");
    let out = gridsched(&["workload", "--tasks", "120", "--out", trace_str]);
    assert!(out.status.success());

    let args = [
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--strategy",
        "rest.2",
        "--mtbf",
        "3600",
        "--mttr",
        "600",
        "--mttr-shape",
        "0.7",
        "--checkpoint-policy",
        "young-daly",
        "--checkpoint-size",
        "50",
    ];
    let out = gridsched(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(
        stdout.contains("repair-shape=0.70"),
        "fault summary should show the Weibull shape: {stdout}"
    );
    assert!(
        stdout.contains("checkpointing     : young-daly image=50MB"),
        "{stdout}"
    );
    assert!(stdout.contains("checkpoints       :"), "{stdout}");
    assert!(stdout.contains("compute saved"), "{stdout}");

    // Same invocation again: byte-identical output (determinism).
    let again = gridsched(&args);
    assert_eq!(
        out.stdout, again.stdout,
        "checkpointed runs must be deterministic"
    );
}

#[test]
fn simulate_with_replica_throttle() {
    let dir = TestDir::new("throttle");
    let trace = dir.path("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");
    let out = gridsched(&["workload", "--tasks", "120", "--out", trace_str]);
    assert!(out.status.success());

    let args = [
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--strategy",
        "storage-affinity",
        "--replica-cap",
        "2",
        "--site-replica-budget",
        "8",
    ];
    let out = gridsched(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(
        stdout.contains("replica throttle  : cap=2 site-budget=8"),
        "{stdout}"
    );
    // Throttled runs stay deterministic.
    let again = gridsched(&args);
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn simulate_rejects_throttle_for_worker_centric_strategies() {
    let out = gridsched(&[
        "simulate",
        "--strategy",
        "rest.2",
        "--replica-cap",
        "2",
        "--tasks",
        "50",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("only applies to --strategy storage-affinity"),
        "stderr: {stderr}"
    );

    let out = gridsched(&[
        "simulate",
        "--strategy",
        "storage-affinity",
        "--replica-cap",
        "0",
        "--tasks",
        "50",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be >= 1"), "stderr: {stderr}");
}

#[test]
fn simulate_writes_trace_and_metrics_outputs() {
    let dir = TestDir::new("telemetry");
    let trace_json = dir.path("run.trace.json");
    let metrics = dir.path("run.metrics.jsonl");
    let args = [
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--trace-out",
        trace_json.to_str().expect("utf8 path"),
        "--metrics-out",
        metrics.to_str().expect("utf8 path"),
        "--probe-interval",
        "300",
    ];
    let out = gridsched(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("trace written"), "{stdout}");
    assert!(stdout.contains("metrics written"), "{stdout}");

    // Chrome Trace Event Format shape: one traceEvents array with B/E
    // duration pairs and the process-name metadata Perfetto keys on.
    let trace = std::fs::read_to_string(&trace_json).expect("trace file written");
    assert!(
        trace.starts_with("{\"traceEvents\":["),
        "trace: {trace:.80}"
    );
    assert!(trace.contains("\"ph\":\"B\""));
    assert!(trace.contains("\"ph\":\"E\""));
    assert!(trace.contains("\"process_name\""));
    assert!(trace.trim_end().ends_with("]}"));

    // JSONL: instrument lines then probe lines, one object per line.
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(metrics_text.contains("\"type\":\"instrument\""));
    assert!(metrics_text.contains("\"type\":\"probe\""));
    for line in metrics_text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not one JSON object per line: {line}"
        );
    }
}

#[test]
fn simulate_suffixes_telemetry_outputs_per_replicate() {
    let dir = TestDir::new("telemetry-multi");
    let metrics = dir.path("multi.metrics.jsonl");
    let metrics_str = metrics.to_str().expect("utf8 path");
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0,1",
        "--metrics-out",
        metrics_str,
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!metrics.exists(), "multi-seed runs write per-seed files");
    assert!(dir.path("multi.metrics.jsonl.seed0").exists());
    assert!(dir.path("multi.metrics.jsonl.seed1").exists());
}

#[test]
fn simulate_rejects_bad_telemetry_flags() {
    let out = gridsched(&["simulate", "--probe-interval", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");

    let out = gridsched(&["simulate", "--probe-interval", "-60"]);
    assert!(!out.status.success());

    let out = gridsched(&[
        "simulate",
        "--trace-out",
        "/no/such/directory/anywhere/run.json",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("parent"), "stderr: {stderr}");

    let out = gridsched(&[
        "simulate",
        "--metrics-out",
        "/no/such/directory/anywhere/run.jsonl",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("parent"), "stderr: {stderr}");
}

#[test]
fn analyze_blames_a_recorded_trace() {
    let dir = TestDir::new("analyze");
    let trace_json = dir.path("run.trace.json");
    let trace_str = trace_json.to_str().expect("utf8 path");
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--trace-out",
        trace_str,
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let blame = dir.path("blame.json");
    let out = gridsched(&[
        "analyze",
        "--trace",
        trace_str,
        "--blame-out",
        blame.to_str().expect("utf8 path"),
        "--top",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("run forensics: makespan"), "{stdout}");
    assert!(stdout.contains("critical path:"), "{stdout}");
    assert!(stdout.contains("top 3 tasks by lifetime"), "{stdout}");

    let json = std::fs::read_to_string(&blame).expect("blame file written");
    assert!(json.contains("\"type\":\"blame-report\""), "{json:.120}");
    assert!(json.contains("\"critical_path\""), "{json:.120}");
    assert!(json.contains("\"task_count\":120"), "{json:.120}");

    // analyze without its input is a usage error, not a panic.
    let out = gridsched(&["analyze"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--trace"), "stderr: {stderr}");
}

#[test]
fn diff_digests_exit_codes_and_seed_suffix() {
    let dir = TestDir::new("digests");
    let a = dir.path("a.jsonl");
    let b = dir.path("b.jsonl");
    let c = dir.path("c.jsonl");
    let run = |seed: &str, path: &std::path::Path| {
        let out = gridsched(&[
            "simulate",
            "--tasks",
            "120",
            "--sites",
            "2",
            "--topology-seeds",
            "0",
            "--seed",
            seed,
            "--digest-out",
            path.to_str().expect("utf8 path"),
            "--digest-window",
            "600",
        ]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("digest written"), "{stdout}");
    };
    run("1", &a);
    run("1", &b);
    run("2", &c);

    // Identical runs: exit 0 and a final-hash report.
    let out = gridsched(&[
        "diff-digests",
        a.to_str().expect("utf8"),
        b.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("digests identical"), "{stdout}");

    // Seed change: exit 3 with the first divergent window + ordinals.
    let out = gridsched(&[
        "diff-digests",
        a.to_str().expect("utf8"),
        c.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("digests diverge at window"), "{stdout}");
    assert!(stdout.contains("event ordinals"), "{stdout}");

    // Wrong arity is a usage failure (exit 1 with a message), not 3.
    let out = gridsched(&["diff-digests", a.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("exactly two"), "stderr: {stderr}");

    // Multi-replicate runs suffix the digest per seed like the other
    // telemetry outputs.
    let multi = dir.path("multi.jsonl");
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0,1",
        "--digest-out",
        multi.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!multi.exists(), "multi-seed runs write per-seed digests");
    assert!(dir.path("multi.jsonl.seed0").exists());
    assert!(dir.path("multi.jsonl.seed1").exists());
}

#[test]
fn simulate_rejects_bad_digest_and_serve_flags() {
    // Window without its output file would be silently ignored.
    let out = gridsched(&["simulate", "--digest-window", "600"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--digest-window requires --digest-out"),
        "stderr: {stderr}"
    );

    let out = gridsched(&[
        "simulate",
        "--digest-out",
        "/tmp/d.jsonl",
        "--digest-window",
        "0",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");

    let out = gridsched(&[
        "simulate",
        "--digest-out",
        "/no/such/directory/anywhere/d.jsonl",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("parent"), "stderr: {stderr}");

    // Serve flags: bad address, linger without server, multi-replicate.
    let out = gridsched(&["simulate", "--serve-metrics", "not-an-addr"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--serve-metrics"), "stderr: {stderr}");

    let out = gridsched(&["simulate", "--serve-linger", "5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--serve-linger requires --serve-metrics"),
        "stderr: {stderr}"
    );

    let out = gridsched(&[
        "simulate",
        "--serve-metrics",
        "127.0.0.1:0",
        "--topology-seeds",
        "0,1",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("single replicate"), "stderr: {stderr}");
}

#[test]
fn simulate_reports_spread_across_replicates() {
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0,1",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("makespan spread   :") && stdout.contains("across 2 replicates"),
        "{stdout}"
    );

    // Single replicate: no spread line (it would be vacuous).
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(!stdout.contains("makespan spread"), "{stdout}");
}

#[test]
fn simulate_with_link_faults_and_transfer_guard() {
    let dir = TestDir::new("netfaults");
    let trace = dir.path("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");
    let out = gridsched(&["workload", "--tasks", "120", "--out", trace_str]);
    assert!(out.status.success());

    let args = [
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--strategy",
        "rest.2",
        "--link-mtbf",
        "4000",
        "--link-mttr",
        "600",
        "--transfer-timeout",
        "3",
        "--transfer-retries",
        "4",
        "--retry-backoff",
        "30",
    ];
    let out = gridsched(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8");
    assert!(
        stdout.contains("faults            : link mtbf=4000s mttr=600s"),
        "{stdout}"
    );
    assert!(stdout.contains("link faults       :"), "{stdout}");
    assert!(
        stdout.contains("transfer guard    : timeout=3.0x retries=4 backoff=30s"),
        "{stdout}"
    );
    assert!(stdout.contains("transfer recovery :"), "{stdout}");

    // Same invocation again: byte-identical output (determinism).
    let again = gridsched(&args);
    assert_eq!(
        out.stdout, again.stdout,
        "link-fault runs must be deterministic"
    );
}

#[test]
fn simulate_with_scripted_partition_heals_and_completes() {
    let dir = TestDir::new("partition");
    let fault_trace = dir.path("partition.trace");
    std::fs::write(&fault_trace, "600 partition 0\n4200 partition-heal 0\n")
        .expect("write fault trace");
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--fault-trace",
        fault_trace.to_str().expect("utf8 path"),
        "--transfer-timeout",
        "2",
        "--transfer-retries",
        "6",
        "--retry-backoff",
        "60",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(
        stdout.contains("link faults       : 1 outage windows"),
        "{stdout}"
    );
}

#[test]
fn simulate_rejects_bad_network_flags() {
    // Dependent flags without the flag that gives them meaning.
    let out = gridsched(&["simulate", "--link-mttr", "600"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--link-mttr requires --link-mtbf"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--link-degrade-factor", "0.5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--link-degrade-factor requires --link-mtbf"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--transfer-retries", "3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--transfer-retries requires --transfer-timeout"),
        "stderr: {stderr}"
    );

    let out = gridsched(&["simulate", "--retry-backoff", "30"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--retry-backoff requires --transfer-timeout"),
        "stderr: {stderr}"
    );

    // Value validation.
    let out = gridsched(&["simulate", "--link-mtbf", "-5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");

    let out = gridsched(&[
        "simulate",
        "--link-mtbf",
        "4000",
        "--link-degrade-factor",
        "1.5",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be in (0, 1)"), "stderr: {stderr}");

    let out = gridsched(&["simulate", "--transfer-timeout", "1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("must be a multiple > 1"),
        "stderr: {stderr}"
    );

    let out = gridsched(&[
        "simulate",
        "--transfer-timeout",
        "3",
        "--retry-backoff",
        "0",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("must be positive"), "stderr: {stderr}");

    // A scripted link event whose index no replicate's topology has is
    // a clean CLI error, not a mid-run engine assert.
    let dir = TestDir::new("bad-link-index");
    let fault_trace = dir.path("bad-link.trace");
    std::fs::write(&fault_trace, "100 link-down 999999\n").expect("write fault trace");
    let out = gridsched(&[
        "simulate",
        "--tasks",
        "120",
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--fault-trace",
        fault_trace.to_str().expect("utf8 path"),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("fault trace references link 999999"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn simulate_rejects_bad_strategy() {
    let out = gridsched(&["simulate", "--strategy", "magic"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown strategy"), "stderr: {stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = gridsched(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn topology_summary() {
    let out = gridsched(&["topology", "--seed", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("sites     : 90"));
    assert!(stdout.contains("bottleneck"));
}
