//! Coadd campaign planner: use the simulator the way a grid operator
//! would — decide how many sites to rent for a deadline.
//!
//! Given the scaled Coadd job and a target completion time, sweep the
//! number of sites and workers per site under the best scheduler
//! (`combined.2`) and report the cheapest configuration (site-hours) that
//! meets the deadline — the intro's motivating scenario ("it took roughly
//! 70 days to completion" on Grid3).
//!
//! ```sh
//! cargo run --release --example coadd_campaign
//! ```

use std::sync::Arc;

use gridsched::prelude::*;

fn main() {
    let mut coadd = CoaddConfig::paper_6000();
    coadd.tasks = 1200; // keep the example quick
    let workload = Arc::new(coadd.generate());

    let deadline_days = 2.0;
    println!(
        "planning: {} Coadd tasks, deadline {:.0} days, scheduler combined.2",
        workload.task_count(),
        deadline_days
    );
    println!();
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}",
        "sites", "workers/site", "makespan_days", "site_hours", "meets_deadline"
    );

    let mut best: Option<(usize, usize, f64, f64)> = None;
    for sites in [5usize, 10, 15, 20] {
        for workers in [1usize, 2, 4] {
            let config = SimConfig::paper(workload.clone(), StrategyKind::Combined2)
                .with_sites(sites)
                .with_workers_per_site(workers);
            let report = GridSim::new(config).run();
            let days = report.makespan_minutes / 1440.0;
            let site_hours = report.makespan_minutes / 60.0 * sites as f64;
            let ok = days <= deadline_days;
            println!("{sites:>6} {workers:>12} {days:>14.2} {site_hours:>12.0} {ok:>12}",);
            if ok && best.is_none_or(|(_, _, _, cost)| site_hours < cost) {
                best = Some((sites, workers, days, site_hours));
            }
        }
    }

    println!();
    match best {
        Some((sites, workers, days, cost)) => println!(
            "cheapest plan meeting the deadline: {sites} sites x {workers} workers \
             -> {days:.2} days, {cost:.0} site-hours"
        ),
        None => println!("no swept configuration meets the deadline; add sites or workers"),
    }
}
