//! Quickstart: run one simulation with the paper's defaults and print the
//! headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use gridsched::prelude::*;

fn main() {
    // A scaled-down Coadd workload so the example finishes in about a
    // second; swap in `CoaddConfig::paper_6000()` for the paper's full
    // scaled workload.
    let mut coadd = CoaddConfig::paper_6000();
    coadd.tasks = 1000;
    let workload = Arc::new(coadd.generate());
    let stats = workload.stats();
    println!(
        "workload: {} tasks over {} files ({:.1} files/task, {:.0}% of files shared by >=6 tasks)",
        stats.tasks,
        stats.total_files,
        stats.mean_files_per_task,
        stats.pct_files_with_at_least(6),
    );

    // Table 1 defaults: 10 sites, 1 worker per site, 6,000-file data
    // servers, 25 MB files.
    let config = SimConfig::paper(workload, StrategyKind::Combined2);
    let report = GridSim::new(config).run();

    println!();
    println!("algorithm        : {}", report.config.strategy);
    println!(
        "makespan         : {:.0} minutes ({:.1} days)",
        report.makespan_minutes,
        report.makespan_minutes / 1440.0
    );
    println!("file transfers   : {}", report.file_transfers);
    println!(
        "bytes on the wire: {:.1} GB",
        report.bytes_transferred / 1e9
    );
    println!("tasks completed  : {}", report.tasks_completed);
    println!(
        "avg request wait : {:.2} h, avg batch transfer: {:.2} h",
        report.avg_waiting_hours(),
        report.avg_transfer_hours()
    );
}
