//! `gridsched` — command-line front end to the simulator.
//!
//! ```text
//! gridsched simulate [--strategy rest.2] [--sites 10] [--workers 1]
//!                    [--capacity 6000] [--policy lru] [--tasks 6000]
//!                    [--file-size-mb 25] [--seed 0] [--topology-seeds 0,1,2,3,4]
//!                    [--choose-n N] [--replication-threshold T]
//!                    [--replica-cap N] [--site-replica-budget N]
//!                    [--mtbf SECS] [--mttr SECS] [--mttr-shape K]
//!                    [--server-mtbf SECS] [--server-mttr SECS] [--server-mttr-shape K]
//!                    [--fault-trace FILE]
//!                    [--fault-burst-rate SECS] [--fault-burst-size N]
//!                    [--link-mtbf SECS] [--link-mttr SECS]
//!                    [--link-degrade-factor F]
//!                    [--transfer-timeout MULT] [--transfer-retries N]
//!                    [--retry-backoff SECS]
//!                    [--checkpoint-policy none|fixed|young-daly|young-daly-adaptive]
//!                    [--checkpoint-interval SECS] [--checkpoint-size MB]
//!                    [--adaptive throttle,placement,checkpoint|all]
//!                    [--control-tick SECS]
//!                    [--trace FILE] [--csv]
//!                    [--trace-out FILE] [--metrics-out FILE]
//!                    [--probe-interval SECS]
//!                    [--digest-out FILE] [--digest-window SECS]
//!                    [--serve-metrics ADDR] [--serve-linger SECS]
//! gridsched analyze --trace run.json [--blame-out blame.json] [--top K]
//! gridsched diff-digests a.jsonl b.jsonl
//! gridsched workload [--tasks 6000] [--seed 0] [--out FILE]
//! gridsched topology [--seed 0] [--sites 90] [--dot FILE]
//! gridsched strategies
//! ```
//!
//! `simulate` runs one experiment point (averaged over the topology
//! seeds), `analyze` runs post-hoc forensics over a recorded trace
//! (per-task blame decomposition, critical path, top-k bottlenecks),
//! `diff-digests` bisects two determinism-digest streams to the first
//! divergent window and event ordinal, `workload` generates and
//! optionally saves a Coadd trace, `topology` summarises a generated
//! network (optionally exporting Graphviz DOT), `strategies` lists the
//! available algorithms.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use gridsched::prelude::*;
use gridsched::topology::dot::to_dot;
use gridsched::workload::trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Only diff-digests takes positional operands; everywhere else a bare
    // word is a typo worth rejecting up front.
    if command != "diff-digests" && !opts.positionals.is_empty() {
        eprintln!(
            "error: unexpected argument `{}`\n{USAGE}",
            opts.positionals[0]
        );
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "analyze" => cmd_analyze(&opts),
        "diff-digests" => match cmd_diff_digests(&opts) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "workload" => cmd_workload(&opts),
        "topology" => cmd_topology(&opts),
        "strategies" => {
            for s in [
                "storage-affinity",
                "overlap",
                "rest",
                "combined",
                "rest.2",
                "combined.2",
                "workqueue",
                "xsufferage",
            ] {
                println!("{s}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
usage:
  gridsched simulate [--strategy S] [--sites N] [--workers N] [--capacity N]
                     [--policy lru|fifo|lfu] [--tasks N] [--file-size-mb X]
                     [--seed N] [--topology-seeds a,b,c] [--choose-n N]
                     [--replication-threshold N] [--trace FILE] [--csv]
                     [--replica-cap N] [--site-replica-budget N] (storage-affinity
                       replica throttle; default unbounded)
                     [--eval-mode incremental|indexed|naive] (scheduler internals;
                       identical output, different per-decision cost)
                     [--mtbf SECS] [--mttr SECS] (worker churn, default MTTR 600)
                     [--mttr-shape K] (Weibull repair shape; 1 = exponential)
                     [--server-mtbf SECS] [--server-mttr SECS] (default MTTR 900)
                     [--server-mttr-shape K] (Weibull repair shape; 1 = exponential)
                     [--fault-trace FILE] (scripted faults; see gridsched-faults)
                     [--fault-burst-rate SECS] (correlated site-scoped crash
                       bursts every Exp(SECS); requires --mtbf)
                     [--fault-burst-size N] (workers lost per burst, default 4)
                     [--link-mtbf SECS] [--link-mttr SECS] (per-link outage
                       process, default MTTR 900)
                     [--link-degrade-factor F] (fault windows degrade link
                       bandwidth to F in (0,1) instead of cutting the link)
                     [--transfer-timeout MULT] (transfer guard: time out a
                       batch fetch at MULT x its fair-share estimate, MULT > 1)
                     [--transfer-retries N] (retry budget per fetch before the
                       task is requeued, default 3)
                     [--retry-backoff SECS] (exponential backoff base,
                       default 30)
                     [--checkpoint-policy none|fixed|young-daly|young-daly-adaptive]
                     [--checkpoint-interval SECS] (fixed policy's interval)
                     [--checkpoint-size MB] (image size, default 25)
                     [--adaptive throttle,placement,checkpoint|all] (closed-loop
                       controllers tuned from the observed failure process;
                       young-daly-adaptive enables the checkpoint loop itself)
                     [--control-tick SECS] (controller tick period, default 60)
                     [--trace-out FILE] (Chrome Trace Event JSON of task
                       lifecycle spans; open in Perfetto / chrome://tracing)
                     [--metrics-out FILE] (JSONL instrument + probe stream)
                     [--probe-interval SECS] (per-site occupancy sampling)
                     [--digest-out FILE] (windowed determinism digests of the
                       event stream, JSONL; bisect with diff-digests)
                     [--digest-window SECS] (digest window, default 3600 sim s)
                     [--serve-metrics ADDR] (serve Prometheus /metrics and
                       /healthz at ADDR, e.g. 127.0.0.1:9090; single replicate)
                     [--serve-linger SECS] (keep serving after the run ends)
  gridsched analyze --trace run.json [--blame-out blame.json] [--top K]
                     (per-task blame decomposition, critical path, top-k
                      bottlenecks over a --trace-out recording)
  gridsched diff-digests a.jsonl b.jsonl
                     (first divergent window + event ordinal; exit 0 when
                      identical, 3 on divergence)
  gridsched workload [--tasks N] [--seed N] [--file-size-mb X] [--out FILE]
  gridsched topology [--seed N] [--sites N] [--dot FILE]
  gridsched strategies";

/// `--flag value` pairs, boolean flags (`--csv`) and positional operands
/// (`diff-digests a.jsonl b.jsonl`).
struct Opts {
    values: HashMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

impl Opts {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }

    fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

const SWITCHES: &[&str] = &["csv"];

fn parse_flags(args: &[String]) -> Result<Opts, String> {
    let mut values = HashMap::new();
    let mut switches = Vec::new();
    let mut positionals = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            positionals.push(arg.clone());
            continue;
        };
        if SWITCHES.contains(&key) {
            switches.push(key.to_string());
        } else {
            let value = iter
                .next()
                .ok_or_else(|| format!("--{key} needs a value"))?;
            values.insert(key.to_string(), value.clone());
        }
    }
    Ok(Opts {
        values,
        switches,
        positionals,
    })
}

fn parse_seed_list(raw: &str) -> Result<Vec<u64>, String> {
    let seeds: Result<Vec<u64>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    let seeds = seeds.map_err(|e| format!("bad seed list: {e}"))?;
    if seeds.is_empty() {
        return Err("empty seed list".into());
    }
    Ok(seeds)
}

fn load_or_generate_workload(opts: &Opts) -> Result<Arc<Workload>, String> {
    if let Some(path) = opts.values.get("trace") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let wl = trace::read_trace(std::io::BufReader::new(file))
            .map_err(|e| format!("parse {path}: {e}"))?;
        return Ok(Arc::new(wl));
    }
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = opts.get("tasks", 6000u32)?;
    cfg.seed = opts.get("workload-seed", 0u64)?;
    let fsmb: f64 = opts.get("file-size-mb", 25.0)?;
    if fsmb <= 0.0 {
        return Err("--file-size-mb must be positive".into());
    }
    Ok(Arc::new(cfg.with_file_size_mb(fsmb).generate()))
}

fn build_fault_config(opts: &Opts) -> Result<FaultConfig, String> {
    // Dependent flags are rejected (not silently ignored) when the flag
    // that gives them meaning is missing.
    for (dependent, required) in [
        ("mttr", "mtbf"),
        ("mttr-shape", "mtbf"),
        ("server-mttr", "server-mtbf"),
        ("server-mttr-shape", "server-mtbf"),
        ("fault-burst-rate", "mtbf"),
        ("fault-burst-size", "fault-burst-rate"),
        ("link-mttr", "link-mtbf"),
        ("link-degrade-factor", "link-mtbf"),
    ] {
        if opts.values.contains_key(dependent) && !opts.values.contains_key(required) {
            return Err(format!("--{dependent} requires --{required}"));
        }
    }
    let mut faults = FaultConfig::none();
    if let Some(mtbf) = opts.get_opt::<f64>("mtbf")? {
        let mttr: f64 = opts.get("mttr", 600.0)?;
        if mtbf <= 0.0 || mttr <= 0.0 {
            return Err("--mtbf/--mttr must be positive seconds".into());
        }
        faults = faults.with_worker_faults(mtbf, mttr);
        if let Some(shape) = opts.get_opt::<f64>("mttr-shape")? {
            if shape <= 0.0 {
                return Err("--mttr-shape must be a positive Weibull shape".into());
            }
            faults = faults.with_worker_repair_shape(shape);
        }
        if let Some(rate) = opts.get_opt::<f64>("fault-burst-rate")? {
            if rate <= 0.0 || !rate.is_finite() {
                return Err("--fault-burst-rate must be positive seconds".into());
            }
            let size: u32 = opts.get("fault-burst-size", 4u32)?;
            if size == 0 {
                return Err("--fault-burst-size must be >= 1".into());
            }
            faults = faults.with_worker_bursts(rate, size);
        }
    }
    if let Some(mtbf) = opts.get_opt::<f64>("server-mtbf")? {
        let mttr: f64 = opts.get("server-mttr", 900.0)?;
        if mtbf <= 0.0 || mttr <= 0.0 {
            return Err("--server-mtbf/--server-mttr must be positive seconds".into());
        }
        faults = faults.with_server_faults(mtbf, mttr);
        if let Some(shape) = opts.get_opt::<f64>("server-mttr-shape")? {
            if shape <= 0.0 {
                return Err("--server-mttr-shape must be a positive Weibull shape".into());
            }
            faults = faults.with_server_repair_shape(shape);
        }
    }
    if let Some(mtbf) = opts.get_opt::<f64>("link-mtbf")? {
        let mttr: f64 = opts.get("link-mttr", 900.0)?;
        if mtbf <= 0.0 || mttr <= 0.0 {
            return Err("--link-mtbf/--link-mttr must be positive seconds".into());
        }
        faults = faults.with_link_faults(mtbf, mttr);
        if let Some(factor) = opts.get_opt::<f64>("link-degrade-factor")? {
            if factor <= 0.0 || factor >= 1.0 || !factor.is_finite() {
                return Err("--link-degrade-factor must be in (0, 1)".into());
            }
            faults = faults.with_link_degrade_factor(factor);
        }
    }
    if let Some(path) = opts.values.get("fault-trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        faults = faults.with_trace(FaultTrace::parse(&text)?);
    }
    Ok(faults)
}

fn build_checkpoint_config(opts: &Opts, faults: &FaultConfig) -> Result<CheckpointConfig, String> {
    let policy = opts.values.get("checkpoint-policy").map(String::as_str);
    if policy.is_none() || policy == Some("none") {
        for flag in ["checkpoint-interval", "checkpoint-size"] {
            if opts.values.contains_key(flag) {
                return Err(format!("--{flag} requires --checkpoint-policy"));
            }
        }
        return Ok(CheckpointConfig::none());
    }
    let mut ckpt = match policy.expect("checked above") {
        "fixed" => {
            let interval: f64 = opts
                .get_opt("checkpoint-interval")?
                .ok_or("--checkpoint-policy fixed requires --checkpoint-interval")?;
            if interval <= 0.0 {
                return Err("--checkpoint-interval must be positive seconds".into());
            }
            CheckpointConfig::fixed(interval)
        }
        "young-daly" | "youngdaly" | "yd" => {
            if faults.worker_mtbf_s.is_none() {
                return Err(
                    "--checkpoint-policy young-daly derives its interval from the fault \
                     model and requires --mtbf"
                        .into(),
                );
            }
            if opts.values.contains_key("checkpoint-interval") {
                return Err(
                    "--checkpoint-interval only applies to --checkpoint-policy fixed".into(),
                );
            }
            CheckpointConfig::young_daly()
        }
        "young-daly-adaptive" | "yda" => {
            if opts.values.contains_key("checkpoint-interval") {
                return Err(
                    "--checkpoint-interval only applies to --checkpoint-policy fixed".into(),
                );
            }
            CheckpointConfig::young_daly_adaptive()
        }
        other => {
            return Err(format!(
                "unknown checkpoint policy `{other}` (none|fixed|young-daly|young-daly-adaptive)"
            ))
        }
    };
    if let Some(mb) = opts.get_opt::<f64>("checkpoint-size")? {
        if mb <= 0.0 {
            return Err("--checkpoint-size must be positive MB".into());
        }
        ckpt = ckpt.with_size_bytes(mb * 1e6);
    }
    Ok(ckpt)
}

/// `--adaptive` / `--control-tick`: the closed-loop controller surface.
///
/// `--checkpoint-policy young-daly-adaptive` enables the checkpoint loop
/// on its own (the policy *is* the loop's actuator), so `--adaptive
/// checkpoint` is only needed when combining it with other loops
/// explicitly.
fn build_control_config(
    opts: &Opts,
    strategy: StrategyKind,
    adaptive_ckpt_policy: bool,
) -> Result<ControlConfig, String> {
    let mut control = ControlConfig::none();
    if let Some(raw) = opts.values.get("adaptive") {
        for name in raw.split(',').map(str::trim) {
            control = match name {
                "throttle" => control.with_adaptive_throttle(),
                "placement" => control.with_churn_placement(),
                "checkpoint" => control.with_adaptive_checkpoint(),
                "all" => control
                    .with_adaptive_throttle()
                    .with_churn_placement()
                    .with_adaptive_checkpoint(),
                other => {
                    return Err(format!(
                        "unknown control loop `{other}` (throttle|placement|checkpoint|all)"
                    ))
                }
            };
        }
    }
    if adaptive_ckpt_policy {
        control = control.with_adaptive_checkpoint();
    }
    if control.adaptive_throttle && strategy != StrategyKind::StorageAffinity {
        return Err(format!(
            "--adaptive throttle only applies to --strategy storage-affinity (got `{strategy}`)"
        ));
    }
    if control.adaptive_checkpoint && !adaptive_ckpt_policy {
        return Err(
            "--adaptive checkpoint needs --checkpoint-policy young-daly-adaptive \
             (the loop re-derives that policy's interval)"
                .into(),
        );
    }
    if let Some(tick) = opts.get_opt::<f64>("control-tick")? {
        if control.is_inert() {
            return Err(
                "--control-tick requires --adaptive (or --checkpoint-policy \
                 young-daly-adaptive)"
                    .into(),
            );
        }
        if tick <= 0.0 || !tick.is_finite() {
            return Err("--control-tick must be positive sim seconds".into());
        }
        control = control.with_tick_s(tick);
    }
    Ok(control)
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let strategy: StrategyKind = opts.get("strategy", StrategyKind::Rest2)?;
    let workload = load_or_generate_workload(opts)?;
    let mut config = SimConfig::paper(workload, strategy)
        .with_sites(opts.get("sites", 10usize)?)
        .with_workers_per_site(opts.get("workers", 1usize)?)
        .with_capacity(opts.get("capacity", 6000usize)?)
        .with_policy(opts.get("policy", EvictionPolicy::Lru)?)
        .with_seed(opts.get("seed", 0u64)?);
    if let Some(n) = opts.get_opt::<usize>("choose-n")? {
        config = config.with_choose_n(n);
    }
    if let Some(mode) = opts.get_opt::<EvalMode>("eval-mode")? {
        config = config.with_eval_mode(mode);
    }
    if let Some(t) = opts.get_opt::<u32>("replication-threshold")? {
        config = config.with_replication(ReplicationConfig {
            popularity_threshold: t,
            max_replicas_per_file: 1,
        });
    }
    for flag in ["replica-cap", "site-replica-budget"] {
        if opts.values.contains_key(flag) && strategy != StrategyKind::StorageAffinity {
            return Err(format!(
                "--{flag} only applies to --strategy storage-affinity (got `{strategy}`)"
            ));
        }
    }
    if let Some(cap) = opts.get_opt::<u32>("replica-cap")? {
        if cap == 0 {
            return Err("--replica-cap must be >= 1".into());
        }
        config = config.with_replica_cap(cap);
    }
    if let Some(budget) = opts.get_opt::<u32>("site-replica-budget")? {
        if budget == 0 {
            return Err("--site-replica-budget must be >= 1".into());
        }
        config = config.with_site_replica_budget(budget);
    }
    for (dependent, required) in [
        ("transfer-retries", "transfer-timeout"),
        ("retry-backoff", "transfer-timeout"),
    ] {
        if opts.values.contains_key(dependent) && !opts.values.contains_key(required) {
            return Err(format!("--{dependent} requires --{required}"));
        }
    }
    if let Some(mult) = opts.get_opt::<f64>("transfer-timeout")? {
        if mult <= 1.0 || !mult.is_finite() {
            return Err("--transfer-timeout must be a multiple > 1".into());
        }
        config = config.with_transfer_timeout(mult);
        if let Some(retries) = opts.get_opt::<u32>("transfer-retries")? {
            config = config.with_transfer_retries(retries);
        }
        if let Some(backoff) = opts.get_opt::<f64>("retry-backoff")? {
            if backoff <= 0.0 || !backoff.is_finite() {
                return Err("--retry-backoff must be positive seconds".into());
            }
            config = config.with_retry_backoff(backoff);
        }
    }
    if let Some(interval) = opts.get_opt::<f64>("probe-interval")? {
        if interval <= 0.0 || !interval.is_finite() {
            return Err("--probe-interval must be positive seconds".into());
        }
        config = config.with_probe_interval(interval);
    }
    for flag in ["trace-out", "metrics-out", "digest-out"] {
        if let Some(path) = opts.values.get(flag) {
            validate_out_path(flag, path)?;
        }
    }
    if let Some(path) = opts.values.get("trace-out") {
        config = config.with_trace_out(path.clone());
    }
    if let Some(path) = opts.values.get("metrics-out") {
        config = config.with_metrics_out(path.clone());
    }
    if let Some(path) = opts.values.get("digest-out") {
        config = config.with_digest_out(path.clone());
    }
    if let Some(window) = opts.get_opt::<f64>("digest-window")? {
        if !opts.values.contains_key("digest-out") {
            return Err("--digest-window requires --digest-out".into());
        }
        if window <= 0.0 || !window.is_finite() {
            return Err("--digest-window must be positive sim seconds".into());
        }
        config = config.with_digest_window(window);
    }
    if let Some(linger) = opts.get_opt::<f64>("serve-linger")? {
        if !opts.values.contains_key("serve-metrics") {
            return Err("--serve-linger requires --serve-metrics".into());
        }
        if linger < 0.0 || !linger.is_finite() {
            return Err("--serve-linger must be non-negative seconds".into());
        }
        config = config.with_serve_linger(linger);
    }
    if let Some(addr) = opts.values.get("serve-metrics") {
        addr.parse::<std::net::SocketAddr>()
            .map_err(|e| format!("--serve-metrics: bad address `{addr}`: {e}"))?;
        config = config.with_serve_metrics(addr.clone());
    }
    let faults = build_fault_config(opts)?;
    let checkpointing = build_checkpoint_config(opts, &faults)?;
    let control = build_control_config(
        opts,
        strategy,
        checkpointing.policy == CheckpointPolicy::YoungDalyAdaptive,
    )?;
    if !control.is_inert() {
        config = config.with_control(control);
    }
    if !faults.is_inert() {
        if let Some(trace) = &faults.trace {
            trace.validate(config.sites, config.workers_per_site)?;
        }
        config = config.with_faults(faults);
    }
    if !checkpointing.is_inert() {
        config = config.with_checkpointing(checkpointing);
    }
    let seeds = parse_seed_list(
        opts.values
            .get("topology-seeds")
            .map_or("0,1,2,3,4", String::as_str),
    )?;
    if config.serve_metrics.is_some() && seeds.len() > 1 {
        return Err(
            "--serve-metrics needs a single replicate (replicates run concurrently and \
             would contend for the port); pass one --topology-seeds entry"
                .into(),
        );
    }
    // Link indices are topology-scoped, so the grid-shape validation
    // above cannot see them; check against every replicate's generated
    // topology here rather than letting the engine assert mid-run.
    if let Some(trace) = config.faults.as_ref().and_then(|f| f.trace.as_ref()) {
        if let Some(ml) = trace.max_link() {
            for &ts in &seeds {
                let links = generate_topology(&config.clone().with_topology_seed(ts).topology)
                    .graph
                    .bandwidths()
                    .len();
                if ml >= links {
                    return Err(format!(
                        "fault trace references link {ml} but topology seed {ts} has only \
                         {links} links"
                    ));
                }
            }
        }
    }
    let telemetry_requested = config.telemetry_requested();
    let (report, spread) = run_averaged_with_spread(&config, &seeds);

    if opts.has("csv") {
        println!(
            "strategy,sites,workers,capacity,policy,tasks,makespan_min,file_transfers,bytes,avg_wait_h,avg_xfer_h,replicas,tasks_lost,re_executions,worker_availability,server_availability,ckpt_written,ckpt_lost,ckpt_restores,ckpt_overhead_h,work_saved_h,makespan_min_lo,makespan_min_hi"
        );
        println!(
            "{},{},{},{},{},{},{:.1},{},{:.0},{:.4},{:.4},{},{},{},{:.4},{:.4},{},{},{},{:.4},{:.4},{:.1},{:.1}",
            report.config.strategy,
            report.config.sites,
            report.config.workers_per_site,
            report.config.capacity_files,
            report.config.policy,
            report.config.tasks,
            report.makespan_minutes,
            report.file_transfers,
            report.bytes_transferred,
            report.avg_waiting_hours(),
            report.avg_transfer_hours(),
            report.replicas_launched,
            report.tasks_lost,
            report.re_executions,
            report.mean_worker_availability(),
            report.mean_server_availability(),
            report.checkpoints_written,
            report.checkpoints_lost,
            report.checkpoint_restores,
            report.checkpoint_overhead_s / 3600.0,
            report.work_saved_s / 3600.0,
            spread.makespan_minutes.0,
            spread.makespan_minutes.1,
        );
    } else {
        println!("strategy          : {}", report.config.strategy);
        println!(
            "grid              : {} sites x {} workers, capacity {} files, {} policy",
            report.config.sites,
            report.config.workers_per_site,
            report.config.capacity_files,
            report.config.policy
        );
        println!(
            "workload          : {} tasks, {:.0} MB files",
            report.config.tasks, report.config.file_size_mb
        );
        println!("topology seeds    : {seeds:?} (averaged)");
        println!(
            "makespan          : {:.0} min ({:.1} days)",
            report.makespan_minutes,
            report.makespan_minutes / 1440.0
        );
        if spread.replicates > 1 {
            println!(
                "makespan spread   : {:.0}–{:.0} min across {} replicates",
                spread.makespan_minutes.0, spread.makespan_minutes.1, spread.replicates
            );
        }
        println!("file transfers    : {}", report.file_transfers);
        println!(
            "bytes transferred : {:.1} GB",
            report.bytes_transferred / 1e9
        );
        println!(
            "request waits     : avg {:.3} h; batch transfers avg {:.3} h",
            report.avg_waiting_hours(),
            report.avg_transfer_hours()
        );
        if report.config.replica_throttle != "none" {
            println!("replica throttle  : {}", report.config.replica_throttle);
        }
        if report.config.control != "none" {
            println!("adaptive control  : {}", report.config.control);
        }
        if report.replicas_launched > 0 {
            println!(
                "replication       : {} launched, {} won, {} cancelled, {:.1} GB wasted",
                report.replicas_launched,
                report.replicas_completed,
                report.replicas_cancelled,
                report.cancelled_bytes / 1e9
            );
        }
        if report.replication_pushes > 0 {
            println!(
                "proactive pushes  : {} ({:.1} GB)",
                report.replication_pushes,
                report.replication_bytes / 1e9
            );
        }
        if report.config.faults != "none" {
            println!("faults            : {}", report.config.faults);
            println!(
                "churn             : {} worker crashes, {} server outages, {} files lost",
                report.worker_crashes, report.server_outages, report.files_lost
            );
            println!(
                "re-execution      : {} tasks lost, {} re-executions, {:.1} h compute wasted",
                report.tasks_lost,
                report.re_executions,
                report.wasted_compute_s / 3600.0
            );
            println!(
                "availability      : workers {:.2}%, data servers {:.2}%",
                report.mean_worker_availability() * 100.0,
                report.mean_server_availability() * 100.0
            );
        }
        if report.link_outages > 0 {
            println!(
                "link faults       : {} outage windows, {:.1} h link downtime",
                report.link_outages,
                report.link_downtime_s / 3600.0
            );
        }
        if report.config.transfer_guard != "none" {
            println!("transfer guard    : {}", report.config.transfer_guard);
            println!(
                "transfer recovery : {} timeouts, {} retries, {} failovers, {} requeues",
                report.xfer_timeouts,
                report.xfer_retries,
                report.xfer_failovers,
                report.flows_requeued
            );
            println!(
                "resume savings    : {:.2} GB resumed, {:.2} GB retransmitted",
                report.xfer_bytes_resumed / 1e9,
                report.xfer_bytes_retransmitted / 1e9
            );
        }
        if report.config.checkpointing != "none" {
            println!("checkpointing     : {}", report.config.checkpointing);
            println!(
                "checkpoints       : {} written, {} lost, {} restores",
                report.checkpoints_written, report.checkpoints_lost, report.checkpoint_restores
            );
            println!(
                "checkpoint cost   : {:.1} h overhead; {:.1} h of compute saved from re-execution",
                report.checkpoint_overhead_s / 3600.0,
                report.work_saved_s / 3600.0
            );
        }
        // Replicates run concurrently, so multi-seed runs suffix the
        // output paths per seed (see `SimConfig::suffix_outputs_for_seed`).
        let suffix = if seeds.len() > 1 { ".seed<N>" } else { "" };
        if telemetry_requested {
            if let Some(path) = &config.trace_out {
                println!("trace written     : {path}{suffix}");
            }
            if let Some(path) = &config.metrics_out {
                println!("metrics written   : {path}{suffix}");
            }
        }
        if let Some(path) = &config.digest_out {
            println!("digest written    : {path}{suffix}");
        }
        if let Some(addr) = &config.serve_metrics {
            println!("metrics served    : http://{addr}/metrics (run finished)");
        }
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let path = opts
        .values
        .get("trace")
        .ok_or("analyze requires --trace FILE (a Chrome trace written by simulate --trace-out)")?;
    let top: usize = opts.get("top", 5usize)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report =
        BlameReport::from_chrome_trace(&text).map_err(|e| format!("analyze {path}: {e}"))?;
    if let Some(out) = opts.values.get("blame-out") {
        validate_out_path("blame-out", out)?;
        std::fs::write(out, report.to_json()).map_err(|e| format!("write {out}: {e}"))?;
    }
    print!("{}", report.summary(top));
    if let Some(out) = opts.values.get("blame-out") {
        println!("blame written     : {out}");
    }
    Ok(())
}

fn cmd_diff_digests(opts: &Opts) -> Result<ExitCode, String> {
    let [a_path, b_path] = opts.positionals.as_slice() else {
        return Err(
            "diff-digests takes exactly two digest files: gridsched diff-digests a.jsonl b.jsonl"
                .into(),
        );
    };
    let load = |p: &str| -> Result<DigestStream, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        DigestStream::parse_jsonl(&text).map_err(|e| format!("parse {p}: {e}"))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    match diff_digests(&a, &b)? {
        None => {
            println!(
                "digests identical: {} events, final hash {:016x}",
                a.events, a.final_hash
            );
            Ok(ExitCode::SUCCESS)
        }
        Some(d) => {
            println!(
                "digests diverge at window {} (t0 {} sim s): event ordinals {}..={}",
                d.window, d.t0_s, d.ordinal_lo, d.ordinal_hi
            );
            println!("  {}", d.detail);
            if d.ordinal_lo == d.ordinal_hi {
                println!(
                    "  exact: the first divergent event is ordinal {}",
                    d.ordinal_lo
                );
            }
            Ok(ExitCode::from(3))
        }
    }
}

/// Rejects a telemetry output path whose parent directory does not exist —
/// catching the typo up front instead of panicking after a long run.
fn validate_out_path(flag: &str, path: &str) -> Result<(), String> {
    let parent = std::path::Path::new(path).parent();
    let parent = match parent {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    if !parent.is_dir() {
        return Err(format!(
            "--{flag}: parent directory `{}` does not exist",
            parent.display()
        ));
    }
    Ok(())
}

fn cmd_workload(opts: &Opts) -> Result<(), String> {
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = opts.get("tasks", 6000u32)?;
    cfg.seed = opts.get("seed", 0u64)?;
    let fsmb: f64 = opts.get("file-size-mb", 25.0)?;
    let wl = cfg.with_file_size_mb(fsmb).generate();
    let s = wl.stats();
    println!("tasks              : {}", s.tasks);
    println!("total files        : {}", s.total_files);
    println!(
        "files per task     : min {} / mean {:.2} / max {}",
        s.min_files_per_task, s.mean_files_per_task, s.max_files_per_task
    );
    println!("files with >=6 refs: {:.1}%", s.pct_files_with_at_least(6));
    if let Some(path) = opts.values.get("out") {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        trace::write_trace(&wl, std::io::BufWriter::new(file))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("trace written      : {path}");
    }
    Ok(())
}

fn cmd_topology(opts: &Opts) -> Result<(), String> {
    let mut cfg = TiersConfig::paper(opts.get("seed", 0u64)?);
    let sites: usize = opts.get("sites", 90usize)?;
    if sites == 0 || !sites.is_multiple_of(cfg.sites_per_man) && sites < cfg.sites_per_man {
        cfg.mans = 1;
        cfg.sites_per_man = sites.max(1);
    } else if sites != cfg.site_count() {
        cfg.mans = sites.div_ceil(cfg.sites_per_man);
    }
    let topo = generate_topology(&cfg);
    println!("nodes     : {}", topo.graph.node_count());
    println!("links     : {}", topo.graph.edge_count());
    println!("sites     : {}", topo.sites.len());
    let (mut min_bw, mut max_bw) = (f64::MAX, f64::MIN);
    let mut lat_sum = 0.0;
    for i in 0..topo.sites.len() {
        let r = topo.routes.site_to_file_server(i);
        let bw = r.bottleneck_bps(&topo.graph);
        min_bw = min_bw.min(bw);
        max_bw = max_bw.max(bw);
        lat_sum += r.latency_s;
    }
    println!(
        "site→file-server: bottleneck {:.2}–{:.2} MB/s, mean latency {:.1} ms",
        min_bw / 1e6,
        max_bw / 1e6,
        lat_sum / topo.sites.len() as f64 * 1e3
    );
    if let Some(path) = opts.values.get("dot") {
        std::fs::write(path, to_dot(&topo)).map_err(|e| format!("write {path}: {e}"))?;
        println!("dot written: {path}");
    }
    Ok(())
}
