//! Ablation — proactive data replication (Ranganathan & Foster [13]).
//!
//! §3.2 of the paper claims data replication is **orthogonal** to
//! worker-centric scheduling: task-centric schedulers need it to fix
//! unbalanced assignments; worker-centric schedulers do not. We run `rest`
//! and `storage-affinity` with the popularity-threshold replication
//! extension on and off: the worker-centric makespan should barely move
//! (it may pay for the extra pushes), while storage affinity benefits
//! more, and the ranking does not change.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::{ReplicationConfig, SimConfig};

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let mut table = Table::new(
        "Ablation: proactive data replication",
        &[
            "algorithm",
            "replication",
            "makespan_min",
            "pushes",
            "bytes_GB",
        ],
    );
    let mut measured = Vec::new();
    for strategy in [StrategyKind::Rest, StrategyKind::StorageAffinity] {
        for threshold in [None, Some(4), Some(8)] {
            let mut config = SimConfig::paper(workload.clone(), strategy);
            if let Some(t) = threshold {
                config = config.with_replication(ReplicationConfig {
                    popularity_threshold: t,
                    max_replicas_per_file: 1,
                });
            }
            let r = run(&cli, &config);
            table.push_row(vec![
                strategy.to_string(),
                threshold.map_or("off".into(), |t| format!("threshold={t}")),
                fmt(r.makespan_minutes, 0),
                r.replication_pushes.to_string(),
                fmt(r.bytes_transferred / 1e9, 1),
            ]);
            measured.push((strategy, threshold, r.makespan_minutes));
        }
    }
    table.emit(&cli, "ablation_replication");

    let get = |s: StrategyKind, t: Option<u32>| {
        measured
            .iter()
            .find(|(ms, mt, _)| *ms == s && *mt == t)
            .expect("measured")
            .2
    };
    let rest_off = get(StrategyKind::Rest, None);
    let rest_on = get(StrategyKind::Rest, Some(4)).min(get(StrategyKind::Rest, Some(8)));
    check(
        &cli,
        "replication changes worker-centric makespan by <10% (orthogonal)",
        (rest_on - rest_off).abs() / rest_off < 0.10,
    );
    let sa_off = get(StrategyKind::StorageAffinity, None);
    check(
        &cli,
        "worker-centric without replication still beats storage affinity with it",
        rest_off
            < get(StrategyKind::StorageAffinity, Some(4))
                .min(get(StrategyKind::StorageAffinity, Some(8)))
                .min(sa_off),
    );
}
