//! Scripted fault traces.
//!
//! A deterministic, human-authorable list of fault events — the tool for
//! regression scenarios ("site 2's server dies at hour 3 and returns at
//! hour 4") where stochastic churn would be noise. The text format is
//! line-oriented:
//!
//! ```text
//! # seconds  kind            site  [worker]
//! 1800       worker-crash    0     1
//! 3600       worker-recover  0     1
//! 10800      server-fail     2
//! 14400      server-recover  2
//! # network events: link-down/link-up take an edge index, partition /
//! # partition-heal take a site index (the site's access link).
//! 7200       link-down       5
//! 9000       link-up         5
//! 10800      partition       2
//! 12600      partition-heal  2
//! ```
//!
//! Blank lines and `#` comments are ignored; events are sorted by time on
//! parse.

use serde::{Deserialize, Serialize};

/// What happens to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A worker crashes; its in-flight task (if any) is lost and must be
    /// re-executed.
    WorkerCrash {
        /// Site index of the worker.
        site: usize,
        /// Worker index within the site.
        worker: usize,
    },
    /// A crashed worker rejoins the pool.
    WorkerRecover {
        /// Site index of the worker.
        site: usize,
        /// Worker index within the site.
        worker: usize,
    },
    /// A site's data server goes down, losing every unpinned cached file.
    ServerFail {
        /// Site index.
        site: usize,
    },
    /// A failed data server comes back (with an empty cache, minus whatever
    /// stayed pinned by still-running computations).
    ServerRecover {
        /// Site index.
        site: usize,
    },
    /// A network link goes down: flows crossing it stall at rate zero
    /// until recovery, cancellation, or a transfer-guard timeout.
    LinkDown {
        /// Edge index of the link (`EdgeId::index`).
        link: usize,
    },
    /// A downed network link comes back up; stalled flows resume from
    /// their surviving byte counts.
    LinkUp {
        /// Edge index of the link.
        link: usize,
    },
    /// A site is partitioned from the rest of the grid: its access link
    /// goes down, stalling every transfer in or out of the site.
    Partition {
        /// Site index.
        site: usize,
    },
    /// A partitioned site rejoins the grid (its access link comes back).
    PartitionHeal {
        /// Site index.
        site: usize,
    },
}

/// One scripted event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time of the event, seconds.
    pub at_s: f64,
    /// The event itself.
    pub kind: FaultKind,
}

/// A time-ordered list of scripted fault events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTrace {
    /// Events, ascending by [`FaultEvent::at_s`].
    pub events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// Builds a trace from events (sorted by time; ties keep input order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        FaultTrace { events }
    }

    /// Parses the line-oriented text format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("fault trace line {}: {msg}", lineno + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 3 {
                return Err(err("expected `<secs> <kind> <site> [worker]`"));
            }
            let at_s: f64 = fields[0].parse().map_err(|_| err("bad time"))?;
            if !(at_s.is_finite() && at_s >= 0.0) {
                return Err(err("time must be finite and non-negative"));
            }
            let site: usize = fields[2].parse().map_err(|_| err("bad site index"))?;
            let worker = || -> Result<usize, String> {
                fields
                    .get(3)
                    .ok_or_else(|| err("worker events need a worker index"))?
                    .parse()
                    .map_err(|_| err("bad worker index"))
            };
            let kind = match fields[1] {
                "worker-crash" => FaultKind::WorkerCrash {
                    site,
                    worker: worker()?,
                },
                "worker-recover" => FaultKind::WorkerRecover {
                    site,
                    worker: worker()?,
                },
                "server-fail" => FaultKind::ServerFail { site },
                "server-recover" => FaultKind::ServerRecover { site },
                // Link events reuse the third field as the edge index.
                "link-down" => FaultKind::LinkDown { link: site },
                "link-up" => FaultKind::LinkUp { link: site },
                "partition" => FaultKind::Partition { site },
                "partition-heal" => FaultKind::PartitionHeal { site },
                other => return Err(err(&format!("unknown event kind `{other}`"))),
            };
            events.push(FaultEvent { at_s, kind });
        }
        Ok(FaultTrace::new(events))
    }

    /// Renders the text format (round-trips through [`FaultTrace::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("# seconds kind site [worker]\n");
        for e in &self.events {
            let line = match e.kind {
                FaultKind::WorkerCrash { site, worker } => {
                    format!("{} worker-crash {site} {worker}\n", e.at_s)
                }
                FaultKind::WorkerRecover { site, worker } => {
                    format!("{} worker-recover {site} {worker}\n", e.at_s)
                }
                FaultKind::ServerFail { site } => format!("{} server-fail {site}\n", e.at_s),
                FaultKind::ServerRecover { site } => {
                    format!("{} server-recover {site}\n", e.at_s)
                }
                FaultKind::LinkDown { link } => format!("{} link-down {link}\n", e.at_s),
                FaultKind::LinkUp { link } => format!("{} link-up {link}\n", e.at_s),
                FaultKind::Partition { site } => format!("{} partition {site}\n", e.at_s),
                FaultKind::PartitionHeal { site } => {
                    format!("{} partition-heal {site}\n", e.at_s)
                }
            };
            out.push_str(&line);
        }
        out
    }

    /// Checks every event against a grid shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first event that references a site or
    /// worker the grid does not have.
    pub fn validate(&self, sites: usize, workers_per_site: usize) -> Result<(), String> {
        for e in &self.events {
            let (site, worker) = match e.kind {
                FaultKind::WorkerCrash { site, worker }
                | FaultKind::WorkerRecover { site, worker } => (site, Some(worker)),
                FaultKind::ServerFail { site }
                | FaultKind::ServerRecover { site }
                | FaultKind::Partition { site }
                | FaultKind::PartitionHeal { site } => (site, None),
                // Link indices are topology-scoped, not grid-shaped; the
                // engine checks them against the link count at arm time
                // (see `FaultTrace::max_link`).
                FaultKind::LinkDown { .. } | FaultKind::LinkUp { .. } => continue,
            };
            if site >= sites {
                return Err(format!(
                    "fault trace references site {site} but the run has {sites} sites"
                ));
            }
            if let Some(w) = worker {
                if w >= workers_per_site {
                    return Err(format!(
                        "fault trace references worker {w} at site {site} but the run \
                         has {workers_per_site} workers per site"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The largest site index any event references, if any event exists.
    #[must_use]
    pub fn max_site(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::WorkerCrash { site, .. }
                | FaultKind::WorkerRecover { site, .. }
                | FaultKind::ServerFail { site }
                | FaultKind::ServerRecover { site }
                | FaultKind::Partition { site }
                | FaultKind::PartitionHeal { site } => Some(site),
                FaultKind::LinkDown { .. } | FaultKind::LinkUp { .. } => None,
            })
            .max()
    }

    /// The largest link index any link event references, if one exists
    /// (checked against the topology's link count at arm time).
    #[must_use]
    pub fn max_link(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkDown { link } | FaultKind::LinkUp { link } => Some(link),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sorts() {
        let t = FaultTrace::parse(
            "# demo\n3600 server-recover 2\n\n1800 worker-crash 0 1 # boom\n2000 server-fail 2\n",
        )
        .expect("valid trace");
        assert_eq!(t.events.len(), 3);
        assert_eq!(
            t.events[0].kind,
            FaultKind::WorkerCrash { site: 0, worker: 1 }
        );
        assert_eq!(t.events[2].kind, FaultKind::ServerRecover { site: 2 });
        assert_eq!(t.max_site(), Some(2));
    }

    #[test]
    fn round_trips() {
        let t = FaultTrace::new(vec![
            FaultEvent {
                at_s: 10.0,
                kind: FaultKind::WorkerCrash { site: 1, worker: 0 },
            },
            FaultEvent {
                at_s: 99.5,
                kind: FaultKind::ServerFail { site: 3 },
            },
        ]);
        assert_eq!(FaultTrace::parse(&t.render()).expect("round trip"), t);
    }

    #[test]
    fn rejects_malformed() {
        assert!(FaultTrace::parse("oops").is_err());
        assert!(
            FaultTrace::parse("10 worker-crash 0").is_err(),
            "missing worker"
        );
        assert!(
            FaultTrace::parse("-5 server-fail 0").is_err(),
            "negative time"
        );
        assert!(
            FaultTrace::parse("10 frobnicate 0").is_err(),
            "unknown kind"
        );
        assert!(FaultTrace::parse("NaN server-fail 0").is_err(), "NaN time");
    }

    #[test]
    fn parses_network_events() {
        let t = FaultTrace::parse(
            "7200 link-down 5\n9000 link-up 5\n10800 partition 2\n12600 partition-heal 2\n",
        )
        .expect("valid trace");
        assert_eq!(t.events[0].kind, FaultKind::LinkDown { link: 5 });
        assert_eq!(t.events[1].kind, FaultKind::LinkUp { link: 5 });
        assert_eq!(t.events[2].kind, FaultKind::Partition { site: 2 });
        assert_eq!(t.events[3].kind, FaultKind::PartitionHeal { site: 2 });
        // Link indices are not site indices: max_site only sees the
        // partition events, max_link only the link events.
        assert_eq!(t.max_site(), Some(2));
        assert_eq!(t.max_link(), Some(5));
        // Partitions validate against the grid shape; link events do not.
        assert!(t.validate(3, 1).is_ok());
        assert!(t.validate(2, 1).is_err(), "partition site out of range");
        // Round-trips through the text format.
        assert_eq!(FaultTrace::parse(&t.render()).expect("round trip"), t);
    }

    #[test]
    fn empty_trace() {
        let t = FaultTrace::parse("# nothing\n\n").expect("empty ok");
        assert!(t.events.is_empty());
        assert_eq!(t.max_site(), None);
    }
}
