//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Exports `Serialize` / `Deserialize` as **derive macros only** — the
//! workspace never serializes anything in-process, it only annotates types
//! so the derives stay in place for when the real crates are restored.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
