//! Graphviz DOT export of grid topologies (debugging / documentation).

use std::fmt::Write as _;

use crate::graph::{Graph, NodeKind};
use crate::tiers::Topology;

/// Renders `topology` as a Graphviz DOT document.
///
/// Node shapes: the WAN core is a double circle, MAN routers circles, site
/// gateways boxes, the file server and scheduler houses. Edge labels show
/// `bandwidth MB/s / latency ms`.
///
/// # Example
///
/// ```
/// use gridsched_topology::{dot::to_dot, generate, TiersConfig};
///
/// let topo = generate(&TiersConfig::small(0));
/// let dot = to_dot(&topo);
/// assert!(dot.starts_with("graph grid {"));
/// assert!(dot.contains("site0"));
/// ```
#[must_use]
pub fn to_dot(topology: &Topology) -> String {
    let g: &Graph = &topology.graph;
    let mut out = String::from("graph grid {\n  layout=neato;\n  overlap=false;\n");
    for n in g.nodes() {
        let (name, attrs) = match g.kind(n) {
            NodeKind::WanCore => ("core".to_string(), "shape=doublecircle,color=black"),
            NodeKind::ManRouter => (format!("man_{}", n.0), "shape=circle,color=gray40"),
            NodeKind::SiteGateway(i) => (format!("site{i}"), "shape=box,color=blue"),
            NodeKind::FileServer => ("file_server".to_string(), "shape=house,color=red"),
            NodeKind::Scheduler => ("scheduler".to_string(), "shape=house,color=green"),
        };
        let _ = writeln!(out, "  n{} [label=\"{name}\",{attrs}];", n.0);
    }
    for e in g.edges() {
        let (a, b) = g.endpoints(e);
        let spec = g.link(e);
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{:.1}MB/s {:.0}ms\"];",
            a.0,
            b.0,
            spec.bandwidth_bps / 1e6,
            spec.latency_s * 1e3
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiers::{generate, TiersConfig};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let topo = generate(&TiersConfig::small(1));
        let dot = to_dot(&topo);
        assert!(dot.contains("file_server"));
        assert!(dot.contains("scheduler"));
        assert!(dot.contains("core"));
        for i in 0..6 {
            assert!(dot.contains(&format!("site{i}")), "missing site{i}");
        }
        let edge_lines = dot.lines().filter(|l| l.contains("--")).count();
        assert_eq!(edge_lines, topo.graph.edge_count());
    }

    #[test]
    fn dot_is_valid_ish() {
        let topo = generate(&TiersConfig::small(2));
        let dot = to_dot(&topo);
        assert!(dot.starts_with("graph grid {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
