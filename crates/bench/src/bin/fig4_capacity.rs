//! Figures 4 and 5 — makespan and file transfers vs data-server capacity.
//!
//! Sweeps capacities {3,000, 6,000, 15,000, 30,000} files for the six
//! algorithms of §5.3 (5 topology replicates, averaged). The paper's
//! qualitative claims, asserted under `--check`:
//!
//! * storage affinity suffers at small capacities (premature scheduling
//!   decisions) and becomes comparable as capacity grows;
//! * worker-centric metrics are nearly flat in capacity (a Coadd task's
//!   working set is small);
//! * `overlap` incurs clearly more file transfers than `rest`/`combined`
//!   (it does not consider the number of transfers).

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    // The quick workload (1,500 tasks) touches ~13.5k files, so quick
    // capacities scale down to keep the same storage pressure.
    let capacities: &[usize] = if cli.quick {
        &[700, 7500]
    } else {
        &[3000, 6000, 15_000, 30_000]
    };
    let strategies = paper_strategies();

    let mut makespan = Table::new(
        "Figure 4: makespan (minutes) vs capacity",
        &["capacity", "algorithm", "makespan_min"],
    );
    let mut transfers = Table::new(
        "Figure 5: number of file transfers vs capacity",
        &[
            "capacity",
            "algorithm",
            "file_transfers",
            "transfers_per_site",
        ],
    );

    // results[strategy][capacity] = (makespan, transfers)
    let mut results = vec![Vec::new(); strategies.len()];
    for &cap in capacities {
        for (i, &strategy) in strategies.iter().enumerate() {
            let config = SimConfig::paper(workload.clone(), strategy).with_capacity(cap);
            let r = run(&cli, &config);
            makespan.push_row(vec![
                cap.to_string(),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
            ]);
            transfers.push_row(vec![
                cap.to_string(),
                strategy.to_string(),
                r.file_transfers.to_string(),
                fmt(r.avg_transfers_per_site(), 0),
            ]);
            results[i].push((r.makespan_minutes, r.file_transfers as f64));
        }
    }
    makespan.emit(&cli, "fig4_makespan_vs_capacity");
    transfers.emit(&cli, "fig5_transfers_vs_capacity");

    let idx = |k: StrategyKind| {
        strategies
            .iter()
            .position(|&s| s == k)
            .expect("strategy in set")
    };
    let sa = idx(StrategyKind::StorageAffinity);
    let ov = idx(StrategyKind::Overlap);
    let rest = idx(StrategyKind::Rest);
    let last = capacities.len() - 1;

    // The premature-decision penalty needs many spatial regions per site
    // queue (full scale); the 1,500-task quick workload has too few blocks
    // per site to thrash, so these two checks are full-mode only.
    if !cli.quick {
        check(
            &cli,
            "storage affinity improves from smallest to largest capacity",
            results[sa][0].0 > results[sa][last].0,
        );
        check(
            &cli,
            "storage affinity is hurt more at small capacity than rest is",
            results[sa][0].0 / results[sa][last].0 > results[rest][0].0 / results[rest][last].0,
        );
    }
    check(
        &cli,
        "overlap transfers exceed rest transfers at every capacity (Fig. 5)",
        (0..capacities.len()).all(|c| results[ov][c].1 > results[rest][c].1),
    );
    check(
        &cli,
        "overlap makespan is worse than rest at every capacity",
        (0..capacities.len()).all(|c| results[ov][c].0 > results[rest][c].0),
    );
    let flat = |i: usize| {
        let series: Vec<f64> = results[i].iter().map(|p| p.0).collect();
        let max = series.iter().cloned().fold(f64::MIN, f64::max);
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / min
    };
    check(
        &cli,
        "rest is nearly flat across capacities (<10% spread)",
        flat(rest) < 0.10,
    );
    check(
        &cli,
        "a worker-centric strategy wins at the default capacity",
        {
            let c = capacities.iter().position(|&c| c >= 6000).unwrap_or(0);
            let best_wc = [
                StrategyKind::Rest,
                StrategyKind::Combined,
                StrategyKind::Rest2,
                StrategyKind::Combined2,
            ]
            .iter()
            .map(|&k| results[idx(k)][c].0)
            .fold(f64::MAX, f64::min);
            best_wc < results[sa][c].0
        },
    );
}
