//! Latency-weighted shortest-path routing.
//!
//! Grid traffic in the paper's model flows between site gateways and the two
//! global hosts (file server, scheduler). [`RouteTable`] precomputes a
//! Dijkstra shortest-path tree rooted at each global host, weighted by link
//! latency (ties broken by hop count then edge id, for determinism), and
//! stores for each site the explicit list of links its traffic crosses —
//! which is what the flow-level simulator needs for max–min fair sharing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, Graph, NodeId};

/// An explicit path through the network: the links crossed, plus the total
/// propagation latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Links crossed, in order from source to destination.
    pub links: Vec<EdgeId>,
    /// Sum of link latencies along the path, in seconds.
    pub latency_s: f64,
}

impl Route {
    /// The number of hops (links) on the route.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The bottleneck (minimum) bandwidth along the route in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty or references unknown edges.
    #[must_use]
    pub fn bottleneck_bps(&self, graph: &Graph) -> f64 {
        self.links
            .iter()
            .map(|&e| graph.link(e).bandwidth_bps)
            .fold(f64::INFINITY, f64::min)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    hops: u32,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: smaller distance first; ties by hops then node id so the
        // tree is deterministic.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `source`, returning for each node the incoming edge on
/// its shortest path (`None` for the source and unreachable nodes) and the
/// distance.
fn dijkstra(graph: &Graph, source: NodeId) -> (Vec<Option<(EdgeId, NodeId)>>, Vec<f64>) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut hops = vec![u32::MAX; n];
    let mut prev: Vec<Option<(EdgeId, NodeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    hops[source.index()] = 0;
    heap.push(HeapEntry {
        dist: 0.0,
        hops: 0,
        node: source,
    });
    while let Some(HeapEntry {
        dist: d,
        hops: h,
        node,
    }) = heap.pop()
    {
        if d > dist[node.index()] || (d == dist[node.index()] && h > hops[node.index()]) {
            continue;
        }
        for (edge, next) in graph.neighbors(node) {
            let nd = d + graph.link(edge).latency_s;
            let nh = h + 1;
            let better =
                nd < dist[next.index()] || (nd == dist[next.index()] && nh < hops[next.index()]);
            if better {
                dist[next.index()] = nd;
                hops[next.index()] = nh;
                prev[next.index()] = Some((edge, node));
                heap.push(HeapEntry {
                    dist: nd,
                    hops: nh,
                    node: next,
                });
            }
        }
    }
    (prev, dist)
}

/// Extracts the path from `source`'s Dijkstra tree to `target`.
fn extract_route(prev: &[Option<(EdgeId, NodeId)>], dist: &[f64], target: NodeId) -> Option<Route> {
    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut links = Vec::new();
    let mut cur = target;
    while let Some((edge, parent)) = prev[cur.index()] {
        links.push(edge);
        cur = parent;
    }
    links.reverse();
    Some(Route {
        links,
        latency_s: dist[target.index()],
    })
}

/// Precomputed routes from every site gateway to the file server and the
/// scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTable {
    to_file_server: Vec<Route>,
    to_scheduler: Vec<Route>,
}

impl RouteTable {
    /// Builds the route table for `sites` (site-gateway nodes, indexed by
    /// site id) toward the two global hosts.
    ///
    /// Routes are *symmetric* (undirected links), so the site→file-server
    /// route is also used for file-server→site transfers.
    ///
    /// # Panics
    ///
    /// Panics if some site cannot reach the file server or scheduler (the
    /// generator always produces connected graphs).
    #[must_use]
    pub fn build(graph: &Graph, sites: &[NodeId], file_server: NodeId, scheduler: NodeId) -> Self {
        let (prev_fs, dist_fs) = dijkstra(graph, file_server);
        let (prev_sc, dist_sc) = dijkstra(graph, scheduler);
        let to_file_server = sites
            .iter()
            .map(|&s| {
                extract_route(&prev_fs, &dist_fs, s)
                    .unwrap_or_else(|| panic!("site {s} unreachable from file server"))
            })
            .collect();
        let to_scheduler = sites
            .iter()
            .map(|&s| {
                extract_route(&prev_sc, &dist_sc, s)
                    .unwrap_or_else(|| panic!("site {s} unreachable from scheduler"))
            })
            .collect();
        RouteTable {
            to_file_server,
            to_scheduler,
        }
    }

    /// Route between site `site` and the file server.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_to_file_server(&self, site: usize) -> &Route {
        &self.to_file_server[site]
    }

    /// Route between site `site` and the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_to_scheduler(&self, site: usize) -> &Route {
        &self.to_scheduler[site]
    }

    /// Number of sites covered by the table.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.to_file_server.len()
    }
}

/// Computes the latency-weighted shortest path between two arbitrary nodes.
///
/// Returns `None` if `to` is unreachable from `from`. Used by tests and the
/// data-replication extension (site-to-site pushes).
#[must_use]
pub fn shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Route> {
    let (prev, dist) = dijkstra(graph, from);
    // Note: prev encodes parents toward `from`; extracting the path to `to`
    // yields links in from→to order after the reverse inside extract_route.
    extract_route(&prev, &dist, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkSpec, NodeKind};

    /// Builds:  fs --1ms-- core --2ms-- man --3ms-- site0
    ///                        \---------10ms--------/   (redundant slow link)
    fn diamond() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let fs = g.add_node(NodeKind::FileServer);
        let core = g.add_node(NodeKind::WanCore);
        let man = g.add_node(NodeKind::ManRouter);
        let site = g.add_node(NodeKind::SiteGateway(0));
        g.add_edge(fs, core, LinkSpec::new(1e9, 0.001));
        g.add_edge(core, man, LinkSpec::new(1e8, 0.002));
        g.add_edge(man, site, LinkSpec::new(1e7, 0.003));
        g.add_edge(core, site, LinkSpec::new(1e6, 0.010));
        (g, fs, core, site)
    }

    #[test]
    fn picks_lower_latency_path() {
        let (g, fs, _core, site) = diamond();
        let r = shortest_path(&g, fs, site).expect("connected");
        // 1 + 2 + 3 ms beats 1 + 10 ms.
        assert!((r.latency_s - 0.006).abs() < 1e-12);
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn route_links_are_contiguous() {
        let (g, fs, _, site) = diamond();
        let r = shortest_path(&g, fs, site).unwrap();
        let mut cur = fs;
        for &e in &r.links {
            let (a, b) = g.endpoints(e);
            cur = if a == cur {
                b
            } else {
                assert_eq!(b, cur, "route link does not touch current node");
                a
            };
        }
        assert_eq!(cur, site, "route must end at the target");
    }

    #[test]
    fn bottleneck_bandwidth() {
        let (g, fs, _, site) = diamond();
        let r = shortest_path(&g, fs, site).unwrap();
        assert_eq!(r.bottleneck_bps(&g), 1e7);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::FileServer);
        let b = g.add_node(NodeKind::SiteGateway(0));
        assert!(shortest_path(&g, a, b).is_none());
    }

    #[test]
    fn route_to_self_is_empty() {
        let (g, fs, _, _) = diamond();
        let r = shortest_path(&g, fs, fs).unwrap();
        assert!(r.links.is_empty());
        assert_eq!(r.latency_s, 0.0);
    }

    #[test]
    fn route_table_build() {
        let (g, fs, core, site) = diamond();
        let table = RouteTable::build(&g, &[site], fs, core);
        assert_eq!(table.site_count(), 1);
        assert_eq!(table.site_to_file_server(0).hops(), 3);
        assert_eq!(table.site_to_scheduler(0).hops(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-latency paths; route must be identical across calls.
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::FileServer);
        let a = g.add_node(NodeKind::ManRouter);
        let b = g.add_node(NodeKind::ManRouter);
        let t = g.add_node(NodeKind::SiteGateway(0));
        g.add_edge(s, a, LinkSpec::new(1.0, 0.005));
        g.add_edge(s, b, LinkSpec::new(1.0, 0.005));
        g.add_edge(a, t, LinkSpec::new(1.0, 0.005));
        g.add_edge(b, t, LinkSpec::new(1.0, 0.005));
        let r1 = shortest_path(&g, s, t).unwrap();
        let r2 = shortest_path(&g, s, t).unwrap();
        assert_eq!(r1, r2);
    }
}
