//! Figure 8 — makespan vs file size.
//!
//! Sweeps file sizes {5, 25, 50} MB (communication cost). Paper: "the
//! makespan grows almost linearly as the file size grows" and no algorithm
//! changes behaviour dramatically; `combined.2` stays best.

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;
use std::sync::Arc;

fn main() {
    let cli = Cli::parse();
    let sizes_mb: &[f64] = if cli.quick {
        &[5.0, 50.0]
    } else {
        &[5.0, 25.0, 50.0]
    };
    let strategies = paper_strategies();

    let mut table = Table::new(
        "Figure 8: makespan (minutes) vs file size (MB)",
        &["file_size_mb", "algorithm", "makespan_min"],
    );
    let mut results = vec![Vec::new(); strategies.len()];
    for &mb in sizes_mb {
        // The file size lives on the workload; regenerate per point (same
        // seed → identical task structure, only the byte size changes).
        let workload = Arc::new(cli.coadd_config().with_file_size_mb(mb).generate());
        for (i, &strategy) in strategies.iter().enumerate() {
            let config = SimConfig::paper(workload.clone(), strategy);
            let r = run(&cli, &config);
            table.push_row(vec![
                fmt(mb, 0),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
            ]);
            results[i].push(r.makespan_minutes);
        }
    }
    table.emit(&cli, "fig8_makespan_vs_filesize");

    let idx = |k: StrategyKind| strategies.iter().position(|&s| s == k).expect("in set");
    let rest = idx(StrategyKind::Rest);
    check(
        &cli,
        "makespan grows with file size (rest)",
        results[rest].windows(2).all(|w| w[1] > w[0]),
    );
    if !cli.quick {
        // Near-linear growth: the incremental cost per MB from 5→25 and
        // 25→50 should be within 2.5x of each other (transfer component
        // scales linearly; the compute floor is constant).
        let slope_a = (results[rest][1] - results[rest][0]) / 20.0;
        let slope_b = (results[rest][2] - results[rest][1]) / 25.0;
        check(
            &cli,
            "growth is roughly linear in file size (rest)",
            slope_a > 0.0 && slope_b > 0.0 && slope_b / slope_a < 2.5 && slope_a / slope_b < 2.5,
        );
    }
    check(&cli, "overlap suffers more from larger files than rest", {
        let ov = idx(StrategyKind::Overlap);
        let growth = |series: &Vec<f64>| series.last().unwrap() - series.first().unwrap();
        growth(&results[ov]) > growth(&results[rest])
    });
}
