//! Churn recovery: what checkpoint/restart buys each strategy.
//!
//! Runs one Coadd workload under aggressive worker churn twice per
//! strategy — once bare (every crash re-executes the task from scratch)
//! and once with Young/Daly checkpointing — and prints the work each
//! strategy saved, the overhead it paid, and the makespan delta.
//!
//! ```sh
//! cargo run --release --example churn_recovery
//! ```

use std::sync::Arc;

use gridsched::prelude::*;

fn main() {
    let mut coadd = CoaddConfig::paper_6000();
    coadd.tasks = 1500; // keep the example under ~10 s
    let workload = Arc::new(coadd.generate());
    let seeds = [0u64, 1];
    // Aggressive churn: a worker dies every ~2 h of uptime on average.
    let faults = FaultConfig::none().with_worker_faults(7_200.0, 1_200.0);

    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
    ];

    println!(
        "{:<18} {:>12} {:>12} {:>9} {:>9} {:>10} {:>9}",
        "algorithm", "bare_mkspan", "ckpt_mkspan", "wasted_h", "saved_h", "overhead_h", "restores"
    );
    let mut best: Option<(String, f64)> = None;
    for strategy in strategies {
        let base = SimConfig::paper(workload.clone(), strategy).with_faults(faults.clone());
        let bare = run_averaged(&base, &seeds);
        let ckpt = run_averaged(
            &base
                .clone()
                .with_checkpointing(CheckpointConfig::young_daly()),
            &seeds,
        );
        let saved_h = ckpt.work_saved_s / 3600.0;
        println!(
            "{:<18} {:>12.0} {:>12.0} {:>9.1} {:>9.1} {:>10.1} {:>9}",
            strategy.to_string(),
            bare.makespan_minutes,
            ckpt.makespan_minutes,
            bare.wasted_compute_s / 3600.0,
            saved_h,
            ckpt.checkpoint_overhead_s / 3600.0,
            ckpt.checkpoint_restores,
        );
        if best.as_ref().is_none_or(|(_, s)| saved_h > *s) {
            best = Some((strategy.to_string(), saved_h));
        }
    }
    let (winner, saved) = best.expect("six strategies ran");
    println!();
    println!(
        "{winner} saved the most work ({saved:.1} h): strategies that lose the most\n\
         compute to churn (task-centric pre-assignment, long transfers before\n\
         compute) gain the most from resuming at the last image instead of zero."
    );
}
