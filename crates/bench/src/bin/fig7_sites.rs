//! Figure 7 — makespan vs number of sites.
//!
//! Sweeps 10–26 sites (Table 1 defaults otherwise). Paper: "makespan of
//! each algorithm reduces as the number of sites increases, as expected";
//! `combined.2` performs best; randomized beats deterministic.

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let site_counts: &[usize] = if cli.quick {
        &[10, 18]
    } else {
        &[10, 14, 18, 22, 26]
    };
    let strategies = paper_strategies();

    let mut table = Table::new(
        "Figure 7: makespan (minutes) vs number of sites",
        &["sites", "algorithm", "makespan_min", "file_transfers"],
    );
    let mut results = vec![Vec::new(); strategies.len()];
    for &s in site_counts {
        for (i, &strategy) in strategies.iter().enumerate() {
            let config = SimConfig::paper(workload.clone(), strategy).with_sites(s);
            let r = run(&cli, &config);
            table.push_row(vec![
                s.to_string(),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
                r.file_transfers.to_string(),
            ]);
            results[i].push(r.makespan_minutes);
        }
    }
    table.emit(&cli, "fig7_makespan_vs_sites");

    let idx = |k: StrategyKind| strategies.iter().position(|&s| s == k).expect("in set");
    for (label, i) in [
        ("rest", idx(StrategyKind::Rest)),
        ("combined.2", idx(StrategyKind::Combined2)),
        ("storage-affinity", idx(StrategyKind::StorageAffinity)),
    ] {
        let series = &results[i];
        check(
            &cli,
            &format!("{label}: makespan decreases as sites increase"),
            series.first() > series.last(),
        );
    }
    let last = site_counts.len() - 1;
    check(
        &cli,
        "a worker-centric metric beats storage affinity at the largest site count",
        [
            StrategyKind::Rest,
            StrategyKind::Combined,
            StrategyKind::Rest2,
            StrategyKind::Combined2,
        ]
        .iter()
        .map(|&k| results[idx(k)][last])
        .fold(f64::MAX, f64::min)
            < results[idx(StrategyKind::StorageAffinity)][last],
    );
}
