//! Smoke tests of the `gridsched` CLI binary (built by Cargo and exposed
//! via `CARGO_BIN_EXE_gridsched`).

use std::process::Command;

fn gridsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gridsched"))
        .args(args)
        .output()
        .expect("spawn gridsched")
}

#[test]
fn strategies_lists_all_algorithms() {
    let out = gridsched(&["strategies"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for name in [
        "storage-affinity",
        "overlap",
        "rest",
        "combined",
        "rest.2",
        "combined.2",
        "workqueue",
        "xsufferage",
    ] {
        assert!(stdout.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn workload_stats_and_trace() {
    let dir = std::env::temp_dir().join("gridsched-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("wl.trace");
    let trace_str = trace.to_str().expect("utf8 path");

    let out = gridsched(&["workload", "--tasks", "150", "--out", trace_str]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("tasks              : 150"));
    assert!(trace.exists());

    // Simulate from the written trace, CSV output.
    let out = gridsched(&[
        "simulate",
        "--trace",
        trace_str,
        "--sites",
        "2",
        "--topology-seeds",
        "0",
        "--csv",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let mut lines = stdout.lines();
    let header = lines.next().expect("csv header");
    assert!(header.starts_with("strategy,sites,workers"));
    let row = lines.next().expect("csv row");
    assert!(row.starts_with("rest.2,2,1,"), "row: {row}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn simulate_rejects_bad_strategy() {
    let out = gridsched(&["simulate", "--strategy", "magic"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown strategy"), "stderr: {stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = gridsched(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn topology_summary() {
    let out = gridsched(&["topology", "--seed", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("sites     : 90"));
    assert!(stdout.contains("bottleneck"));
}
