//! Proactive data replication (Ranganathan & Foster [13]) — ablation.
//!
//! The paper argues data replication is **orthogonal** to worker-centric
//! scheduling (§3.2): task-centric schedulers *need* it to fix unbalanced
//! assignments, worker-centric ones do not. This module implements the
//! classic popularity-threshold scheme so the `ablation_replication`
//! experiment can verify that claim: the engine tracks global per-file
//! reference counts; when a file's popularity crosses the threshold it is
//! pushed once to a random site that lacks it.

use serde::{Deserialize, Serialize};

use gridsched_workload::FileId;

/// Configuration of the proactive replication extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// A file is replicated once its global reference count reaches this
    /// threshold.
    pub popularity_threshold: u32,
    /// Maximum number of proactive pushes per file (1 in [13]'s simplest
    /// scheme).
    pub max_replicas_per_file: u32,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            popularity_threshold: 6,
            max_replicas_per_file: 1,
        }
    }
}

/// Tracks global popularity and decides when to push.
#[derive(Debug, Clone)]
pub struct ReplicationState {
    config: ReplicationConfig,
    refs: Vec<u32>,
    pushed: Vec<u32>,
    /// Files for which no eligible push target can ever exist again (every
    /// other site already holds the file). Exhausted files stop matching
    /// [`ReplicationState::record_reference`], so the engine never repeats
    /// its `O(S)` candidate scan for them.
    exhausted: Vec<bool>,
}

impl ReplicationState {
    /// Creates state for `num_files` files.
    #[must_use]
    pub fn new(config: ReplicationConfig, num_files: usize) -> Self {
        ReplicationState {
            config,
            refs: vec![0; num_files],
            pushed: vec![0; num_files],
            exhausted: vec![false; num_files],
        }
    }

    /// Records one global reference of `file`; returns `true` when this
    /// reference makes the file eligible for a proactive push. The
    /// popularity count is global, so the crossing may well happen on the
    /// reference that completes the file's *last* use — the scheme pushes
    /// anyway (it cannot know the future), which the ablation quantifies.
    pub fn record_reference(&mut self, file: FileId) -> bool {
        let r = &mut self.refs[file.index()];
        *r += 1;
        *r >= self.config.popularity_threshold
            && !self.exhausted[file.index()]
            && self.pushed[file.index()] < self.config.max_replicas_per_file
    }

    /// Marks one push of `file` as issued.
    pub fn mark_pushed(&mut self, file: FileId) {
        self.pushed[file.index()] += 1;
    }

    /// Marks `file` as push-saturated: every site that could receive it
    /// already holds it, so later references must not re-scan for
    /// candidates (nor touch the placement RNG). Lasts until
    /// [`ReplicationState::on_copy_lost`] reports the coverage broken.
    pub fn mark_exhausted(&mut self, file: FileId) {
        self.exhausted[file.index()] = true;
    }

    /// A cached copy of `file` was lost (eviction or data-server outage):
    /// full coverage no longer holds, so an exhausted file becomes
    /// eligible again — its unspent push budget can be useful after all.
    pub fn on_copy_lost(&mut self, file: FileId) {
        self.exhausted[file.index()] = false;
    }

    /// Number of proactive pushes issued so far.
    #[must_use]
    pub fn pushes_issued(&self) -> u64 {
        self.pushed.iter().map(|&p| u64::from(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_push() {
        let mut st = ReplicationState::new(
            ReplicationConfig {
                popularity_threshold: 3,
                max_replicas_per_file: 1,
            },
            4,
        );
        let f = FileId(2);
        assert!(!st.record_reference(f));
        assert!(!st.record_reference(f));
        assert!(st.record_reference(f), "third reference crosses threshold");
        st.mark_pushed(f);
        assert!(!st.record_reference(f), "already pushed max replicas");
        assert_eq!(st.pushes_issued(), 1);
    }

    #[test]
    fn exhaustion_stops_eligibility_for_good() {
        let mut st = ReplicationState::new(
            ReplicationConfig {
                popularity_threshold: 1,
                max_replicas_per_file: 5,
            },
            2,
        );
        let f = FileId(1);
        assert!(st.record_reference(f));
        st.mark_exhausted(f);
        // Pushes left on paper (0 of 5 issued), but no target can exist:
        // later references must be inert.
        assert!(!st.record_reference(f));
        assert!(!st.record_reference(f));
        assert_eq!(st.pushes_issued(), 0);
        // Other files are unaffected.
        assert!(st.record_reference(FileId(0)));
        // Losing a cached copy breaks the coverage that justified the
        // exhaustion: the file is eligible again.
        st.on_copy_lost(f);
        assert!(st.record_reference(f));
    }

    #[test]
    fn threshold_crossing_on_last_reference_still_pushes() {
        // A file referenced exactly `threshold` times in its whole life:
        // the crossing happens on the very reference that completes its
        // last use, and the scheme (which cannot see the future) still
        // reports it eligible.
        let mut st = ReplicationState::new(
            ReplicationConfig {
                popularity_threshold: 4,
                max_replicas_per_file: 1,
            },
            1,
        );
        let f = FileId(0);
        for _ in 0..3 {
            assert!(!st.record_reference(f));
        }
        assert!(
            st.record_reference(f),
            "final reference crosses the threshold and is eligible"
        );
    }

    #[test]
    fn max_replicas_respected() {
        let mut st = ReplicationState::new(
            ReplicationConfig {
                popularity_threshold: 1,
                max_replicas_per_file: 2,
            },
            1,
        );
        let f = FileId(0);
        assert!(st.record_reference(f));
        st.mark_pushed(f);
        assert!(st.record_reference(f));
        st.mark_pushed(f);
        assert!(!st.record_reference(f));
        assert_eq!(st.pushes_issued(), 2);
    }
}
