//! Inverted file→task index and incrementally-maintained per-site views.
//!
//! The paper's basic algorithm re-derives `|F_t|` (and `ref_t`) for every
//! pending task by probing the requesting site's storage — `O(T·I)` per
//! scheduling decision (§4.4). Because storage contents change only when a
//! file arrives, is evicted, or is referenced, the same quantities can be
//! maintained **incrementally**: an inverted index maps each file to the
//! tasks that read it, and every storage change updates the per-task
//! overlap counters of the affected tasks. A scheduling decision then
//! degenerates to an `O(T)` scan over cached counters.
//!
//! This does not change any scheduling decision — [`weigh_all_indexed`] is
//! property-tested to agree exactly with
//! [`crate::weight::weigh_all_naive`] — it only changes the constant; the
//! `sched_decision` criterion bench quantifies the gap.

use gridsched_storage::SiteStore;
use gridsched_workload::{FileId, TaskId, Workload};

use crate::pool::TaskPool;
use crate::weight::{combined_weight, rest_weight, WeightMetric};

/// Compressed-sparse-row inverted index: for each file, the tasks reading
/// it; plus per-task input-set sizes (`|t|`).
///
/// Immutable after construction; shared by all sites' views.
#[derive(Debug, Clone)]
pub struct FileIndex {
    offsets: Vec<u32>,
    task_lists: Vec<u32>,
    task_sizes: Vec<u32>,
}

impl FileIndex {
    /// Builds the index from a workload.
    #[must_use]
    pub fn build(workload: &Workload) -> Self {
        let num_files = workload.file_count();
        let mut counts = vec![0u32; num_files];
        for t in workload.tasks() {
            for f in t.files() {
                counts[f.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_files + 1);
        let mut acc = 0u32;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        let mut task_lists = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for t in workload.tasks() {
            for f in t.files() {
                let slot = &mut cursor[f.index()];
                task_lists[*slot as usize] = t.id.0;
                *slot += 1;
            }
        }
        let task_sizes = workload
            .tasks()
            .iter()
            .map(|t| t.file_count() as u32)
            .collect();
        FileIndex {
            offsets,
            task_lists,
            task_sizes,
        }
    }

    /// The tasks reading `file`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if the file is out of range.
    #[must_use]
    pub fn tasks_of(&self, file: FileId) -> &[u32] {
        let lo = self.offsets[file.index()] as usize;
        let hi = self.offsets[file.index() + 1] as usize;
        &self.task_lists[lo..hi]
    }

    /// `|t|` — the input-set size of `task`.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range.
    #[must_use]
    pub fn task_size(&self, task: TaskId) -> u32 {
        self.task_sizes[task.index()]
    }

    /// Number of tasks covered.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_sizes.len()
    }

    /// Number of files covered.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Incrementally-maintained per-site overlap state.
///
/// For every task `t`, caches:
/// * `overlap[t]` — `|F_t|` against this site's *current* storage,
/// * `refsum[t]` — `Σ_{i ∈ F_t} r_i` over the resident overlap.
///
/// The owner must forward every storage change:
/// [`SiteView::on_file_added`] after an insert,
/// [`SiteView::on_file_evicted`] for each eviction, and
/// [`SiteView::on_task_reference`] after each `r_i` increment.
#[derive(Debug, Clone)]
pub struct SiteView {
    overlap: Vec<u32>,
    refsum: Vec<u64>,
}

impl SiteView {
    /// A view for an initially-empty site storage.
    #[must_use]
    pub fn new(num_tasks: usize) -> Self {
        SiteView {
            overlap: vec![0; num_tasks],
            refsum: vec![0; num_tasks],
        }
    }

    /// Records that `file` became resident with current reference count
    /// `ref_count`.
    pub fn on_file_added(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        for &t in index.tasks_of(file) {
            self.overlap[t as usize] += 1;
            self.refsum[t as usize] += u64::from(ref_count);
        }
    }

    /// Records that `file` was evicted while holding reference count
    /// `ref_count`.
    pub fn on_file_evicted(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        for &t in index.tasks_of(file) {
            self.overlap[t as usize] -= 1;
            self.refsum[t as usize] -= u64::from(ref_count);
        }
    }

    /// Records that a task referenced resident `file` (`r_i += 1`).
    pub fn on_task_reference(&mut self, index: &FileIndex, file: FileId) {
        for &t in index.tasks_of(file) {
            self.refsum[t as usize] += 1;
        }
    }

    /// Cached `|F_t|`.
    #[must_use]
    pub fn overlap(&self, task: TaskId) -> u32 {
        self.overlap[task.index()]
    }

    /// Cached `Σ r_i` over the resident overlap of `task`.
    #[must_use]
    pub fn refsum(&self, task: TaskId) -> u64 {
        self.refsum[task.index()]
    }

    /// Debug helper: checks this view against ground truth from the store.
    ///
    /// # Panics
    ///
    /// Panics (in any build) if a cached counter disagrees with the store.
    pub fn assert_consistent(&self, index: &FileIndex, workload: &Workload, store: &SiteStore) {
        for t in workload.tasks() {
            let files = t.files();
            let overlap = store.overlap(files) as u32;
            let refsum = store.overlap_ref_sum(files);
            assert_eq!(
                self.overlap(t.id),
                overlap,
                "overlap mismatch for task {}",
                t.id
            );
            assert_eq!(
                self.refsum(t.id),
                refsum,
                "refsum mismatch for task {}",
                t.id
            );
        }
        let _ = index;
    }
}

/// Indexed equivalent of [`weigh_all_naive`]: `O(T)` per decision.
///
/// [`weigh_all_naive`]: crate::weight::weigh_all_naive
#[must_use]
pub fn weigh_all_indexed(
    metric: WeightMetric,
    index: &FileIndex,
    pool: &TaskPool,
    view: &SiteView,
) -> Vec<(TaskId, f64)> {
    match metric {
        WeightMetric::Overlap => pool
            .iter()
            .map(|t| (t, f64::from(view.overlap(t))))
            .collect(),
        WeightMetric::Rest => pool
            .iter()
            .map(|t| {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                (t, rest_weight(missing))
            })
            .collect(),
        WeightMetric::Combined => {
            let mut per_task: Vec<(TaskId, u64, f64)> = Vec::with_capacity(pool.len());
            let mut total_ref: u64 = 0;
            let mut total_rest: f64 = 0.0;
            for t in pool.iter() {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                let ref_t = view.refsum(t);
                let rest_t = rest_weight(missing);
                total_ref += ref_t;
                total_rest += rest_t;
                per_task.push((t, ref_t, rest_t));
            }
            per_task
                .into_iter()
                .map(|(t, ref_t, rest_t)| {
                    (t, combined_weight(ref_t, rest_t, total_ref, total_rest))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 0.0),
            ],
            4,
            1.0,
            "w",
        )
    }

    #[test]
    fn index_layout() {
        let idx = FileIndex::build(&wl());
        assert_eq!(idx.file_count(), 4);
        assert_eq!(idx.task_count(), 3);
        assert_eq!(idx.tasks_of(FileId(1)), &[0, 1]);
        assert_eq!(idx.tasks_of(FileId(3)), &[2]);
        assert_eq!(idx.task_size(TaskId(0)), 2);
    }

    #[test]
    fn view_tracks_store() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        assert_eq!(view.overlap(TaskId(0)), 1);
        assert_eq!(view.overlap(TaskId(1)), 1);
        assert_eq!(view.overlap(TaskId(2)), 0);

        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));
        assert_eq!(view.refsum(TaskId(0)), 1);

        view.assert_consistent(&idx, &workload, &store);
    }

    #[test]
    fn eviction_rolls_back_counters() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(1, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));

        // Inserting file 2 evicts file 1 (capacity 1).
        let ref_before = store.ref_count(FileId(1));
        let evicted = store.insert(FileId(2));
        assert_eq!(evicted, vec![FileId(1)]);
        view.on_file_evicted(&idx, FileId(1), ref_before);
        view.on_file_added(&idx, FileId(2), store.ref_count(FileId(2)));

        view.assert_consistent(&idx, &workload, &store);
        assert_eq!(view.overlap(TaskId(0)), 0);
        assert_eq!(view.refsum(TaskId(0)), 0);
    }

    #[test]
    fn indexed_matches_naive_on_example() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);
        for f in [0u32, 2] {
            store.insert(FileId(f));
            view.on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
        }
        store.record_task_reference(FileId(2));
        view.on_task_reference(&idx, FileId(2));
        let pool = TaskPool::full(3);
        for metric in [
            WeightMetric::Overlap,
            WeightMetric::Rest,
            WeightMetric::Combined,
        ] {
            let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
            let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
            assert_eq!(naive, indexed, "metric {metric}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Reference(u32),
        RemoveTask(u32),
    }

    fn arb_workload() -> impl Strategy<Value = Workload> {
        // 3..10 tasks over 12 files, 1..6 files each.
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 1..6), 3..10).prop_map(
            |task_files| {
                let tasks: Vec<TaskSpec> = task_files
                    .into_iter()
                    .enumerate()
                    .map(|(i, fs)| {
                        TaskSpec::new(TaskId(i as u32), fs.into_iter().map(FileId).collect(), 0.0)
                    })
                    .collect();
                Workload::new(tasks, 12, 1.0, "prop")
            },
        )
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        let op = prop_oneof![
            (0u32..12).prop_map(Op::Insert),
            (0u32..12).prop_map(Op::Reference),
            (0u32..10).prop_map(Op::RemoveTask),
        ];
        proptest::collection::vec(op, 0..60)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn indexed_always_matches_naive(
            workload in arb_workload(),
            ops in arb_ops(),
            cap in 1usize..8,
        ) {
            let idx = FileIndex::build(&workload);
            let mut store = SiteStore::new(cap, EvictionPolicy::Lru);
            let mut view = SiteView::new(workload.task_count());
            let mut pool = TaskPool::full(workload.task_count());
            for op in ops {
                match op {
                    Op::Insert(f) => {
                        let f = FileId(f);
                        if !store.contains(f) {
                            let evicted = store.insert(f);
                            for e in evicted {
                                view.on_file_evicted(&idx, e, store.ref_count(e));
                            }
                            view.on_file_added(&idx, f, store.ref_count(f));
                        }
                    }
                    Op::Reference(f) => {
                        let f = FileId(f);
                        if store.contains(f) {
                            store.record_task_reference(f);
                            view.on_task_reference(&idx, f);
                        }
                    }
                    Op::RemoveTask(t) => {
                        if (t as usize) < workload.task_count() {
                            pool.remove(TaskId(t));
                        }
                    }
                }
                for metric in [WeightMetric::Overlap, WeightMetric::Rest, WeightMetric::Combined] {
                    let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
                    let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
                    prop_assert_eq!(naive, indexed, "metric {}", metric);
                }
            }
        }
    }
}
