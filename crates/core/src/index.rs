//! Inverted file→task index and incrementally-maintained per-site views.
//!
//! The paper's basic algorithm re-derives `|F_t|` (and `ref_t`) for every
//! pending task by probing the requesting site's storage — `O(T·I)` per
//! scheduling decision (§4.4). Because storage contents change only when a
//! file arrives, is evicted, or is referenced, the same quantities can be
//! maintained **incrementally**: an inverted index maps each file to the
//! tasks that read it, and every storage change updates the per-task
//! overlap counters of the affected tasks. A scheduling decision then
//! degenerates to an `O(T)` scan over cached counters.
//!
//! An `O(T)` scan per decision is still an `O(T²)` run, which caps the
//! engine far below 10⁵ workers. The same storage-change notifications can
//! therefore also maintain a **priority index**: every [`SiteView`] may
//! carry a [`TaskRank`] that buckets the pending tasks by their (small
//! integer) overlap or missing-file count, each bucket an ordered set.
//! A scheduling decision then degenerates to reading the best few bucket
//! heads — `O(log T)` amortized — instead of scanning the pool.
//!
//! None of this changes any scheduling decision — [`weigh_all_indexed`]
//! and the ranked picks are property-tested to agree exactly with
//! [`crate::weight::weigh_all_naive`] plus [`crate::choose::ChooseTask`] —
//! it only changes the constant/complexity; the `sched_decision` criterion
//! bench and the `perf_scale` harness quantify the gap.

use std::collections::BTreeSet;

use rand::Rng;

use gridsched_storage::SiteStore;
use gridsched_workload::{FileId, TaskId, Workload};

use crate::choose::ChooseTask;
use crate::pool::TaskPool;
use crate::weight::{combined_weight, rest_weight, total_rest_from_counts, WeightMetric};

/// Compressed-sparse-row inverted index: for each file, the tasks reading
/// it; plus per-task input-set sizes (`|t|`).
///
/// Immutable after construction; shared by all sites' views.
#[derive(Debug, Clone)]
pub struct FileIndex {
    offsets: Vec<u32>,
    task_lists: Vec<u32>,
    task_sizes: Vec<u32>,
}

impl FileIndex {
    /// Builds the index from a workload.
    #[must_use]
    pub fn build(workload: &Workload) -> Self {
        let num_files = workload.file_count();
        let mut counts = vec![0u32; num_files];
        for t in workload.tasks() {
            for f in t.files() {
                counts[f.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_files + 1);
        let mut acc = 0u32;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        let mut task_lists = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for t in workload.tasks() {
            for f in t.files() {
                let slot = &mut cursor[f.index()];
                task_lists[*slot as usize] = t.id.0;
                *slot += 1;
            }
        }
        let task_sizes = workload
            .tasks()
            .iter()
            .map(|t| t.file_count() as u32)
            .collect();
        FileIndex {
            offsets,
            task_lists,
            task_sizes,
        }
    }

    /// The tasks reading `file`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if the file is out of range.
    #[must_use]
    pub fn tasks_of(&self, file: FileId) -> &[u32] {
        let lo = self.offsets[file.index()] as usize;
        let hi = self.offsets[file.index() + 1] as usize;
        &self.task_lists[lo..hi]
    }

    /// `|t|` — the input-set size of `task`.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range.
    #[must_use]
    pub fn task_size(&self, task: TaskId) -> u32 {
        self.task_sizes[task.index()]
    }

    /// Number of tasks covered.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_sizes.len()
    }

    /// Number of files covered.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The largest input-set size over all tasks (`max |t|`) — the number
    /// of levels a [`TaskRank`] needs.
    #[must_use]
    pub fn max_task_size(&self) -> u32 {
        self.task_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// An incrementally-maintained per-site priority index over the *pending*
/// tasks, bucketed by the metric's small-integer level:
///
/// * `Overlap` — level `|F_t|`, best bucket is the **highest** level;
/// * `Rest` / `Combined` — level `|t| − |F_t|` (missing files), best
///   bucket is the **lowest** level.
///
/// Within a bucket, tasks are ordered so the bucket head is exactly the
/// task the full-scan argmax would select among that bucket: ascending id
/// for `Overlap`/`Rest` (all weights in a bucket are equal there), and
/// descending cached reference sum (ties by id) for finite `Combined`
/// buckets. The zero-missing `Combined` bucket orders by id alone — its
/// weight is `+∞` regardless of references.
///
/// The owning [`SiteView`] keeps the bucket coordinates in sync on every
/// counter change; the scheduler forwards pending-pool membership through
/// [`SiteView::rank_insert`] / [`SiteView::rank_remove`]. Each maintenance
/// step is one `BTreeSet` remove + insert — `O(log T)`.
#[derive(Debug, Clone)]
pub struct TaskRank {
    metric: WeightMetric,
    /// `buckets[level]` — ordered `(key, task id)`; see [`TaskRank`] docs
    /// for the key.
    buckets: Vec<BTreeSet<(u64, u32)>>,
    member: Vec<bool>,
    level_of: Vec<u32>,
    key_of: Vec<u64>,
    /// Member tasks' cached `Σ r_i` (mirrors [`SiteView::refsum`] so key
    /// changes and `total_ref` deltas need no caller-side bookkeeping).
    refsum_of: Vec<u64>,
    /// Exact `Σ refsum` over members — `Combined`'s `totalRef` (integer
    /// arithmetic, so incremental maintenance is bit-exact).
    total_ref: u64,
    len: usize,
}

impl TaskRank {
    fn new(metric: WeightMetric, num_tasks: usize, max_level: u32) -> Self {
        let levels = max_level as usize + 1;
        TaskRank {
            metric,
            buckets: vec![BTreeSet::new(); levels],
            member: vec![false; num_tasks],
            level_of: vec![0; num_tasks],
            key_of: vec![0; num_tasks],
            refsum_of: vec![0; num_tasks],
            total_ref: 0,
            len: 0,
        }
    }

    /// Number of member (pending) tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pending task is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The metric whose ordering this rank maintains.
    #[must_use]
    pub fn metric(&self) -> WeightMetric {
        self.metric
    }

    fn level_for(&self, size: u32, overlap: u32) -> u32 {
        match self.metric {
            WeightMetric::Overlap => overlap,
            WeightMetric::Rest | WeightMetric::Combined => size - overlap,
        }
    }

    fn key_for(&self, level: u32, refsum: u64) -> u64 {
        // Only finite Combined buckets order by references; level 0 there
        // means zero missing files (weight +∞ for every reference count).
        if self.metric == WeightMetric::Combined && level > 0 {
            u64::MAX - refsum
        } else {
            0
        }
    }

    fn insert(&mut self, t: usize, level: u32, refsum: u64) {
        if self.member[t] {
            return;
        }
        let key = self.key_for(level, refsum);
        self.buckets[level as usize].insert((key, t as u32));
        self.member[t] = true;
        self.level_of[t] = level;
        self.key_of[t] = key;
        self.refsum_of[t] = refsum;
        self.total_ref += refsum;
        self.len += 1;
    }

    fn remove(&mut self, t: usize) {
        if !self.member[t] {
            return;
        }
        let level = self.level_of[t] as usize;
        self.buckets[level].remove(&(self.key_of[t], t as u32));
        self.member[t] = false;
        self.total_ref -= self.refsum_of[t];
        self.len -= 1;
    }

    /// `Combined`'s `totalRest` over the members: the bucket sizes fed
    /// through the one canonical accumulation,
    /// [`total_rest_from_counts`] — bit-identical to the scan paths by
    /// construction.
    fn total_rest(&self) -> f64 {
        total_rest_from_counts(self.buckets.iter().map(|b| b.len() as u32))
    }

    /// Re-files `t` after its cached counters changed.
    fn sync(&mut self, t: usize, level: u32, refsum: u64) {
        if !self.member[t] {
            return;
        }
        self.total_ref += refsum;
        self.total_ref -= self.refsum_of[t];
        self.refsum_of[t] = refsum;
        let key = self.key_for(level, refsum);
        if level == self.level_of[t] && key == self.key_of[t] {
            return;
        }
        let old_level = self.level_of[t] as usize;
        self.buckets[old_level].remove(&(self.key_of[t], t as u32));
        self.buckets[level as usize].insert((key, t as u32));
        self.level_of[t] = level;
        self.key_of[t] = key;
    }
}

/// Incrementally-maintained per-site overlap state.
///
/// For every task `t`, caches:
/// * `overlap[t]` — `|F_t|` against this site's *current* storage,
/// * `refsum[t]` — `Σ_{i ∈ F_t} r_i` over the resident overlap.
///
/// The owner must forward every storage change:
/// [`SiteView::on_file_added`] after an insert,
/// [`SiteView::on_file_evicted`] for each eviction, and
/// [`SiteView::on_task_reference`] after each `r_i` increment.
#[derive(Debug, Clone)]
pub struct SiteView {
    overlap: Vec<u32>,
    refsum: Vec<u64>,
    rank: Option<TaskRank>,
}

impl SiteView {
    /// A view for an initially-empty site storage.
    #[must_use]
    pub fn new(num_tasks: usize) -> Self {
        SiteView {
            overlap: vec![0; num_tasks],
            refsum: vec![0; num_tasks],
            rank: None,
        }
    }

    /// Attaches an (empty) priority index ordered for `metric`. Call after
    /// seeding the counters from pre-populated storage, then admit the
    /// pending pool via [`SiteView::rank_insert`].
    pub fn enable_rank(&mut self, metric: WeightMetric, index: &FileIndex) {
        self.rank = Some(TaskRank::new(
            metric,
            self.overlap.len(),
            index.max_task_size(),
        ));
    }

    /// The attached priority index, if any.
    #[must_use]
    pub fn rank(&self) -> Option<&TaskRank> {
        self.rank.as_ref()
    }

    /// Admits `task` (newly pending) into the priority index. No-op
    /// without a rank or if already tracked.
    pub fn rank_insert(&mut self, index: &FileIndex, task: TaskId) {
        let t = task.index();
        let (overlap, refsum) = (self.overlap[t], self.refsum[t]);
        if let Some(rank) = self.rank.as_mut() {
            let level = rank.level_for(index.task_size(task), overlap);
            rank.insert(t, level, refsum);
        }
    }

    /// Withdraws `task` (assigned/completed) from the priority index.
    /// No-op without a rank or if not tracked.
    pub fn rank_remove(&mut self, task: TaskId) {
        if let Some(rank) = self.rank.as_mut() {
            rank.remove(task.index());
        }
    }

    /// Records that `file` became resident with current reference count
    /// `ref_count`.
    pub fn on_file_added(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.overlap[ti] += 1;
            self.refsum[ti] += u64::from(ref_count);
            if let Some(rank) = self.rank.as_mut() {
                let level = rank.level_for(index.task_size(TaskId(t)), self.overlap[ti]);
                rank.sync(ti, level, self.refsum[ti]);
            }
        }
    }

    /// Records that `file` was evicted while holding reference count
    /// `ref_count`.
    pub fn on_file_evicted(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.overlap[ti] -= 1;
            self.refsum[ti] -= u64::from(ref_count);
            if let Some(rank) = self.rank.as_mut() {
                let level = rank.level_for(index.task_size(TaskId(t)), self.overlap[ti]);
                rank.sync(ti, level, self.refsum[ti]);
            }
        }
    }

    /// Records that a task referenced resident `file` (`r_i += 1`).
    pub fn on_task_reference(&mut self, index: &FileIndex, file: FileId) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.refsum[ti] += 1;
            if let Some(rank) = self.rank.as_mut() {
                let level = rank.level_of[ti];
                rank.sync(ti, level, self.refsum[ti]);
            }
        }
    }

    /// Cached `|F_t|`.
    #[must_use]
    pub fn overlap(&self, task: TaskId) -> u32 {
        self.overlap[task.index()]
    }

    /// Cached `Σ r_i` over the resident overlap of `task`.
    #[must_use]
    pub fn refsum(&self, task: TaskId) -> u64 {
        self.refsum[task.index()]
    }

    /// The worker-centric pick straight off the priority index —
    /// equivalent to `chooser.pick(weigh_all(...), rng)` but reading only
    /// the best few bucket heads (`O(log T)` amortized; `Combined`
    /// additionally scans the `O(levels)` per-level counters for its
    /// normalisers).
    ///
    /// The candidate set handed to [`ChooseTask::pick`] provably contains
    /// the full scan's top-`n` (within a bucket the order matches the
    /// argmax tie-break; across buckets every bucket contributes its first
    /// `n`), and the weights are computed with the identical expressions —
    /// so the pick, including its RNG consumption, is bit-identical.
    ///
    /// Returns `None` when no pending task is tracked.
    ///
    /// # Panics
    ///
    /// Panics if no rank is attached (see [`SiteView::enable_rank`]).
    pub fn pick_ranked<R: Rng + ?Sized>(
        &self,
        chooser: &ChooseTask,
        rng: &mut R,
    ) -> Option<TaskId> {
        let rank = self
            .rank
            .as_ref()
            .expect("pick_ranked requires an enabled rank");
        if rank.is_empty() {
            return None;
        }
        let n = chooser.n();
        let mut cands: Vec<(TaskId, f64)> = Vec::with_capacity(n);
        match rank.metric {
            WeightMetric::Overlap => {
                // Strictly decreasing weight per level: the first n tasks
                // in (level desc, id asc) order are the exact top-n.
                for level in (0..rank.buckets.len()).rev() {
                    let need = n - cands.len();
                    for &(_, t) in rank.buckets[level].iter().take(need) {
                        cands.push((TaskId(t), level as f64));
                    }
                    if cands.len() == n {
                        break;
                    }
                }
            }
            WeightMetric::Rest => {
                // Strictly decreasing weight as missing grows: ascending
                // levels yield the exact top-n.
                for (level, bucket) in rank.buckets.iter().enumerate() {
                    let need = n - cands.len();
                    for &(_, t) in bucket.iter().take(need) {
                        cands.push((TaskId(t), rest_weight(level)));
                    }
                    if cands.len() == n {
                        break;
                    }
                }
            }
            WeightMetric::Combined => {
                // Weights mix normalised references and rest, so no single
                // bucket order is globally sorted — but within a bucket the
                // order is weight-descending, hence the global top-n is
                // contained in the union of every bucket's first n.
                let total_ref = rank.total_ref;
                let total_rest = rank.total_rest();
                for (level, bucket) in rank.buckets.iter().enumerate() {
                    for &(_, t) in bucket.iter().take(n) {
                        let w = combined_weight(
                            self.refsum[t as usize],
                            rest_weight(level),
                            total_ref,
                            total_rest,
                        );
                        cands.push((TaskId(t), w));
                    }
                }
            }
        }
        chooser.pick(&cands, rng)
    }

    /// The pending task with the largest overlap (ties to the lowest id)
    /// that satisfies `keep`, walking the index in (overlap desc, id asc)
    /// order — the storage-affinity replica selection and the sufferage
    /// fallback.
    ///
    /// # Panics
    ///
    /// Panics if no rank is attached or the rank does not order by
    /// [`WeightMetric::Overlap`].
    pub fn top_overlap_where<F: FnMut(TaskId) -> bool>(&self, mut keep: F) -> Option<TaskId> {
        let rank = self
            .rank
            .as_ref()
            .expect("top_overlap_where requires an enabled rank");
        assert_eq!(
            rank.metric,
            WeightMetric::Overlap,
            "top_overlap_where needs an Overlap-ordered rank"
        );
        for level in (0..rank.buckets.len()).rev() {
            for &(_, t) in &rank.buckets[level] {
                let task = TaskId(t);
                if keep(task) {
                    return Some(task);
                }
            }
        }
        None
    }

    /// Debug helper: checks this view against ground truth from the store.
    ///
    /// # Panics
    ///
    /// Panics (in any build) if a cached counter disagrees with the store.
    pub fn assert_consistent(&self, index: &FileIndex, workload: &Workload, store: &SiteStore) {
        for t in workload.tasks() {
            let files = t.files();
            let overlap = store.overlap(files) as u32;
            let refsum = store.overlap_ref_sum(files);
            assert_eq!(
                self.overlap(t.id),
                overlap,
                "overlap mismatch for task {}",
                t.id
            );
            assert_eq!(
                self.refsum(t.id),
                refsum,
                "refsum mismatch for task {}",
                t.id
            );
        }
        let _ = index;
    }
}

/// Attaches a `metric`-ordered priority index to every view and admits the
/// current pending pool — the shared initialize-time step of every
/// incremental-mode scheduler.
pub fn enable_ranks(
    views: &mut [SiteView],
    metric: WeightMetric,
    index: &FileIndex,
    pool: &TaskPool,
) {
    let pending: Vec<TaskId> = pool.iter().collect();
    for view in views {
        view.enable_rank(metric, index);
        for &t in &pending {
            view.rank_insert(index, t);
        }
    }
}

/// Withdraws `task` from every view's priority index (pool removal).
/// No-op for views without a rank.
pub fn rank_remove_all(views: &mut [SiteView], task: TaskId) {
    for view in views {
        view.rank_remove(task);
    }
}

/// Admits `task` into every view's priority index (pool requeue).
/// No-op for views without a rank.
pub fn rank_insert_all(views: &mut [SiteView], index: &FileIndex, task: TaskId) {
    for view in views {
        view.rank_insert(index, task);
    }
}

/// Indexed equivalent of [`weigh_all_naive`]: `O(T)` per decision.
///
/// [`weigh_all_naive`]: crate::weight::weigh_all_naive
#[must_use]
pub fn weigh_all_indexed(
    metric: WeightMetric,
    index: &FileIndex,
    pool: &TaskPool,
    view: &SiteView,
) -> Vec<(TaskId, f64)> {
    match metric {
        WeightMetric::Overlap => pool
            .iter()
            .map(|t| (t, f64::from(view.overlap(t))))
            .collect(),
        WeightMetric::Rest => pool
            .iter()
            .map(|t| {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                (t, rest_weight(missing))
            })
            .collect(),
        WeightMetric::Combined => {
            let mut per_task: Vec<(TaskId, u64, usize)> = Vec::with_capacity(pool.len());
            let mut total_ref: u64 = 0;
            let mut missing_counts: Vec<u32> = Vec::new();
            for t in pool.iter() {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                let ref_t = view.refsum(t);
                total_ref += ref_t;
                if missing >= missing_counts.len() {
                    missing_counts.resize(missing + 1, 0);
                }
                missing_counts[missing] += 1;
                per_task.push((t, ref_t, missing));
            }
            let total_rest = total_rest_from_counts(missing_counts.iter().copied());
            per_task
                .into_iter()
                .map(|(t, ref_t, missing)| {
                    let rest_t = rest_weight(missing);
                    (t, combined_weight(ref_t, rest_t, total_ref, total_rest))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 0.0),
            ],
            4,
            1.0,
            "w",
        )
    }

    #[test]
    fn index_layout() {
        let idx = FileIndex::build(&wl());
        assert_eq!(idx.file_count(), 4);
        assert_eq!(idx.task_count(), 3);
        assert_eq!(idx.tasks_of(FileId(1)), &[0, 1]);
        assert_eq!(idx.tasks_of(FileId(3)), &[2]);
        assert_eq!(idx.task_size(TaskId(0)), 2);
    }

    #[test]
    fn view_tracks_store() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        assert_eq!(view.overlap(TaskId(0)), 1);
        assert_eq!(view.overlap(TaskId(1)), 1);
        assert_eq!(view.overlap(TaskId(2)), 0);

        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));
        assert_eq!(view.refsum(TaskId(0)), 1);

        view.assert_consistent(&idx, &workload, &store);
    }

    #[test]
    fn eviction_rolls_back_counters() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(1, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));

        // Inserting file 2 evicts file 1 (capacity 1).
        let ref_before = store.ref_count(FileId(1));
        let evicted = store.insert(FileId(2));
        assert_eq!(evicted, vec![FileId(1)]);
        view.on_file_evicted(&idx, FileId(1), ref_before);
        view.on_file_added(&idx, FileId(2), store.ref_count(FileId(2)));

        view.assert_consistent(&idx, &workload, &store);
        assert_eq!(view.overlap(TaskId(0)), 0);
        assert_eq!(view.refsum(TaskId(0)), 0);
    }

    #[test]
    fn indexed_matches_naive_on_example() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);
        for f in [0u32, 2] {
            store.insert(FileId(f));
            view.on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
        }
        store.record_task_reference(FileId(2));
        view.on_task_reference(&idx, FileId(2));
        let pool = TaskPool::full(3);
        for metric in [
            WeightMetric::Overlap,
            WeightMetric::Rest,
            WeightMetric::Combined,
        ] {
            let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
            let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
            assert_eq!(naive, indexed, "metric {metric}");
        }
    }
}

#[cfg(test)]
mod rank_tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 0.0),
                TaskSpec::new(TaskId(3), vec![FileId(0), FileId(3)], 0.0),
            ],
            4,
            1.0,
            "w",
        )
    }

    fn ranked_view(metric: WeightMetric, resident: &[u32]) -> (FileIndex, SiteView, SiteStore) {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(4);
        view.enable_rank(metric, &idx);
        for t in 0..4 {
            view.rank_insert(&idx, TaskId(t));
        }
        for &f in resident {
            store.insert(FileId(f));
            view.on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
        }
        (idx, view, store)
    }

    #[test]
    fn ranked_overlap_pick_is_argmax() {
        let (_, view, _) = ranked_view(WeightMetric::Overlap, &[2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        // Task 2 overlaps {2,3} fully; deterministic argmax.
        assert_eq!(
            view.pick_ranked(&ChooseTask::new(1), &mut rng),
            Some(TaskId(2))
        );
    }

    #[test]
    fn ranked_rest_prefers_zero_missing() {
        let (_, view, _) = ranked_view(WeightMetric::Rest, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            view.pick_ranked(&ChooseTask::new(1), &mut rng),
            Some(TaskId(0)),
            "task 0 needs zero transfers"
        );
    }

    #[test]
    fn ranked_tracks_pool_membership() {
        let (idx, mut view, _) = ranked_view(WeightMetric::Overlap, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let chooser = ChooseTask::new(1);
        assert_eq!(view.pick_ranked(&chooser, &mut rng), Some(TaskId(0)));
        view.rank_remove(TaskId(0));
        assert_eq!(view.pick_ranked(&chooser, &mut rng), Some(TaskId(1)));
        view.rank_insert(&idx, TaskId(0));
        assert_eq!(view.pick_ranked(&chooser, &mut rng), Some(TaskId(0)));
        for t in 0..4 {
            view.rank_remove(TaskId(t));
        }
        assert_eq!(view.pick_ranked(&chooser, &mut rng), None);
    }

    #[test]
    fn top_overlap_where_filters() {
        let (_, view, _) = ranked_view(WeightMetric::Overlap, &[2, 3]);
        assert_eq!(view.top_overlap_where(|_| true), Some(TaskId(2)));
        assert_eq!(
            view.top_overlap_where(|t| t != TaskId(2)),
            Some(TaskId(1)),
            "next-best overlap after filtering the argmax"
        );
        assert_eq!(view.top_overlap_where(|_| false), None);
    }

    #[test]
    fn rank_totals_track_members() {
        let (idx, mut view, mut store) = ranked_view(WeightMetric::Combined, &[1, 2]);
        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));
        view.rank_remove(TaskId(3));
        let rank = view.rank().expect("rank enabled");
        assert_eq!(rank.len(), 3);
        let total: usize = rank.buckets.iter().map(BTreeSet::len).sum();
        assert_eq!(total, rank.len());
        assert_eq!(
            rank.total_ref,
            view.refsum(TaskId(0)) + view.refsum(TaskId(1)) + view.refsum(TaskId(2))
        );
        // total_rest mirrors the canonical grouped accumulation.
        let mut counts = vec![0u32; rank.buckets.len()];
        for (m, bucket) in rank.buckets.iter().enumerate() {
            counts[m] = bucket.len() as u32;
        }
        assert_eq!(
            rank.total_rest().to_bits(),
            total_rest_from_counts(counts).to_bits(),
            "bit-identical to the scan paths' normaliser"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Reference(u32),
        RemoveTask(u32),
    }

    fn arb_workload() -> impl Strategy<Value = Workload> {
        // 3..10 tasks over 12 files, 1..6 files each.
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 1..6), 3..10).prop_map(
            |task_files| {
                let tasks: Vec<TaskSpec> = task_files
                    .into_iter()
                    .enumerate()
                    .map(|(i, fs)| {
                        TaskSpec::new(TaskId(i as u32), fs.into_iter().map(FileId).collect(), 0.0)
                    })
                    .collect();
                Workload::new(tasks, 12, 1.0, "prop")
            },
        )
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        let op = prop_oneof![
            (0u32..12).prop_map(Op::Insert),
            (0u32..12).prop_map(Op::Reference),
            (0u32..10).prop_map(Op::RemoveTask),
        ];
        proptest::collection::vec(op, 0..60)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn indexed_always_matches_naive(
            workload in arb_workload(),
            ops in arb_ops(),
            cap in 1usize..8,
        ) {
            let idx = FileIndex::build(&workload);
            let mut store = SiteStore::new(cap, EvictionPolicy::Lru);
            let mut view = SiteView::new(workload.task_count());
            let mut pool = TaskPool::full(workload.task_count());
            for op in ops {
                match op {
                    Op::Insert(f) => {
                        let f = FileId(f);
                        if !store.contains(f) {
                            let evicted = store.insert(f);
                            for e in evicted {
                                view.on_file_evicted(&idx, e, store.ref_count(e));
                            }
                            view.on_file_added(&idx, f, store.ref_count(f));
                        }
                    }
                    Op::Reference(f) => {
                        let f = FileId(f);
                        if store.contains(f) {
                            store.record_task_reference(f);
                            view.on_task_reference(&idx, f);
                        }
                    }
                    Op::RemoveTask(t) => {
                        if (t as usize) < workload.task_count() {
                            pool.remove(TaskId(t));
                        }
                    }
                }
                for metric in [WeightMetric::Overlap, WeightMetric::Rest, WeightMetric::Combined] {
                    let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
                    let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
                    prop_assert_eq!(naive, indexed, "metric {}", metric);
                }
            }
        }

        /// The ranked pick — candidate selection off the bucket heads —
        /// makes the same choice as the full naive scan + `ChooseTask`,
        /// consuming the RNG identically, across storage churn and pool
        /// membership changes.
        #[test]
        fn ranked_pick_matches_naive_scan(
            workload in arb_workload(),
            ops in arb_ops(),
            cap in 1usize..8,
            metric_ix in 0usize..3,
            n in 1usize..4,
            seed in 0u64..8,
        ) {
            use rand::rngs::StdRng;
            use rand::SeedableRng;

            let metric = [WeightMetric::Overlap, WeightMetric::Rest, WeightMetric::Combined][metric_ix];
            let chooser = ChooseTask::new(n);
            let idx = FileIndex::build(&workload);
            let mut store = SiteStore::new(cap, EvictionPolicy::Lru);
            let mut view = SiteView::new(workload.task_count());
            view.enable_rank(metric, &idx);
            let mut pool = TaskPool::full(workload.task_count());
            for t in pool.iter().collect::<Vec<_>>() {
                view.rank_insert(&idx, t);
            }
            let mut rng_naive = StdRng::seed_from_u64(seed);
            let mut rng_ranked = StdRng::seed_from_u64(seed);
            for op in ops {
                match op {
                    Op::Insert(f) => {
                        let f = FileId(f);
                        if !store.contains(f) {
                            let evicted = store.insert(f);
                            for e in evicted {
                                view.on_file_evicted(&idx, e, store.ref_count(e));
                            }
                            view.on_file_added(&idx, f, store.ref_count(f));
                        }
                    }
                    Op::Reference(f) => {
                        let f = FileId(f);
                        if store.contains(f) {
                            store.record_task_reference(f);
                            view.on_task_reference(&idx, f);
                        }
                    }
                    Op::RemoveTask(t) => {
                        // Toggle pool membership to exercise requeues.
                        if (t as usize) < workload.task_count() {
                            let t = TaskId(t);
                            if pool.contains(t) {
                                pool.remove(t);
                                view.rank_remove(t);
                            } else {
                                pool.insert(t);
                                view.rank_insert(&idx, t);
                            }
                        }
                    }
                }
                let weights = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
                let naive = chooser.pick(&weights, &mut rng_naive);
                let ranked = view.pick_ranked(&chooser, &mut rng_ranked);
                prop_assert_eq!(naive, ranked, "metric {} n {}", metric, n);
            }
        }
    }
}
