//! The discrete-event grid simulation engine.
//!
//! Implements the execution model of §2.2 of the paper:
//!
//! * an idle worker asks the global scheduler for work (worker-centric
//!   strategies decide *now*; the task-centric baseline serves its
//!   pre-computed queues);
//! * the assigned task issues **one batch file request** to the site's
//!   data server;
//! * the data server serves requests **FIFO, one at a time**: it determines
//!   which files are missing *at service time*, pins the present ones, and
//!   fetches the missing ones sequentially from the external file server
//!   over the flow-level network (max–min fair sharing against every other
//!   site's concurrent transfers);
//! * when all files are local the worker computes for
//!   `flops / speed` seconds, then becomes idle again;
//! * completions may cancel replica executions (storage affinity), which
//!   aborts queued requests, in-flight transfers or running computations.
//!
//! The engine is fully deterministic given the [`SimConfig`] (including
//! seeds).
//!
//! ## Fault injection
//!
//! With an active [`gridsched_faults::FaultConfig`], the engine also
//! drives churn through the model:
//!
//! * **worker crashes** abort the worker's execution (queued request,
//!   in-flight transfer or running computation), hand the in-flight task
//!   back to the scheduler ([`Scheduler::on_worker_lost`]) and take the
//!   worker out of the pool until its repair completes;
//! * **data-server outages** lose every unpinned cached file, abort the
//!   active batch (its request is requeued and re-served after repair)
//!   and freeze the server's queue for the outage;
//! * under active faults a scheduler's `Finished` verdict parks the worker
//!   instead of retiring it — a fault may requeue work at any time.
//!
//! An inert fault config (or none) leaves the engine byte-identical to the
//! fault-free model; `tests/fault_injection.rs` property-tests this.
//!
//! ## Checkpoint/restart
//!
//! With an active [`gridsched_checkpoint::CheckpointConfig`], compute is
//! segmented: after every checkpoint interval (fixed, or the per-site
//! Young/Daly optimum `sqrt(2 · MTBF · C)`) the worker stalls and writes a
//! checkpoint image to its site's data server — a real flow across the
//! site's access link, contending with the server's file fetches. The
//! latest image of each task survives worker crashes (but dies with the
//! data server that holds it): when a fault-orphaned task is reassigned,
//! the new execution *restores* from the image — fetching it through the
//! backbone when it lives at another site — and computes only the
//! remaining flops. `wasted_compute_s` then counts only the work since the
//! last durable image, and `work_saved_s` the work a restore rescued.
//!
//! An inert checkpoint config (or none) leaves the engine byte-identical
//! to the PR 1 churn engine; `tests/checkpoint_restart.rs` property-tests
//! this.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridsched_checkpoint::{young_daly_interval, CheckpointConfig, CheckpointPolicy, ImageTracker};
use gridsched_core::GridEnv;
use gridsched_core::{
    Assignment, CapController, CircuitBreaker, ControlDirective, ControlPlane, ReplicaThrottle,
    Scheduler, SiteId, StorageAffinity, StrategyKind, Sufferage, WorkerCentric, WorkerId,
    Workqueue,
};
use gridsched_des::rng::{derive_seed, rng_for, Stream};
use gridsched_des::{EventHandle, Schedule, SimDuration, SimTime};
use gridsched_faults::{Entity, FaultKind, FaultTimeline};
use gridsched_net::{FlowId, NetSim};
use gridsched_storage::{CheckpointImage, ImageVault, SiteStore};
use gridsched_telemetry::{
    expose, Counter, DigestFold, Histogram, MetricsServer, ProbeSample, SiteProbe, Telemetry, Track,
};
use gridsched_topology::{generate, EdgeId, Route, Topology};
use gridsched_workload::{FileId, TaskId};

use crate::config::SimConfig;
use crate::metrics::{MetricsReport, SiteMetrics};
use crate::replication::ReplicationState;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Poll the scheduler for this (flat-indexed) worker.
    WorkerIdle(usize),
    /// The network says this flow completed.
    FlowDone(FlowId),
    /// A worker finished computing a task.
    ComputeDone {
        worker: usize,
        task: TaskId,
        generation: u64,
    },
    /// Fault injection: this (flat-indexed) worker crashes.
    WorkerCrash(usize),
    /// Fault injection: this worker's repair completes.
    WorkerRecover(usize),
    /// Fault injection: this site's data server goes down (file loss).
    ServerFail(usize),
    /// Fault injection: this site's data server comes back.
    ServerRecover(usize),
    /// Checkpointing: this worker's compute segment ended — commit the
    /// progress and write an image.
    CheckpointDue { worker: usize, generation: u64 },
    /// Fault injection: a correlated crash burst strikes one site (drawn
    /// at dispatch time from the burst process's own RNG stream).
    BurstStrike,
    /// Fault injection: a backbone link fails — hard (flows stall) or
    /// degraded (capacity × the configured factor).
    LinkFail { link: usize, hard: bool },
    /// Fault injection: the link's repair completes.
    LinkRecover { link: usize },
    /// Transfer guard: `site`'s in-flight batch fetch blew its deadline.
    /// `epoch` stamps the guard-slot arming that scheduled this event;
    /// a mismatch at dispatch identifies it as stale.
    TransferTimeout { site: usize, epoch: u64 },
    /// Transfer guard: `site`'s backoff elapsed — re-issue the fetch.
    TransferRetry { site: usize, epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Idle,
    WaitingData,
    /// Fetching a checkpoint image from another site before resuming
    /// (checkpointing only; input files are already pinned locally).
    Restoring,
    Computing,
    /// Scheduler said [`Assignment::Wait`]; re-polled after the next
    /// assignment or completion.
    Parked,
    /// Crashed (fault injection); comes back via [`Event::WorkerRecover`].
    Down,
    Done,
}

#[derive(Debug)]
struct RunningTask {
    task: TaskId,
    /// Whether this execution was launched as a replica
    /// ([`Assignment::Replicate`]) — drives the replica accounting split
    /// (completed vs cancelled vs fault-lost) and, under an active replica
    /// throttle, the targeted wake-ups when the execution ends.
    is_replica: bool,
    /// Files currently pinned on behalf of this execution.
    pinned: Vec<FileId>,
    compute_handle: Option<EventHandle>,
    /// When the current compute segment started (for wasted-compute
    /// accounting on aborts); `None` while stalled writing a checkpoint.
    compute_started: Option<SimTime>,
    // --- checkpoint/restart bookkeeping (all zero/None when
    // checkpointing is off) ---
    /// Flops already completed: restored progress plus segments committed
    /// this execution.
    progress_flops: f64,
    /// Compute-seconds embodied in `progress_flops` (across executions).
    progress_s: f64,
    /// Progress held by the latest durable image of this task — what a
    /// crash does *not* waste.
    durable_flops: f64,
    /// Compute-seconds held by the latest durable image.
    durable_s: f64,
    /// In-flight checkpoint image write or restore fetch.
    ckpt_flow: Option<FlowId>,
    /// When `ckpt_flow` started (overhead accounting).
    ckpt_flow_started: Option<SimTime>,
    /// Image contents (flops, invested seconds) being written by
    /// `ckpt_flow`.
    pending_image: Option<(f64, f64)>,
}

impl RunningTask {
    fn new(task: TaskId, is_replica: bool) -> Self {
        RunningTask {
            task,
            is_replica,
            pinned: Vec::new(),
            compute_handle: None,
            compute_started: None,
            progress_flops: 0.0,
            progress_s: 0.0,
            durable_flops: 0.0,
            durable_s: 0.0,
            ckpt_flow: None,
            ckpt_flow_started: None,
            pending_image: None,
        }
    }
}

#[derive(Debug)]
struct Worker {
    id: WorkerId,
    speed_flops: f64,
    state: WorkerState,
    generation: u64,
    current: Option<RunningTask>,
    /// When the worker crashed, while it is [`WorkerState::Down`].
    down_since: Option<SimTime>,
}

#[derive(Debug)]
struct BatchRequest {
    worker: usize,
    /// The worker's generation when the request was enqueued. Cancelled
    /// executions leave their entry in the queue (removal would be an
    /// O(queue) scan — ruinous under replica storms at 10⁵ workers); a
    /// generation mismatch at pop time identifies it as stale, which is
    /// behaviourally identical to eager removal because a skipped entry
    /// consumes no service time.
    generation: u64,
    enqueued_at: SimTime,
}

#[derive(Debug)]
struct ActiveBatch {
    worker: usize,
    service_start: SimTime,
    /// Missing files still to fetch, in task order.
    to_fetch: VecDeque<FileId>,
    /// The in-flight file, if any.
    current: Option<(FileId, FlowId)>,
}

#[derive(Debug, Default)]
struct DataServer {
    queue: VecDeque<BatchRequest>,
    active: Option<ActiveBatch>,
    /// Fault injection: the server is down and serves nothing.
    down: bool,
    /// When the outage started, while down.
    down_since: Option<SimTime>,
}

#[derive(Debug, Clone, Copy)]
enum FlowPurpose {
    /// A file of the active batch at `site`.
    Batch { site: usize },
    /// A proactive replication push of `file` to `site`.
    Replication { site: usize, file: FileId },
    /// A checkpoint image write from `worker` to its site's data server.
    Checkpoint { worker: usize },
    /// A checkpoint image fetch for `worker`'s resumed task from
    /// `from_site`'s data server.
    Restore { worker: usize, from_site: usize },
}

/// Runtime state of the checkpoint/restart subsystem (present only when a
/// non-inert [`CheckpointConfig`] is active).
#[derive(Debug)]
struct CkptState {
    /// Checkpoint image size in bytes.
    size_bytes: f64,
    /// Per-site checkpoint interval, seconds (Young/Daly adapts to each
    /// site's access-link write cost; fixed policies repeat one value).
    interval_s: Vec<f64>,
    /// Per-site access link crossed by image writes (the last hop of the
    /// site's route — the data server's uplink is the shared bottleneck).
    access_link: Vec<EdgeId>,
    /// Per-site image storage, dying with the site's data server.
    vaults: Vec<ImageVault>,
    /// Which site holds each task's latest image.
    tracker: ImageTracker,
    /// Executions that resumed from an image.
    restores: u64,
    /// Compute stalls while writing images + restore transfer time.
    overhead_s: f64,
    /// Compute-seconds restores rescued from re-execution.
    work_saved_s: f64,
    /// Per-site access-link write cost of one image, seconds — kept so
    /// the adaptive Young/Daly loop can re-derive `interval_s` at tick
    /// time from the *observed* failure process.
    write_cost_s: Vec<f64>,
    /// Whether the policy is [`CheckpointPolicy::YoungDalyAdaptive`]
    /// (the control plane owns the interval; static policies never move).
    adaptive: bool,
}

/// The correlated crash-burst process (present only when the fault config
/// sets a burst rate). Own decorrelated RNG stream — mirroring the
/// per-entity [`FaultTimeline`] derivation with a burst-specific tag — so
/// enabling bursts never perturbs the independent crash/repair schedules.
#[derive(Debug)]
struct BurstState {
    rng: StdRng,
    /// Mean seconds between bursts (exponential interarrival).
    rate_s: f64,
    /// Workers crashed per strike (capped by the site's live population).
    size: u32,
}

/// Seed-derivation tag of the burst process (the per-entity tags use
/// `0x1…`/`0x2…` for workers/servers).
const BURST_STREAM_TAG: u64 = 0x3_0000_0000;

impl BurstState {
    fn new(master_seed: u64, rate_s: f64, size: u32) -> Self {
        let base = derive_seed(master_seed, Stream::Faults);
        let seed = derive_seed(base ^ BURST_STREAM_TAG, Stream::Faults);
        BurstState {
            rng: StdRng::seed_from_u64(seed),
            rate_s,
            size,
        }
    }

    /// Time from now until the next burst (inverse-CDF exponential, one
    /// uniform per draw like [`FaultTimeline`]).
    fn next_gap(&mut self) -> SimDuration {
        let u: f64 = self.rng.gen();
        SimDuration::from_secs(-self.rate_s * (1.0 - u).ln())
    }

    /// The site this strike hits, uniform over the grid.
    fn pick_site(&mut self, sites: usize) -> usize {
        self.rng.gen_range(0..sites)
    }
}

/// How a faulted link is currently impaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkFaultMode {
    /// Hard outage: flows crossing the link stall at rate zero.
    Hard,
    /// Degraded-bandwidth window: capacity × the configured factor.
    Degraded,
}

/// Per-site transfer-guard bookkeeping for the site's active batch fetch.
#[derive(Debug, Default)]
struct GuardSlot {
    /// Monotonic stamp distinguishing live timeout/retry events from
    /// stale ones (bumped on every arm/disarm, like worker generations).
    epoch: u64,
    /// Timed-out attempts of the current file so far.
    attempts: u32,
    /// Bytes the current attempt still has to deliver. Resume keeps this
    /// shrinking across retries; naive mode resets it to the full file
    /// size — it is also the byte base for splitting a cancelled attempt
    /// into delivered vs wasted.
    remaining: f64,
    /// The armed deadline of the in-flight attempt.
    timeout: Option<EventHandle>,
    /// The armed backoff-delayed retry (no flow in flight meanwhile).
    retry: Option<EventHandle>,
    /// The file awaiting retry while no flow is in flight.
    pending_file: Option<FileId>,
    /// Failover source site of the in-flight attempt (`None` = the
    /// origin file server).
    source: Option<usize>,
}

/// The transfer-resilience layer (present only when
/// [`SimConfig::transfer_timeout_mult`] is set): per-site guard slots,
/// per-site route circuit breakers, and the backoff jitter's own
/// decorrelated RNG stream (same derivation pattern as [`BurstState`]).
struct XferGuard {
    rng: StdRng,
    timeout_mult: f64,
    max_retries: u32,
    backoff_s: f64,
    /// Restart-from-zero mode (the ablation baseline): no resume, no
    /// failover — every retry re-fetches the whole file from the origin.
    naive: bool,
    /// Per-site breakers over the site ↔ file-server route, multiplied
    /// into placement scores and failover-source choice.
    breakers: Vec<CircuitBreaker>,
    slots: Vec<GuardSlot>,
}

/// Seed-derivation tag of the transfer guard's jitter stream (workers,
/// servers, bursts and links use `0x1…`–`0x4…`).
const XFER_STREAM_TAG: u64 = 0x5_0000_0000;

impl XferGuard {
    fn new(config: &SimConfig, timeout_mult: f64) -> Self {
        let base = derive_seed(config.seed, Stream::Faults);
        let seed = derive_seed(base ^ XFER_STREAM_TAG, Stream::Faults);
        XferGuard {
            rng: StdRng::seed_from_u64(seed),
            timeout_mult,
            max_retries: config.transfer_retries,
            backoff_s: config.retry_backoff_s,
            naive: config.transfer_naive_retry,
            breakers: (0..config.sites).map(|_| CircuitBreaker::new()).collect(),
            slots: (0..config.sites).map(|_| GuardSlot::default()).collect(),
        }
    }
}

/// One deterministic simulation run. See the [crate docs](crate) for an
/// example.
pub struct GridSim {
    config: SimConfig,
    /// Shared per-site routes to the file server: flows borrow these
    /// instead of cloning a `Route` per transfer (engine hot path). The
    /// full [`Topology`] is dropped after construction — only the routes
    /// are needed at run time.
    site_routes: Vec<Arc<Route>>,
    schedule: Schedule<Event>,
    net: NetSim,
    net_handle: Option<EventHandle>,
    stores: Vec<SiteStore>,
    scheduler: Box<dyn Scheduler>,
    workers: Vec<Worker>,
    servers: Vec<DataServer>,
    /// Flat indices of workers in [`WorkerState::Parked`], grouped by
    /// site — lets [`GridSim::wake_parked`] run in O(parked) instead of
    /// scanning every worker on every completion, and lets the replica
    /// throttle hand a freed site-budget slot to exactly one parked worker
    /// of that site ([`GridSim::wake_one_parked`]) instead of re-polling
    /// the entire parked population (ruinous at 10⁵ workers).
    parked: Vec<BTreeSet<usize>>,
    /// Total entries across `parked` (stale entries included): the `== 0`
    /// fast path keeps [`GridSim::wake_parked`] from walking all S per-site
    /// sets on every assignment/completion when nothing is parked — the
    /// common case for the never-waiting worker-centric strategies, whose
    /// wake-up cost would otherwise grow `O(S)` per event.
    parked_count: usize,
    /// Whether the replica throttle governs this run (storage affinity
    /// with an active [`gridsched_core::ReplicaThrottle`]). Throttled runs
    /// use targeted wake-ups; unthrottled runs keep the legacy
    /// wake-everyone behaviour byte for byte.
    throttled: bool,
    /// The observability collector. Disabled unless the config requests
    /// an output (or a test injects one via [`GridSim::with_telemetry`]);
    /// recording through it is provably inert either way — no RNG draw, no
    /// event, no effect on any scheduling decision.
    telemetry: Telemetry,
    /// Cached wake-path instruments (the facade's registry lookup is a
    /// `BTreeMap` walk — too slow for a per-completion hot path).
    wake_calls: Counter,
    wake_fanout: Histogram,
    wake_targeted: Counter,
    flow_purpose: HashMap<FlowId, FlowPurpose>,
    replication: Option<ReplicationState>,
    replication_rng: rand::rngs::StdRng,
    // --- fault injection ---
    /// Whether the fault config injects anything; `false` keeps every
    /// fault code path dormant so the run matches the fault-free engine
    /// exactly.
    faults_active: bool,
    /// Per-worker stochastic churn processes (empty when inactive).
    worker_timelines: Vec<Option<FaultTimeline>>,
    /// Per-site data-server churn processes (empty when inactive).
    server_timelines: Vec<Option<FaultTimeline>>,
    /// Checkpoint/restart subsystem (`None` keeps every checkpoint code
    /// path dormant so the run matches the checkpoint-free engine
    /// exactly).
    checkpointing: Option<CkptState>,
    /// Closed-loop controllers (`None` keeps every control code path
    /// dormant so the run matches the open-loop engine exactly).
    control: Option<ControlPlane>,
    /// Correlated crash-burst process (`None` = independent crashes only).
    burst: Option<BurstState>,
    /// Per-link stochastic outage processes (empty when link faults are
    /// off; `None` entries when only scripted link events drive churn).
    link_timelines: Vec<Option<FaultTimeline>>,
    /// Per-link open fault window: impairment mode + when it opened
    /// (empty when faults are inactive).
    link_window: Vec<Option<(LinkFaultMode, SimTime)>>,
    /// Transfer-resilience layer (`None` keeps every guard code path
    /// dormant so the run matches the unguarded engine exactly).
    xfer: Option<XferGuard>,
    /// Cached controller instruments (same rationale as the wake-path
    /// handles: the registry lookup is too slow for per-event hot paths).
    control_ticks: Counter,
    control_estimates: Counter,
    control_cap_raises: Counter,
    control_cap_lowers: Counter,
    control_breaker_opens: Counter,
    control_breaker_half_opens: Counter,
    control_breaker_closes: Counter,
    /// Tasks that were fault-orphaned at least once (re-execution
    /// accounting).
    lost_ever: Vec<bool>,
    // --- metrics ---
    per_site: Vec<SiteMetrics>,
    tasks_completed: u64,
    replicas_launched: u64,
    replicas_cancelled: u64,
    replicas_completed: u64,
    primaries_cancelled: u64,
    replicas_lost: u64,
    cancelled_bytes: f64,
    replication_pushes: u64,
    replication_bytes: f64,
    last_completion: SimTime,
    tasks_lost: u64,
    re_executions: u64,
    worker_crashes: u64,
    server_outages: u64,
    wasted_compute_s: f64,
    // --- network faults & transfer resilience ---
    link_outages: u64,
    link_downtime_s: f64,
    xfer_timeouts: u64,
    xfer_retries: u64,
    xfer_failovers: u64,
    xfer_bytes_resumed: f64,
    xfer_bytes_retransmitted: f64,
    /// Flow-conservation ledger: every started flow ends in exactly one
    /// of completed/aborted/retrying/requeued (asserted in `report`).
    flows_started: u64,
    flows_completed: u64,
    flows_aborted: u64,
    flows_retrying: u64,
    flows_requeued: u64,
    /// Cached network-fault instruments (same rationale as the wake-path
    /// handles).
    link_outage_count: Counter,
    xfer_timeout_count: Counter,
    xfer_retry_count: Counter,
    xfer_failover_count: Counter,
    xfer_resumed_bytes: Histogram,
}

impl GridSim {
    /// Builds the simulation state for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. more sites than
    /// the topology provides).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let topology = generate(&config.topology);
        assert!(
            config.sites <= topology.sites.len(),
            "config uses {} sites but topology has {}",
            config.sites,
            topology.sites.len()
        );
        assert!(
            !config.replica_throttle.is_active()
                || config.strategy == StrategyKind::StorageAffinity,
            "the replica throttle only applies to storage-affinity \
             (configured strategy: {})",
            config.strategy
        );
        // The builders already reject zero bounds, but the struct's public
        // fields (and deserialized configs) can bypass them — and a zero
        // cap can deadlock churned runs (a fault-orphaned task that is in
        // nobody's queue can only come back as a replica).
        assert!(
            config.replica_throttle.replica_cap != Some(0)
                && config.replica_throttle.site_budget != Some(0),
            "replica cap and site replica budget must be >= 1"
        );
        assert!(
            !config.control.adaptive_throttle || config.strategy == StrategyKind::StorageAffinity,
            "the adaptive replica throttle only applies to storage-affinity \
             (configured strategy: {})",
            config.strategy
        );
        assert!(
            config
                .faults
                .as_ref()
                .is_none_or(|f| f.burst_rate_s.is_none() || f.worker_mtbf_s.is_some()),
            "correlated crash bursts need worker faults (burst victims repair \
             through the worker MTTR process)"
        );
        assert!(
            config
                .checkpointing
                .as_ref()
                .is_none_or(|c| c.policy != CheckpointPolicy::YoungDalyAdaptive)
                || config.control.adaptive_checkpoint,
            "young-daly-adaptive checkpointing needs the adaptive-checkpoint \
             control loop"
        );
        // An adaptive throttle with no user-configured throttle starts
        // from the controller's default cap; the user's own bounds win
        // when present. The *configured* throttle stays in the summary —
        // the controller's moving cap is runtime state, not config.
        let effective_throttle =
            if config.control.adaptive_throttle && !config.replica_throttle.is_active() {
                ReplicaThrottle::none().with_replica_cap(CapController::DEFAULT_START_CAP)
            } else {
                config.replica_throttle
            };
        let telemetry = if config.telemetry_requested() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let mut net = NetSim::new(topology.graph.bandwidths());
        net.attach_telemetry(&telemetry);
        let stores: Vec<SiteStore> = (0..config.sites)
            .map(|_| SiteStore::new(config.capacity_files, config.policy))
            .collect();

        let mut speed_rng = rng_for(config.seed, Stream::WorkerSpeeds);
        let mut workers = Vec::with_capacity(config.sites * config.workers_per_site);
        for site in 0..config.sites {
            for index in 0..config.workers_per_site {
                workers.push(Worker {
                    id: WorkerId::new(SiteId(site as u32), index as u32),
                    speed_flops: config.speeds.sample(&mut speed_rng),
                    state: WorkerState::Idle,
                    generation: 0,
                    current: None,
                    down_since: None,
                });
            }
        }
        let servers = (0..config.sites).map(|_| DataServer::default()).collect();
        let mut scheduler = build_scheduler(&config, effective_throttle);
        scheduler.attach_telemetry(&telemetry);
        let faults_active = config.faults.as_ref().is_some_and(|f| !f.is_inert());
        if let Some(trace) = config.faults.as_ref().and_then(|f| f.trace.as_ref()) {
            if let Err(e) = trace.validate(config.sites, config.workers_per_site) {
                panic!("{e}");
            }
            if let Some(ml) = trace.max_link() {
                assert!(
                    ml < net.link_count(),
                    "fault trace references link {ml} but the topology has {} links",
                    net.link_count()
                );
            }
        }
        let (worker_timelines, server_timelines) = if faults_active {
            let fc = config.faults.as_ref().expect("active faults have a config");
            let wtl = (0..workers.len())
                .map(|w| {
                    fc.worker_mtbf_s.map(|mtbf| {
                        FaultTimeline::new(config.seed, Entity::Worker(w), mtbf, fc.worker_mttr_s)
                            .with_repair_shape(fc.worker_mttr_shape)
                    })
                })
                .collect();
            let stl = (0..config.sites)
                .map(|s| {
                    fc.server_mtbf_s.map(|mtbf| {
                        FaultTimeline::new(config.seed, Entity::Server(s), mtbf, fc.server_mttr_s)
                            .with_repair_shape(fc.server_mttr_shape)
                    })
                })
                .collect();
            (wtl, stl)
        } else {
            (Vec::new(), Vec::new())
        };
        let checkpointing = config
            .checkpointing
            .as_ref()
            .filter(|c| !c.is_inert())
            .map(|c| build_ckpt_state(c, &config, &topology));
        let lost_ever = vec![false; config.workload.task_count()];
        let replication = config
            .replication
            .map(|rc| ReplicationState::new(rc, config.workload.file_count()));
        let per_site = vec![SiteMetrics::default(); config.sites];
        let site_routes: Vec<Arc<Route>> = (0..config.sites)
            .map(|s| Arc::new(topology.routes.site_to_file_server(s).clone()))
            .collect();
        let throttled = effective_throttle.is_active();
        let control = (!config.control.is_inert()).then(|| {
            let start_cap = effective_throttle
                .replica_cap
                .unwrap_or(CapController::DEFAULT_START_CAP);
            ControlPlane::new(
                config.control,
                config.sites,
                u32::try_from(config.workers_per_site).expect("workers_per_site fits u32"),
                start_cap,
            )
        });
        let burst = if faults_active {
            config.faults.as_ref().and_then(|f| {
                f.burst_rate_s
                    .map(|rate| BurstState::new(config.seed, rate, f.burst_size))
            })
        } else {
            None
        };
        let link_timelines: Vec<Option<FaultTimeline>> = if faults_active {
            let fc = config.faults.as_ref().expect("active faults have a config");
            (0..net.link_count())
                .map(|l| {
                    fc.link_mtbf_s.map(|mtbf| {
                        FaultTimeline::new(config.seed, Entity::Link(l), mtbf, fc.link_mttr_s)
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let link_window = if faults_active {
            vec![None; net.link_count()]
        } else {
            Vec::new()
        };
        let xfer = config
            .transfer_timeout_mult
            .map(|mult| XferGuard::new(&config, mult));
        let parked = vec![BTreeSet::new(); config.sites];
        GridSim {
            replication_rng: rng_for(config.seed, Stream::Replication),
            config,
            site_routes,
            schedule: Schedule::new(),
            net,
            net_handle: None,
            stores,
            scheduler,
            workers,
            servers,
            parked,
            parked_count: 0,
            throttled,
            wake_calls: telemetry.counter("engine.wake.calls"),
            wake_fanout: telemetry.histogram("engine.wake.fanout"),
            wake_targeted: telemetry.counter("engine.wake.targeted"),
            control_ticks: telemetry.counter("control.ticks"),
            control_estimates: telemetry.counter("control.estimator.updates"),
            control_cap_raises: telemetry.counter("control.cap.raises"),
            control_cap_lowers: telemetry.counter("control.cap.lowers"),
            control_breaker_opens: telemetry.counter("control.breaker.opens"),
            control_breaker_half_opens: telemetry.counter("control.breaker.half_opens"),
            control_breaker_closes: telemetry.counter("control.breaker.closes"),
            link_outage_count: telemetry.counter("net.link.outages"),
            xfer_timeout_count: telemetry.counter("xfer.timeouts"),
            xfer_retry_count: telemetry.counter("xfer.retries"),
            xfer_failover_count: telemetry.counter("xfer.failovers"),
            xfer_resumed_bytes: telemetry.histogram("xfer.bytes_resumed"),
            telemetry,
            flow_purpose: HashMap::new(),
            replication,
            faults_active,
            worker_timelines,
            server_timelines,
            checkpointing,
            control,
            burst,
            link_timelines,
            link_window,
            xfer,
            lost_ever,
            per_site,
            tasks_completed: 0,
            replicas_launched: 0,
            replicas_cancelled: 0,
            replicas_completed: 0,
            primaries_cancelled: 0,
            replicas_lost: 0,
            cancelled_bytes: 0.0,
            replication_pushes: 0,
            replication_bytes: 0.0,
            last_completion: SimTime::ZERO,
            tasks_lost: 0,
            re_executions: 0,
            worker_crashes: 0,
            server_outages: 0,
            wasted_compute_s: 0.0,
            link_outages: 0,
            link_downtime_s: 0.0,
            xfer_timeouts: 0,
            xfer_retries: 0,
            xfer_failovers: 0,
            xfer_bytes_resumed: 0.0,
            xfer_bytes_retransmitted: 0.0,
            flows_started: 0,
            flows_completed: 0,
            flows_aborted: 0,
            flows_retrying: 0,
            flows_requeued: 0,
        }
    }

    /// Replaces the telemetry collector. [`Telemetry`] is a shared handle:
    /// tests and examples keep a clone, run the simulation, and inspect
    /// everything it recorded afterwards. Must be called before
    /// [`GridSim::run`] (instrument handles are re-distributed here, ahead
    /// of the scheduler's `initialize`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.scheduler.attach_telemetry(&telemetry);
        self.net.attach_telemetry(&telemetry);
        self.wake_calls = telemetry.counter("engine.wake.calls");
        self.wake_fanout = telemetry.histogram("engine.wake.fanout");
        self.wake_targeted = telemetry.counter("engine.wake.targeted");
        self.control_ticks = telemetry.counter("control.ticks");
        self.control_estimates = telemetry.counter("control.estimator.updates");
        self.control_cap_raises = telemetry.counter("control.cap.raises");
        self.control_cap_lowers = telemetry.counter("control.cap.lowers");
        self.control_breaker_opens = telemetry.counter("control.breaker.opens");
        self.control_breaker_half_opens = telemetry.counter("control.breaker.half_opens");
        self.control_breaker_closes = telemetry.counter("control.breaker.closes");
        self.link_outage_count = telemetry.counter("net.link.outages");
        self.xfer_timeout_count = telemetry.counter("xfer.timeouts");
        self.xfer_retry_count = telemetry.counter("xfer.retries");
        self.xfer_failover_count = telemetry.counter("xfer.failovers");
        self.xfer_resumed_bytes = telemetry.histogram("xfer.bytes_resumed");
        self.telemetry = telemetry;
        self
    }

    /// The run's telemetry collector (disabled unless requested).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs the simulation to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (events drain while tasks remain
    /// unfinished) — this would indicate a scheduler bug — or if a
    /// configured telemetry output path cannot be written.
    #[must_use]
    pub fn run(mut self) -> MetricsReport {
        let env = GridEnv {
            sites: self.config.sites,
            workers_per_site: self.config.workers_per_site,
            capacity_files: self.config.capacity_files,
        };
        self.scheduler.initialize(&env, &self.stores);
        for w in 0..self.workers.len() {
            self.schedule.schedule_now(Event::WorkerIdle(w));
        }
        self.arm_faults();
        // The probe sampler runs between dispatched events, never *as* an
        // event: boundaries are computed as k·dt (not accumulated) so the
        // series is exact and strictly increasing, and the event queue —
        // including `events_dispatched` — never sees it.
        let probe_dt = self
            .config
            .probe_interval_s
            .filter(|_| self.telemetry.is_enabled());
        let mut probes_emitted: u64 = 0;
        // The determinism digest follows the same discipline: it folds
        // each popped event into a rolling hash right here, between
        // dispatches — never scheduling anything, drawing no randomness.
        let mut digest = self
            .config
            .digest_out
            .as_ref()
            .map(|_| DigestFold::new(self.config.digest_window_s));
        let server = self.config.serve_metrics.as_deref().map(|addr| {
            MetricsServer::start(addr)
                .unwrap_or_else(|e| panic!("cannot serve metrics at {addr}: {e}"))
        });
        // Controller ticks follow the probe sampler's not-an-event
        // discipline: boundaries are computed as k·dt between dispatches,
        // the event queue never sees them, and with every loop disabled
        // (`control: None`) the block is dead code — the open-loop engine
        // byte for byte. Actuation a tick performs (cap moves, wake-ups)
        // lands at the *current* event's time, like any handler's.
        let tick_dt = self.control.as_ref().map(|c| c.config().tick_s);
        let mut ticks_emitted: u64 = 0;
        let mut dispatched: u64 = 0;
        while let Some((now, event)) = self.schedule.next() {
            if let Some(dt) = probe_dt {
                loop {
                    let at = SimTime::from_secs(dt * (probes_emitted + 1) as f64);
                    if at > now {
                        break;
                    }
                    self.record_probe(at);
                    probes_emitted += 1;
                }
            }
            if let Some(dt) = tick_dt {
                loop {
                    let at = SimTime::from_secs(dt * (ticks_emitted + 1) as f64);
                    if at > now {
                        break;
                    }
                    self.control_tick(at);
                    ticks_emitted += 1;
                }
            }
            if let Some(d) = digest.as_mut() {
                Self::fold_event(d, now, &event);
            }
            dispatched += 1;
            if let Some(server) = &server {
                // Refresh the served snapshot at a coarse event cadence
                // (wall-clock timers would be nondeterministic state).
                if dispatched.is_multiple_of(65_536) {
                    server.publish(self.render_exposition(dispatched));
                }
            }
            match event {
                Event::WorkerIdle(w) => self.handle_worker_idle(w),
                Event::FlowDone(fid) => self.handle_flow_done(fid),
                Event::ComputeDone {
                    worker,
                    task,
                    generation,
                } => self.handle_compute_done(worker, task, generation),
                Event::WorkerCrash(w) => self.handle_worker_crash(w),
                Event::WorkerRecover(w) => self.handle_worker_recover(w),
                Event::ServerFail(s) => self.handle_server_fail(s),
                Event::ServerRecover(s) => self.handle_server_recover(s),
                Event::CheckpointDue { worker, generation } => {
                    self.handle_checkpoint_due(worker, generation);
                }
                Event::BurstStrike => self.handle_burst_strike(),
                Event::LinkFail { link, hard } => self.handle_link_fail(link, hard),
                Event::LinkRecover { link } => self.handle_link_recover(link),
                Event::TransferTimeout { site, epoch } => {
                    self.handle_transfer_timeout(site, epoch);
                }
                Event::TransferRetry { site, epoch } => self.handle_transfer_retry(site, epoch),
            }
        }
        assert_eq!(
            self.scheduler.unfinished(),
            0,
            "simulation deadlocked with {} unfinished tasks ({})",
            self.scheduler.unfinished(),
            self.scheduler.name()
        );
        self.close_open_fault_spans();
        let report = self.report();
        self.flush_telemetry();
        if let Some(d) = digest {
            let stream = d.finish();
            if let Some(path) = &self.config.digest_out {
                std::fs::write(path, stream.to_jsonl())
                    .unwrap_or_else(|e| panic!("cannot write digest to {path}: {e}"));
            }
        }
        if let Some(server) = &server {
            server.publish(self.render_exposition(dispatched));
            if self.config.serve_linger_s > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    self.config.serve_linger_s,
                ));
            }
        }
        report
    }

    /// Encodes one dispatched event into the digest fold: the timestamp
    /// bits, an event tag, then the payload words. Any change to what the
    /// engine dispatches — ordering, timing or payload — changes the
    /// chain.
    fn fold_event(digest: &mut DigestFold, now: SimTime, event: &Event) {
        let t = now.as_secs();
        match *event {
            Event::WorkerIdle(w) => digest.record(t, &[0, w as u64]),
            Event::FlowDone(fid) => digest.record(t, &[1, fid.raw()]),
            Event::ComputeDone {
                worker,
                task,
                generation,
            } => digest.record(t, &[2, worker as u64, task.index() as u64, generation]),
            Event::WorkerCrash(w) => digest.record(t, &[3, w as u64]),
            Event::WorkerRecover(w) => digest.record(t, &[4, w as u64]),
            Event::ServerFail(s) => digest.record(t, &[5, s as u64]),
            Event::ServerRecover(s) => digest.record(t, &[6, s as u64]),
            Event::CheckpointDue { worker, generation } => {
                digest.record(t, &[7, worker as u64, generation]);
            }
            // Tag 8 only ever appears when bursts are configured, so the
            // disabled digest chain stays byte-identical.
            Event::BurstStrike => digest.record(t, &[8]),
            // Tags 9–12 likewise only appear when link faults / the
            // transfer guard are configured.
            Event::LinkFail { link, hard } => {
                digest.record(t, &[9, link as u64, u64::from(hard)]);
            }
            Event::LinkRecover { link } => digest.record(t, &[10, link as u64]),
            Event::TransferTimeout { site, epoch } => {
                digest.record(t, &[11, site as u64, epoch]);
            }
            Event::TransferRetry { site, epoch } => {
                digest.record(t, &[12, site as u64, epoch]);
            }
        }
    }

    /// Renders the live `/metrics` body: the instrument registry in
    /// Prometheus text format plus run-level gauges.
    fn render_exposition(&self, events_dispatched: u64) -> String {
        let mut out = gridsched_telemetry::render_prometheus(&self.telemetry.snapshot());
        out.push_str("# TYPE gridsched_sim_time_seconds gauge\n");
        expose::write_sample(
            &mut out,
            "gridsched_sim_time_seconds",
            &[],
            self.now().as_secs(),
        );
        out.push_str("# TYPE gridsched_events_dispatched_total counter\n");
        expose::write_sample(
            &mut out,
            "gridsched_events_dispatched_total",
            &[],
            events_dispatched as f64,
        );
        out.push_str("# TYPE gridsched_tasks_completed_total counter\n");
        expose::write_sample(
            &mut out,
            "gridsched_tasks_completed_total",
            &[],
            self.tasks_completed as f64,
        );
        out.push_str("# TYPE gridsched_run_info gauge\n");
        expose::write_sample(
            &mut out,
            "gridsched_run_info",
            &[
                ("strategy", &self.config.strategy.to_string()),
                ("sites", &self.config.sites.to_string()),
                (
                    "workers_per_site",
                    &self.config.workers_per_site.to_string(),
                ),
                ("seed", &self.config.seed.to_string()),
            ],
            1.0,
        );
        out
    }

    /// Samples the grid's state at probe boundary `at` — queue depths,
    /// worker states, store occupancy, network load — into the telemetry
    /// time series.
    fn record_probe(&self, at: SimTime) {
        let mut sites = vec![SiteProbe::default(); self.config.sites];
        for (s, server) in self.servers.iter().enumerate() {
            sites[s].queue_depth = server.queue.len() as u64;
            sites[s].server_down = server.down;
            sites[s].server_files = self.stores[s].len() as u64;
            sites[s].control_score_milli = match self.control.as_ref() {
                Some(plane) if plane.placement_enabled() => {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        (plane.site_scores()[s].clamp(0.0, 1.0) * 1000.0).round() as u64
                    }
                }
                // No placement loop: the neutral multiplier.
                _ => 1000,
            };
        }
        for w in &self.workers {
            let site = &mut sites[w.id.site.index()];
            match w.state {
                WorkerState::WaitingData | WorkerState::Restoring | WorkerState::Computing => {
                    site.busy_workers += 1;
                }
                WorkerState::Parked => site.parked_workers += 1,
                WorkerState::Down => site.dead_workers += 1,
                WorkerState::Idle | WorkerState::Done => {}
            }
        }
        self.telemetry.record_probe(ProbeSample {
            t_s: at.as_secs(),
            sites,
            in_flight_flows: self.net.active_flows() as u64,
            links_busy: self.net.busy_links() as u64,
            links_total: self.net.link_count() as u64,
            links_down: self.net.links_down() as u64,
        });
    }

    /// One controller tick at boundary `at`: feeds the cumulative replica
    /// counters to the plane, then actuates whatever it decided — a cap
    /// move goes to the scheduler (waking parked capacity on raises), a
    /// breaker half-open wakes one probe worker at the site, fresh
    /// placement scores go to the scheduler *and* steer the engine's own
    /// replication push targeting, and the adaptive Young/Daly loop
    /// re-derives each site's checkpoint interval from the observed
    /// failure interarrival process (taking effect at the next segment
    /// boundary — in-flight segments are never rescheduled).
    fn control_tick(&mut self, at: SimTime) {
        let mut plane = self.control.take().expect("tick implies a control plane");
        self.control_ticks.incr();
        // Cancelled *or* fault-lost replicas both count as speculative
        // waste the throttle should react to.
        let outcome = plane.tick(
            at.as_secs(),
            self.replicas_cancelled + self.replicas_lost,
            self.replicas_completed,
        );
        if let Some(cap) = outcome.new_cap {
            self.scheduler
                .on_control(&ControlDirective::SetReplicaCap(cap));
            if outcome.cap_raised {
                self.control_cap_raises.incr();
                // The raise re-admits parked replica candidates.
                self.wake_parked();
            } else {
                self.control_cap_lowers.incr();
            }
        }
        for &site in &outcome.half_opened {
            self.control_breaker_half_opens.incr();
            // Half-open re-admits the site's traffic (the dispatch gate
            // only blocks while fully open): wake every parked worker.
            // The first crash re-trips the breaker for a fresh cooldown;
            // parking the whole site until a completion closed it would
            // idle repaired workers for hours on compute-heavy tasks.
            self.wake_site_parked(site);
        }
        if let Some(mut scores) = outcome.scores {
            // Route breakers multiply into placement: a site whose
            // transfers keep timing out scores toward zero even when its
            // workers are perfectly healthy.
            if let Some(guard) = self.xfer.as_mut() {
                for (s, score) in scores.iter_mut().enumerate() {
                    let _ = guard.breakers[s].tick(at.as_secs());
                    *score *= guard.breakers[s].score_factor();
                }
            }
            self.scheduler
                .on_control(&ControlDirective::SiteScores(scores));
        }
        if plane.checkpoint_enabled() {
            if let Some(ckpt) = self.checkpointing.as_mut() {
                if ckpt.adaptive {
                    for site in 0..self.config.sites {
                        if let Some(mtbf) = plane.site_worker_mtbf_s(site) {
                            ckpt.interval_s[site] =
                                young_daly_interval(mtbf, ckpt.write_cost_s[site]);
                        }
                    }
                }
            }
        }
        self.control = Some(plane);
    }

    /// Closes the fault spans still open when the event queue drains
    /// (scripted crashes/outages with no scripted recovery never see a
    /// recover event).
    fn close_open_fault_spans(&self) {
        let t = self.now().as_secs();
        for (w, worker) in self.workers.iter().enumerate() {
            if worker.down_since.is_some() {
                self.telemetry.span_end(Track::worker(w), "down", t);
            }
        }
        for (s, server) in self.servers.iter().enumerate() {
            if server.down_since.is_some() {
                self.telemetry.span_end(Track::server(s), "outage", t);
            }
        }
    }

    /// Writes the configured telemetry outputs, if any.
    fn flush_telemetry(&self) {
        if let Some(path) = &self.config.trace_out {
            std::fs::write(path, self.telemetry.to_chrome_trace())
                .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        }
        if let Some(path) = &self.config.metrics_out {
            std::fs::write(path, self.telemetry.to_jsonl())
                .unwrap_or_else(|e| panic!("cannot write metrics to {path}: {e}"));
        }
    }

    fn now(&self) -> SimTime {
        self.schedule.now()
    }

    // ----- scheduler interaction -------------------------------------

    fn handle_worker_idle(&mut self, w: usize) {
        match self.workers[w].state {
            WorkerState::Idle | WorkerState::Parked => {}
            // Stale re-poll (the worker got work, finished entirely, is
            // mid-execution, or crashed before the poll fired).
            WorkerState::WaitingData
            | WorkerState::Restoring
            | WorkerState::Computing
            | WorkerState::Down
            | WorkerState::Done => return,
        }
        let worker_id = self.workers[w].id;
        let site = worker_id.site.index();
        // An open breaker gates dispatch for *every* strategy at the
        // engine, before the scheduler is even consulted — no scheduler
        // state is perturbed, so closing the breaker restores the exact
        // open-loop decision sequence for the parked workers. Half-open
        // probes and closes wake the site's parked population again.
        if self
            .control
            .as_ref()
            .is_some_and(|p| p.dispatch_blocked(site))
        {
            self.park(w);
            return;
        }
        let assignment = self.scheduler.on_worker_idle(worker_id, &self.stores[site]);
        match assignment {
            Assignment::Run(task) | Assignment::Replicate(task) => {
                let is_replica = matches!(assignment, Assignment::Replicate(_));
                if is_replica {
                    self.replicas_launched += 1;
                }
                if self.lost_ever[task.index()] {
                    self.re_executions += 1;
                }
                self.workers[w].state = WorkerState::WaitingData;
                self.workers[w].current = Some(RunningTask::new(task, is_replica));
                self.telemetry.span_begin_for_task(
                    Track::worker(w),
                    "queued",
                    self.now().as_secs(),
                    task.index() as u64,
                );
                let enqueued_at = self.now();
                let generation = self.workers[w].generation;
                self.servers[site].queue.push_back(BatchRequest {
                    worker: w,
                    generation,
                    enqueued_at,
                });
                self.maybe_start_service(site);
                // New running task → replication candidates changed. Under
                // a throttle this re-poll is pointless (a new execution
                // never frees a cap or budget slot) and waking 10⁵ parked
                // workers per assignment would recreate the storm.
                if !self.throttled {
                    self.wake_parked();
                }
            }
            Assignment::Wait => {
                self.park(w);
            }
            Assignment::Finished => {
                // Under active faults "finished" is never final: a crash
                // may orphan a task at any time, so keep the worker
                // available for a wake-up instead of retiring it.
                if self.faults_active {
                    self.park(w);
                } else {
                    self.workers[w].state = WorkerState::Done;
                }
            }
        }
    }

    fn park(&mut self, w: usize) {
        self.workers[w].state = WorkerState::Parked;
        let site = self.workers[w].id.site.index();
        if self.parked[site].insert(w) {
            self.parked_count += 1;
        }
    }

    /// Wakes every parked worker, in ascending index order (matching the
    /// former full scan, so event order — and hence every downstream
    /// decision — is unchanged). Entries whose worker has since crashed
    /// are silently dropped. `O(1)` when nothing is parked.
    fn wake_parked(&mut self) {
        self.wake_calls.incr();
        if self.parked_count == 0 {
            self.wake_fanout.record(0);
            return;
        }
        let mut list: Vec<usize> = Vec::new();
        for site in &mut self.parked {
            list.extend(std::mem::take(site));
        }
        self.parked_count = 0;
        list.sort_unstable();
        self.wake_fanout.record(list.len() as u64);
        for w in list {
            if self.workers[w].state == WorkerState::Parked {
                self.workers[w].state = WorkerState::Idle;
                self.schedule.schedule_now(Event::WorkerIdle(w));
            }
        }
    }

    /// Wakes the lowest-indexed parked worker of `site`, if any — the
    /// targeted hand-off of a freed replica slot under an active throttle
    /// (`O(log parked)`, vs re-polling the whole parked population). Stale
    /// entries (workers that crashed since parking) are dropped along the
    /// way.
    fn wake_one_parked(&mut self, site: usize) {
        self.wake_targeted.incr();
        while let Some(w) = self.parked[site].pop_first() {
            self.parked_count -= 1;
            if self.workers[w].state == WorkerState::Parked {
                self.workers[w].state = WorkerState::Idle;
                self.schedule.schedule_now(Event::WorkerIdle(w));
                return;
            }
        }
    }

    /// Wakes every parked worker of `site`, in ascending index order — a
    /// closing circuit breaker re-opens the whole site at once.
    fn wake_site_parked(&mut self, site: usize) {
        let list = std::mem::take(&mut self.parked[site]);
        self.parked_count -= list.len();
        for w in list {
            if self.workers[w].state == WorkerState::Parked {
                self.workers[w].state = WorkerState::Idle;
                self.schedule.schedule_now(Event::WorkerIdle(w));
            }
        }
    }

    // ----- data-server service loop -----------------------------------

    fn maybe_start_service(&mut self, site: usize) {
        if self.servers[site].down || self.servers[site].active.is_some() {
            return;
        }
        let request = loop {
            let Some(request) = self.servers[site].queue.pop_front() else {
                return;
            };
            // Skip entries whose execution was torn down since enqueueing
            // (replica cancels, crashes) — see `BatchRequest::generation`.
            if self.workers[request.worker].generation == request.generation {
                break request;
            }
        };
        let w = request.worker;
        let t = self.now().as_secs();
        let task = self.workers[w]
            .current
            .as_ref()
            .expect("queued worker has a current task")
            .task;
        self.telemetry.span_end(Track::worker(w), "queued", t);
        self.telemetry
            .span_begin_for_task(Track::worker(w), "staging", t, task.index() as u64);
        let files: Vec<FileId> = self.config.workload.task(task).files().to_vec();
        // Waiting time: enqueue → service start (Table 3 column 1).
        let waited = (self.now() - request.enqueued_at).as_secs();
        let sm = &mut self.per_site[site];
        sm.requests += 1;
        sm.waiting_time_s += waited;
        // Pin what is present; fetch the rest.
        let mut to_fetch = VecDeque::new();
        for &f in &files {
            if self.stores[site].contains(f) {
                self.stores[site].pin(f);
                self.workers[w]
                    .current
                    .as_mut()
                    .expect("current set above")
                    .pinned
                    .push(f);
            } else {
                to_fetch.push_back(f);
            }
        }
        self.servers[site].active = Some(ActiveBatch {
            worker: w,
            service_start: self.now(),
            to_fetch,
            current: None,
        });
        self.advance_batch(site);
    }

    /// Starts the next missing-file transfer of `site`'s active batch, or
    /// completes the batch when nothing is left.
    fn advance_batch(&mut self, site: usize) {
        loop {
            let batch = self.servers[site]
                .active
                .as_mut()
                .expect("advance_batch requires an active batch");
            debug_assert!(batch.current.is_none());
            let Some(file) = batch.to_fetch.pop_front() else {
                self.finish_batch(site);
                return;
            };
            let w = batch.worker;
            // The file may have arrived meanwhile (replication push).
            if self.stores[site].contains(file) {
                self.stores[site].pin(file);
                self.workers[w]
                    .current
                    .as_mut()
                    .expect("active batch worker is running")
                    .pinned
                    .push(file);
                continue;
            }
            let route = Arc::clone(&self.site_routes[site]);
            let bytes = self.config.workload.file_size_bytes;
            let fid = self
                .net
                .start_flow(self.now(), &route.links, bytes, route.latency_s);
            self.flows_started += 1;
            self.flow_purpose.insert(fid, FlowPurpose::Batch { site });
            self.servers[site]
                .active
                .as_mut()
                .expect("still active")
                .current = Some((file, fid));
            self.resync_net();
            if self.xfer.is_some() {
                // Fresh file, fresh attempt budget. The deadline is armed
                // *after* the flow starts so the fair-share estimate sees
                // the flow's own claim on its route.
                {
                    let slot = &mut self.xfer.as_mut().expect("checked").slots[site];
                    slot.attempts = 0;
                    slot.source = None;
                    slot.pending_file = None;
                }
                self.arm_transfer_timeout(site, bytes, &route.links, route.latency_s);
            }
            return;
        }
    }

    /// All files of the active batch are pinned locally: account transfer
    /// time, bump `r_i`, start the computation, and free the server.
    fn finish_batch(&mut self, site: usize) {
        let batch = self.servers[site].active.take().expect("active batch");
        let w = batch.worker;
        self.telemetry
            .span_end(Track::worker(w), "staging", self.now().as_secs());
        let transfer_time = (self.now() - batch.service_start).as_secs();
        self.per_site[site].transfer_time_s += transfer_time;
        self.per_site[site].tasks_started += 1;

        let task = self.workers[w]
            .current
            .as_ref()
            .expect("worker owns the batch")
            .task;
        let files: Vec<FileId> = self.config.workload.task(task).files().to_vec();
        for &f in &files {
            self.stores[site].record_task_reference(f);
            self.scheduler.on_task_reference(SiteId(site as u32), f);
        }
        self.maybe_replicate(&files, site);

        // Checkpoint restore: a re-executed task resumes from its latest
        // surviving image instead of recomputing from scratch. A remote
        // image must first cross the network; compute starts on arrival.
        if self.try_restore(w, site) {
            self.maybe_start_service(site);
            return;
        }
        self.begin_compute_segment(w);

        // The server moves on to the next queued request.
        self.maybe_start_service(site);
    }

    /// Loads `w`'s task's latest checkpoint image into the execution, if
    /// one survives. Returns `true` when a cross-site image fetch was
    /// started (the worker is [`WorkerState::Restoring`] until it lands);
    /// a local image restores for free and compute can begin immediately.
    fn try_restore(&mut self, w: usize, site: usize) -> bool {
        let Some(ckpt) = self.checkpointing.as_mut() else {
            return false;
        };
        let task = self.workers[w]
            .current
            .as_ref()
            .expect("restoring worker is running")
            .task;
        let Some(img_site) = ckpt.tracker.site_of(task) else {
            return false;
        };
        let image = ckpt.vaults[img_site]
            .get(task)
            .expect("tracker and vaults agree");
        let current = self.workers[w].current.as_mut().expect("running");
        current.progress_flops = image.flops_done;
        current.progress_s = image.invested_s;
        current.durable_flops = image.flops_done;
        current.durable_s = image.invested_s;
        if img_site == site {
            // Intra-site reads are free in the paper's model; the rescue
            // takes effect right now.
            ckpt.restores += 1;
            ckpt.work_saved_s += image.invested_s;
            return false;
        }
        // The image travels source site → backbone → destination site
        // (all inter-site traffic rides the file-server backbone in this
        // model). Shared links are crossed once.
        let src = Arc::clone(&self.site_routes[img_site]);
        let dst = Arc::clone(&self.site_routes[site]);
        let mut links = Vec::with_capacity(src.links.len() + dst.links.len());
        links.extend_from_slice(&src.links);
        for &l in &dst.links {
            if !links.contains(&l) {
                links.push(l);
            }
        }
        let size = ckpt.size_bytes;
        let fid = self
            .net
            .start_flow(self.now(), &links, size, src.latency_s + dst.latency_s);
        self.flows_started += 1;
        self.flow_purpose.insert(
            fid,
            FlowPurpose::Restore {
                worker: w,
                from_site: img_site,
            },
        );
        let started = self.now();
        let current = self.workers[w].current.as_mut().expect("running");
        current.ckpt_flow = Some(fid);
        current.ckpt_flow_started = Some(started);
        let task_id = current.task.index() as u64;
        self.workers[w].state = WorkerState::Restoring;
        self.telemetry
            .span_begin_for_task(Track::worker(w), "restore", started.as_secs(), task_id);
        self.resync_net();
        true
    }

    /// Starts (or resumes) computing `w`'s task: schedules either the
    /// final [`Event::ComputeDone`] or, when checkpointing would fire
    /// first, the next [`Event::CheckpointDue`] segment boundary.
    fn begin_compute_segment(&mut self, w: usize) {
        let site = self.workers[w].id.site.index();
        let speed = self.workers[w].speed_flops;
        let generation = self.workers[w].generation;
        let task = self.workers[w]
            .current
            .as_ref()
            .expect("computing worker is running")
            .task;
        let progress = self.workers[w]
            .current
            .as_ref()
            .expect("running")
            .progress_flops;
        let flops = self.config.workload.task(task).flops;
        let remaining_s = (flops - progress).max(0.0) / speed;
        let interval = self.checkpointing.as_ref().map(|c| c.interval_s[site]);
        let handle = match interval {
            Some(t) if remaining_s > t => self.schedule.schedule_in(
                SimDuration::from_secs(t),
                Event::CheckpointDue {
                    worker: w,
                    generation,
                },
            ),
            _ => self.schedule.schedule_in(
                SimDuration::from_secs(remaining_s),
                Event::ComputeDone {
                    worker: w,
                    task,
                    generation,
                },
            ),
        };
        let started = self.now();
        let current = self.workers[w].current.as_mut().expect("running");
        current.compute_handle = Some(handle);
        current.compute_started = Some(started);
        self.workers[w].state = WorkerState::Computing;
        self.telemetry.span_begin_for_task(
            Track::worker(w),
            "compute",
            started.as_secs(),
            task.index() as u64,
        );
    }

    /// A compute segment ended: commit its progress and write a checkpoint
    /// image to the site's data server (skipped while the server is down —
    /// there is nowhere to write, so the worker keeps computing).
    fn handle_checkpoint_due(&mut self, w: usize, generation: u64) {
        if self.workers[w].generation != generation {
            // Stale event from an aborted execution; the handle should
            // have been cancelled, but be tolerant.
            return;
        }
        debug_assert_eq!(self.workers[w].state, WorkerState::Computing);
        let site = self.workers[w].id.site.index();
        let speed = self.workers[w].speed_flops;
        let now = self.now();
        let current = self.workers[w].current.as_mut().expect("computing");
        let started = current
            .compute_started
            .take()
            .expect("segment boundary implies a running segment");
        let seg_s = (now - started).as_secs();
        current.progress_flops += seg_s * speed;
        current.progress_s += seg_s;
        current.compute_handle = None;
        self.telemetry
            .span_end(Track::worker(w), "compute", now.as_secs());
        if self.servers[site].down {
            self.begin_compute_segment(w);
            return;
        }
        let ckpt = self
            .checkpointing
            .as_ref()
            .expect("checkpoint event implies checkpointing");
        let link = ckpt.access_link[site];
        let size = ckpt.size_bytes;
        let fid = self.net.start_flow(now, &[link], size, 0.0);
        self.flows_started += 1;
        self.flow_purpose
            .insert(fid, FlowPurpose::Checkpoint { worker: w });
        let current = self.workers[w].current.as_mut().expect("computing");
        current.ckpt_flow = Some(fid);
        current.ckpt_flow_started = Some(now);
        current.pending_image = Some((current.progress_flops, current.progress_s));
        let task_id = current.task.index() as u64;
        self.telemetry
            .span_begin_for_task(Track::worker(w), "checkpoint", now.as_secs(), task_id);
        self.resync_net();
    }

    // ----- network ------------------------------------------------------

    /// Re-arms the single outstanding flow-completion event after any
    /// change to the flow set.
    fn resync_net(&mut self) {
        if let Some(h) = self.net_handle.take() {
            self.schedule.cancel(h);
        }
        if let Some((t, fid)) = self.net.next_completion() {
            self.net_handle = Some(self.schedule.schedule_at(t, Event::FlowDone(fid)));
        }
    }

    fn handle_flow_done(&mut self, fid: FlowId) {
        self.net.finish_flow(self.now(), fid);
        self.net_handle = None;
        self.flows_completed += 1;
        let purpose = self
            .flow_purpose
            .remove(&fid)
            .expect("completed flow has a purpose");
        match purpose {
            FlowPurpose::Batch { site } => {
                let (file, flow) = self.servers[site]
                    .active
                    .as_mut()
                    .expect("flow belongs to an active batch")
                    .current
                    .take()
                    .expect("batch has an in-flight file");
                debug_assert_eq!(flow, fid);
                // Under the guard a resumed re-fetch is smaller than the
                // file — the slot tracks what this attempt carried.
                let bytes = self
                    .xfer
                    .as_ref()
                    .map_or(self.config.workload.file_size_bytes, |g| {
                        g.slots[site].remaining
                    });
                self.per_site[site].file_transfers += 1;
                self.per_site[site].bytes_transferred += bytes;
                if self.xfer.is_some() {
                    let t_s = self.now().as_secs();
                    let src = self.xfer.as_ref().expect("checked").slots[site].source;
                    self.disarm_transfer_guard(site);
                    let guard = self.xfer.as_mut().expect("checked");
                    let _ = guard.breakers[site].on_success(t_s);
                    if let Some(s) = src {
                        let _ = guard.breakers[s].on_success(t_s);
                    }
                }
                if self.stores[site].contains(file) {
                    // A replication push landed this very file while the
                    // batch fetch was in flight: the fetch still consumed
                    // bandwidth (accounted above), but the store and the
                    // scheduler's overlap views already know the file — a
                    // second `on_file_added` would double-count it and
                    // corrupt every cached counter. Just refresh recency.
                    let evicted = self.stores[site].insert(file);
                    debug_assert!(evicted.is_empty(), "touching evicts nothing");
                } else {
                    self.insert_file(site, file);
                }
                let w = self.servers[site].active.as_ref().expect("active").worker;
                self.stores[site].pin(file);
                self.workers[w]
                    .current
                    .as_mut()
                    .expect("active batch worker is running")
                    .pinned
                    .push(file);
                // When another fetch flow will certainly start at this very
                // instant, the resync here would arm a flow event that the
                // fetch's own resync immediately cancels — skip the dead
                // pair, so the finish(+start) burst costs one rate
                // recompute instead of two. That certainty holds in two
                // cases: the batch itself still has a missing file to
                // fetch, or the batch is done and the server's next
                // serviceable request (first queue entry with a live
                // generation) needs a file the store lacks — nothing
                // between here and `maybe_start_service` changes this
                // site's residency or any generation. Any other
                // continuation may end this event without touching the net
                // again, so the resync must stay.
                let fetch_starts_now = self.servers[site]
                    .active
                    .as_ref()
                    .expect("still active")
                    .to_fetch
                    .iter()
                    .any(|f| !self.stores[site].contains(*f));
                let next_request_fetches = !fetch_starts_now
                    && self.servers[site]
                        .queue
                        .iter()
                        .find(|r| self.workers[r.worker].generation == r.generation)
                        .is_some_and(|r| {
                            let task = self.workers[r.worker]
                                .current
                                .as_ref()
                                .expect("queued worker has a current task")
                                .task;
                            self.config
                                .workload
                                .task(task)
                                .files()
                                .iter()
                                .any(|f| !self.stores[site].contains(*f))
                        });
                if !(fetch_starts_now || next_request_fetches) {
                    self.resync_net();
                }
                self.advance_batch(site);
            }
            FlowPurpose::Replication { site, file } => {
                let bytes = self.config.workload.file_size_bytes;
                self.replication_bytes += bytes;
                self.per_site[site].file_transfers += 1;
                self.per_site[site].bytes_transferred += bytes;
                if !self.stores[site].contains(file) {
                    self.insert_file(site, file);
                }
                self.resync_net();
            }
            FlowPurpose::Checkpoint { worker } => {
                let site = self.workers[worker].id.site.index();
                let now = self.now();
                let current = self.workers[worker]
                    .current
                    .as_mut()
                    .expect("checkpoint flow belongs to a running task");
                debug_assert_eq!(current.ckpt_flow, Some(fid));
                let started = current.ckpt_flow_started.take().expect("write in flight");
                let (flops, invested) = current.pending_image.take().expect("image pending");
                current.ckpt_flow = None;
                let task = current.task;
                let ckpt = self.checkpointing.as_mut().expect("checkpoint flow");
                ckpt.overhead_s += (now - started).as_secs();
                // Only-improve: a lagging storage-affinity replica's image
                // never clobbers a fresher one of the same task.
                let fresher = ckpt
                    .tracker
                    .site_of(task)
                    .and_then(|s| ckpt.vaults[s].get(task))
                    .is_none_or(|old| flops > old.flops_done);
                if fresher {
                    if let Some(old) = ckpt.tracker.record(task, site) {
                        ckpt.vaults[old].remove(task);
                    }
                    ckpt.vaults[site].put(
                        task,
                        CheckpointImage {
                            flops_done: flops,
                            invested_s: invested,
                            bytes: ckpt.size_bytes,
                        },
                    );
                    let current = self.workers[worker].current.as_mut().expect("running");
                    current.durable_flops = flops;
                    current.durable_s = invested;
                }
                self.telemetry
                    .span_end(Track::worker(worker), "checkpoint", now.as_secs());
                self.resync_net();
                self.begin_compute_segment(worker);
            }
            FlowPurpose::Restore { worker, .. } => {
                let now = self.now();
                let current = self.workers[worker]
                    .current
                    .as_mut()
                    .expect("restore flow belongs to a running task");
                debug_assert_eq!(current.ckpt_flow, Some(fid));
                let started = current.ckpt_flow_started.take().expect("restore in flight");
                current.ckpt_flow = None;
                let saved = current.progress_s;
                let ckpt = self.checkpointing.as_mut().expect("restore flow");
                ckpt.overhead_s += (now - started).as_secs();
                ckpt.restores += 1;
                ckpt.work_saved_s += saved;
                self.telemetry
                    .span_end(Track::worker(worker), "restore", now.as_secs());
                self.resync_net();
                self.begin_compute_segment(worker);
            }
        }
    }

    /// Inserts a file into a site store, forwarding eviction/addition
    /// notifications to the scheduler (and to the replication state —
    /// a lost copy may break the full coverage that exhausted a file).
    fn insert_file(&mut self, site: usize, file: FileId) {
        let evicted = self.stores[site].insert(file);
        for e in evicted {
            self.per_site[site].evictions += 1;
            self.scheduler
                .on_file_evicted(SiteId(site as u32), e, self.stores[site].ref_count(e));
            if let Some(rep) = self.replication.as_mut() {
                rep.on_copy_lost(e);
            }
        }
        self.scheduler
            .on_file_added(SiteId(site as u32), file, self.stores[site].ref_count(file));
    }

    // ----- replication extension ----------------------------------------

    fn maybe_replicate(&mut self, files: &[FileId], origin_site: usize) {
        if self.replication.is_none() || self.config.sites < 2 {
            return;
        }
        for &f in files {
            let eligible = self
                .replication
                .as_mut()
                .expect("checked above")
                .record_reference(f);
            if !eligible {
                continue;
            }
            // Pick a random site lacking the file (skipping servers that
            // are down — nothing can receive a push during an outage).
            let mut any_down = false;
            let mut candidates: Vec<usize> = Vec::new();
            for s in 0..self.config.sites {
                if s == origin_site {
                    continue;
                }
                if self.servers[s].down {
                    any_down = true;
                } else if !self.stores[s].contains(f) {
                    candidates.push(s);
                }
            }
            let Some(target) = self.pick_scored_push_target(&candidates) else {
                // Nothing can receive the file right now. If no server is
                // down, every possible target already holds the file —
                // coverage is complete, so stop re-scanning (and
                // re-drawing) on later references until a copy is lost
                // again (`on_copy_lost` re-arms the file on eviction or
                // outage). A down server, by contrast, comes back empty
                // after repair, so outage windows keep the file eligible.
                if !any_down {
                    self.replication
                        .as_mut()
                        .expect("checked")
                        .mark_exhausted(f);
                }
                continue;
            };
            self.replication.as_mut().expect("checked").mark_pushed(f);
            self.replication_pushes += 1;
            let route = Arc::clone(&self.site_routes[target]);
            let fid = self.net.start_flow(
                self.now(),
                &route.links,
                self.config.workload.file_size_bytes,
                route.latency_s,
            );
            self.flows_started += 1;
            self.flow_purpose.insert(
                fid,
                FlowPurpose::Replication {
                    site: target,
                    file: f,
                },
            );
            self.resync_net();
        }
    }

    /// Chooses a replication push target among `candidates`. Open-loop
    /// runs keep the legacy uniform draw byte for byte; with the
    /// churn-placement loop on, the draw is restricted to the
    /// highest-scoring candidates (availability × breaker factor) — the
    /// same *number* of RNG draws as the uniform pick (one iff the slate
    /// is non-empty), so enabling the loop never desynchronises the
    /// replication stream's draw count.
    fn pick_scored_push_target(&mut self, candidates: &[usize]) -> Option<usize> {
        let tied: Vec<usize> = match self.control.as_ref().filter(|p| p.placement_enabled()) {
            Some(plane) => {
                let scores = plane.site_scores();
                let best = candidates
                    .iter()
                    .map(|&s| scores[s])
                    .fold(f64::NEG_INFINITY, f64::max);
                candidates
                    .iter()
                    .copied()
                    .filter(|&s| scores[s] >= best - 1e-9)
                    .collect()
            }
            None => return pick_push_target(&mut self.replication_rng, candidates),
        };
        pick_push_target(&mut self.replication_rng, &tied)
    }

    // ----- completion & replica cancellation -----------------------------

    /// A replica execution at `site` ended (won, was cancelled, or died):
    /// its site-budget slot is free again, so hand it to one parked worker
    /// of that site. No-op for unthrottled runs — their wake-ups stay on
    /// the legacy everyone-repolls path.
    fn on_replica_slot_freed(&mut self, site: usize) {
        if self.throttled {
            self.wake_one_parked(site);
        }
    }

    fn handle_compute_done(&mut self, w: usize, task: TaskId, generation: u64) {
        if self.workers[w].generation != generation {
            // Stale event from an aborted execution; the handle should have
            // been cancelled, but be tolerant.
            return;
        }
        let site = self.workers[w].id.site.index();
        let current = self.workers[w].current.take().expect("computing worker");
        debug_assert_eq!(current.task, task);
        let t = self.now().as_secs();
        self.telemetry.span_end(Track::worker(w), "compute", t);
        self.telemetry
            .instant_for_task(Track::worker(w), "complete", t, task.index() as u64);
        let was_replica = current.is_replica;
        for f in current.pinned {
            self.stores[site].unpin(f);
        }
        self.workers[w].state = WorkerState::Idle;
        self.tasks_completed += 1;
        if was_replica {
            self.replicas_completed += 1;
        }
        self.last_completion = self.now();
        // A completion is the success signal a half-open breaker waits
        // for; closing it re-opens the site to dispatch.
        let breaker_closed = self
            .control
            .as_mut()
            .is_some_and(|plane| plane.on_site_success(site, t));
        if breaker_closed {
            self.control_breaker_closes.incr();
            self.wake_site_parked(site);
        }

        // A finished task's image is dead weight; drop it (not a loss).
        if let Some(ckpt) = self.checkpointing.as_mut() {
            if let Some(s) = ckpt.tracker.site_of(task) {
                ckpt.vaults[s].remove(task);
                ckpt.tracker.forget(task);
            }
        }

        let outcome = self.scheduler.on_task_complete(self.workers[w].id, task);
        for victim in outcome.cancel_replicas {
            self.abort_execution(victim, task);
        }
        self.schedule.schedule_now(Event::WorkerIdle(w));
        if self.throttled {
            // Targeted wake-ups only: the winner's own slot (if it was a
            // replica) frees here; the cancelled losers freed theirs in
            // `abort_execution`. Nothing else about a completion makes a
            // parked worker eligible, so the legacy everyone-repolls pass
            // (which would re-create the storm at 10⁵ parked workers) is
            // skipped.
            if was_replica {
                self.on_replica_slot_freed(site);
            }
        } else {
            self.wake_parked();
        }
    }

    /// Tears down worker `w`'s execution in progress (queued request,
    /// active batch with its in-flight transfer, or running computation):
    /// detaches it from the data server and network, accounts wasted
    /// compute, and unpins its files. Returns the task it was executing
    /// and whether the execution had been launched as a replica.
    ///
    /// The caller decides what the worker becomes (idle again for replica
    /// cancels, down for crashes) and how the scheduler hears about it.
    fn teardown_execution(&mut self, w: usize) -> Option<(TaskId, bool)> {
        let site = self.workers[w].id.site.index();
        let state = self.workers[w].state;
        let current = self.workers[w].current.take()?;
        // Close the lifecycle span the execution died in (the match below
        // panics for states with no execution, so "" never reaches the
        // tracer).
        let open_phase = match state {
            WorkerState::WaitingData => {
                if self.servers[site]
                    .active
                    .as_ref()
                    .is_some_and(|b| b.worker == w)
                {
                    "staging"
                } else {
                    "queued"
                }
            }
            WorkerState::Restoring => "restore",
            WorkerState::Computing if current.ckpt_flow.is_some() => "checkpoint",
            WorkerState::Computing => "compute",
            _ => "",
        };
        if !open_phase.is_empty() {
            let t = self.now().as_secs();
            self.telemetry.span_end(Track::worker(w), open_phase, t);
            self.telemetry.instant_for_task(
                Track::worker(w),
                "aborted",
                t,
                current.task.index() as u64,
            );
        }
        match state {
            WorkerState::WaitingData => {
                // Either still queued at the data server (left in place —
                // the generation bump below marks the entry stale), or the
                // active batch.
                let is_active = self.servers[site]
                    .active
                    .as_ref()
                    .is_some_and(|b| b.worker == w);
                if is_active {
                    let batch = self.servers[site]
                        .active
                        .take()
                        .expect("checked active above");
                    if let Some((_file, fid)) = batch.current {
                        self.flow_purpose.remove(&fid);
                        // Guard-aware byte base: a resumed re-fetch
                        // carries fewer bytes than the full file.
                        let attempt_size = self
                            .xfer
                            .as_ref()
                            .map_or(self.config.workload.file_size_bytes, |g| {
                                g.slots[site].remaining
                            });
                        if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                            self.flows_aborted += 1;
                            self.cancelled_bytes += left;
                            let delivered = attempt_size - left;
                            self.per_site[site].bytes_transferred += delivered.max(0.0);
                        }
                        self.resync_net();
                    }
                    // Batches awaiting a retry have no flow in flight but
                    // still hold an armed backoff — stand the guard down
                    // either way.
                    self.disarm_transfer_guard(site);
                    // Account the aborted service as transfer time spent.
                    self.per_site[site].transfer_time_s +=
                        (self.now() - batch.service_start).as_secs();
                    self.maybe_start_service(site);
                }
            }
            WorkerState::Restoring => {
                // Cancel the in-flight image fetch; the image itself
                // survives at its source for the next attempt. The aborted
                // transfer still counts as checkpoint overhead.
                if let Some(fid) = current.ckpt_flow {
                    self.flow_purpose.remove(&fid);
                    if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                        self.flows_aborted += 1;
                        self.cancelled_bytes += left;
                    }
                    self.resync_net();
                    self.account_aborted_ckpt_stall(current.ckpt_flow_started);
                }
            }
            WorkerState::Computing => {
                if let Some(h) = current.compute_handle {
                    self.schedule.cancel(h);
                }
                // Crash mid-image-write: the write dies with the worker,
                // but the stall it caused was still paid.
                if let Some(fid) = current.ckpt_flow {
                    self.flow_purpose.remove(&fid);
                    if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                        self.flows_aborted += 1;
                        self.cancelled_bytes += left;
                    }
                    self.resync_net();
                    self.account_aborted_ckpt_stall(current.ckpt_flow_started);
                }
                // Committed-but-undurable segments are lost along with the
                // in-flight segment; checkpointed work is not.
                self.wasted_compute_s += current.progress_s - current.durable_s;
                if let Some(started) = current.compute_started {
                    self.wasted_compute_s += (self.now() - started).as_secs();
                }
            }
            other => panic!("teardown_execution on worker in state {other:?}"),
        }
        for f in current.pinned {
            self.stores[site].unpin(f);
        }
        Some((current.task, current.is_replica))
    }

    /// Adds the elapsed stall of an aborted image write or restore fetch
    /// to the checkpoint overhead (the time was spent even though the
    /// image never landed).
    fn account_aborted_ckpt_stall(&mut self, started: Option<SimTime>) {
        if let Some(started) = started {
            let stalled = (self.now() - started).as_secs();
            if let Some(ckpt) = self.checkpointing.as_mut() {
                ckpt.overhead_s += stalled;
            }
        }
    }

    /// Aborts `task`'s execution at `victim` (queued, transferring or
    /// computing) and returns the worker to the idle pool.
    fn abort_execution(&mut self, victim: WorkerId, task: TaskId) {
        let w = victim.flat_index(self.config.workers_per_site);
        debug_assert_eq!(self.workers[w].id, victim, "flat index mismatch");
        let (torn, was_replica) = self
            .teardown_execution(w)
            .expect("cancel target is executing");
        assert_eq!(torn, task, "cancel target runs a different task");
        // A losing *primary* (its replica won the race) is not a cancelled
        // replica flow — keep the speculative-waste accounting honest.
        if was_replica {
            self.replicas_cancelled += 1;
        } else {
            self.primaries_cancelled += 1;
        }
        self.workers[w].generation += 1;
        self.workers[w].state = WorkerState::Idle;
        self.scheduler.on_replica_aborted(victim, task);
        self.schedule.schedule_now(Event::WorkerIdle(w));
        if was_replica {
            self.on_replica_slot_freed(victim.site.index());
        }
    }

    // ----- fault injection ------------------------------------------------

    /// Schedules the first stochastic fault of every entity plus every
    /// scripted trace event.
    fn arm_faults(&mut self) {
        if !self.faults_active {
            return;
        }
        for w in 0..self.workers.len() {
            if let Some(tl) = self.worker_timelines[w].as_mut() {
                let d = tl.time_to_failure();
                self.schedule.schedule_in(d, Event::WorkerCrash(w));
            }
        }
        for s in 0..self.config.sites {
            if let Some(tl) = self.server_timelines[s].as_mut() {
                let d = tl.time_to_failure();
                self.schedule.schedule_in(d, Event::ServerFail(s));
            }
        }
        if let Some(b) = self.burst.as_mut() {
            let gap = b.next_gap();
            self.schedule.schedule_in(gap, Event::BurstStrike);
        }
        // A degrade factor turns the stochastic link process soft; hard
        // outages otherwise. Scripted link/partition events are always
        // hard — a partitioned site is unreachable, not slow.
        let soft = self
            .config
            .faults
            .as_ref()
            .is_some_and(|f| f.link_degrade_factor.is_some());
        for l in 0..self.link_timelines.len() {
            if let Some(tl) = self.link_timelines[l].as_mut() {
                let d = tl.time_to_failure();
                self.schedule.schedule_in(
                    d,
                    Event::LinkFail {
                        link: l,
                        hard: !soft,
                    },
                );
            }
        }
        let trace = self.config.faults.as_ref().and_then(|f| f.trace.clone());
        if let Some(trace) = trace {
            let wps = self.config.workers_per_site;
            for e in &trace.events {
                let at = SimTime::from_secs(e.at_s);
                let event = match e.kind {
                    FaultKind::WorkerCrash { site, worker } => {
                        Event::WorkerCrash(flat_worker(site, worker, wps))
                    }
                    FaultKind::WorkerRecover { site, worker } => {
                        Event::WorkerRecover(flat_worker(site, worker, wps))
                    }
                    FaultKind::ServerFail { site } => Event::ServerFail(site),
                    FaultKind::ServerRecover { site } => Event::ServerRecover(site),
                    FaultKind::LinkDown { link } => Event::LinkFail { link, hard: true },
                    FaultKind::LinkUp { link } => Event::LinkRecover { link },
                    // A site partition severs the site's access link — the
                    // one hop every route into the site crosses.
                    FaultKind::Partition { site } => Event::LinkFail {
                        link: self.access_link_of(site),
                        hard: true,
                    },
                    FaultKind::PartitionHeal { site } => Event::LinkRecover {
                        link: self.access_link_of(site),
                    },
                };
                self.schedule.schedule_at(at, event);
            }
        }
    }

    /// The site's access link: the last hop of its route to the file
    /// server, crossed by every flow into or out of the site.
    fn access_link_of(&self, site: usize) -> usize {
        self.site_routes[site]
            .links
            .last()
            .expect("site routes cross at least one link")
            .index()
    }

    /// A link fails (hard outage or degraded-bandwidth window). Flows
    /// crossing a hard-down link stall at rate zero — the transfer guard,
    /// when armed, is what turns the stall into a retry.
    fn handle_link_fail(&mut self, link: usize, hard: bool) {
        if self.scheduler.unfinished() == 0 {
            return;
        }
        // Already impaired (scripted + stochastic overlap): ignore; the
        // stochastic process re-arms from the recovery, like worker
        // crashes.
        if self.link_window[link].is_some() {
            return;
        }
        let now = self.now();
        let mode = if hard {
            self.net.set_link_down(now, EdgeId(link as u32));
            LinkFaultMode::Hard
        } else {
            let factor = self
                .config
                .faults
                .as_ref()
                .and_then(|f| f.link_degrade_factor)
                .expect("soft link fault implies a degrade factor");
            self.net
                .set_link_capacity_factor(now, EdgeId(link as u32), factor);
            LinkFaultMode::Degraded
        };
        self.link_window[link] = Some((mode, now));
        self.link_outages += 1;
        self.link_outage_count.incr();
        self.resync_net();
        if let Some(tl) = self.link_timelines.get_mut(link).and_then(Option::as_mut) {
            let d = tl.time_to_repair();
            self.schedule.schedule_in(d, Event::LinkRecover { link });
        }
    }

    /// The link's repair completes: restore its capacity and account the
    /// outage window (clipped to the makespan like worker downtime).
    fn handle_link_recover(&mut self, link: usize) {
        let Some((mode, since)) = self.link_window.get_mut(link).and_then(Option::take) else {
            return;
        };
        let now = self.now();
        match mode {
            LinkFaultMode::Hard => self.net.set_link_up(now, EdgeId(link as u32)),
            LinkFaultMode::Degraded => {
                self.net
                    .set_link_capacity_factor(now, EdgeId(link as u32), 1.0);
            }
        }
        let end = self.downtime_end().max(since);
        self.link_downtime_s += (end - since).as_secs();
        self.resync_net();
        if self.scheduler.unfinished() == 0 {
            return;
        }
        if let Some(tl) = self.link_timelines.get_mut(link).and_then(Option::as_mut) {
            let d = tl.time_to_failure();
            let hard = self
                .config
                .faults
                .as_ref()
                .is_none_or(|f| f.link_degrade_factor.is_none());
            self.schedule.schedule_in(d, Event::LinkFail { link, hard });
        }
    }

    // ----- transfer guard -------------------------------------------------

    /// The replica-to-replica transfer route: source site → backbone →
    /// destination site (shared links crossed once), plus summed latency —
    /// the same union the checkpoint restore path builds.
    fn union_route(&self, from: usize, to: usize) -> (Vec<EdgeId>, f64) {
        let src = &self.site_routes[from];
        let dst = &self.site_routes[to];
        let mut links = Vec::with_capacity(src.links.len() + dst.links.len());
        links.extend_from_slice(&src.links);
        for &l in &dst.links {
            if !links.contains(&l) {
                links.push(l);
            }
        }
        (links, src.latency_s + dst.latency_s)
    }

    /// Arms the deadline for `site`'s just-started batch fetch: the
    /// timeout multiple × the transfer's expected duration at the current
    /// fair share. The estimate lower-bounds the true max–min rate, so
    /// `remaining / estimate` *upper*-bounds the healthy transfer time —
    /// a flow progressing at its fair share never times out.
    fn arm_transfer_timeout(
        &mut self,
        site: usize,
        remaining: f64,
        links: &[EdgeId],
        latency_s: f64,
    ) {
        let est = self.net.fair_share_estimate(links);
        let Some(guard) = self.xfer.as_mut() else {
            return;
        };
        let expected_s = latency_s
            + if est.is_finite() {
                remaining / est
            } else {
                0.0
            };
        let timeout_s = guard.timeout_mult * expected_s;
        let slot = &mut guard.slots[site];
        slot.epoch += 1;
        slot.remaining = remaining;
        let epoch = slot.epoch;
        let handle = self.schedule.schedule_in(
            SimDuration::from_secs(timeout_s),
            Event::TransferTimeout { site, epoch },
        );
        slot.timeout = Some(handle);
    }

    /// Stands down `site`'s guard slot: bumps the epoch (invalidating any
    /// in-flight timeout/retry event) and cancels the armed handles. Runs
    /// whenever the guarded fetch ends for another reason — completion,
    /// batch dissolution, execution teardown.
    fn disarm_transfer_guard(&mut self, site: usize) {
        let Some(guard) = self.xfer.as_mut() else {
            return;
        };
        let slot = &mut guard.slots[site];
        slot.epoch += 1;
        slot.pending_file = None;
        slot.source = None;
        let timeout = slot.timeout.take();
        let retry = slot.retry.take();
        if let Some(h) = timeout {
            self.schedule.cancel(h);
        }
        if let Some(h) = retry {
            self.schedule.cancel(h);
        }
    }

    /// `site`'s in-flight batch fetch blew its deadline: cancel the flow,
    /// feed the route breakers, and either schedule a backoff-delayed
    /// retry or — once the attempt budget is spent — requeue the task.
    fn handle_transfer_timeout(&mut self, site: usize, epoch: u64) {
        if self
            .xfer
            .as_ref()
            .is_none_or(|g| g.slots[site].epoch != epoch)
        {
            // Stale event from a disarmed guard; the handle should have
            // been cancelled, but be tolerant.
            return;
        }
        let Some(batch) = self.servers[site].active.as_mut() else {
            return;
        };
        let w = batch.worker;
        let Some((file, fid)) = batch.current.take() else {
            return;
        };
        let now = self.now();
        self.flow_purpose.remove(&fid);
        let attempt_size = self.xfer.as_ref().expect("guarded").slots[site].remaining;
        let left = self
            .net
            .cancel_flow(now, fid)
            .expect("guarded fetch is an active flow");
        // What did move stays on the books; whether it is kept (resume)
        // or re-sent (naive restart) is decided below.
        let delivered = (attempt_size - left).max(0.0);
        self.per_site[site].bytes_transferred += delivered;
        self.resync_net();
        self.xfer_timeouts += 1;
        self.xfer_timeout_count.incr();
        let t_s = now.as_secs();
        let full_size = self.config.workload.file_size_bytes;
        let guard = self.xfer.as_mut().expect("guarded");
        let src = guard.slots[site].source.take();
        // The destination's route breaker always hears the failure; the
        // failover source's too when one was in play.
        let _ = guard.breakers[site].on_failure(t_s);
        if let Some(s) = src {
            let _ = guard.breakers[s].on_failure(t_s);
        }
        let slot = &mut guard.slots[site];
        slot.epoch += 1;
        slot.timeout = None;
        slot.attempts += 1;
        if slot.attempts > guard.max_retries {
            self.flows_requeued += 1;
            self.requeue_after_exhausted_retries(site, w);
            return;
        }
        self.flows_retrying += 1;
        if guard.naive {
            self.xfer_bytes_retransmitted += delivered;
            slot.remaining = full_size;
        } else {
            self.xfer_bytes_resumed += delivered;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            self.xfer_resumed_bytes.record(delivered as u64);
            slot.remaining = left;
        }
        slot.pending_file = Some(file);
        // Seeded exponential backoff with jitter in [0.5, 1.5) of the
        // nominal delay — retries across sites decorrelate instead of
        // thundering back in lockstep.
        let nominal = guard.backoff_s * 2f64.powi(i32::try_from(slot.attempts - 1).unwrap_or(30));
        let backoff = nominal * (0.5 + guard.rng.gen::<f64>());
        let retry_epoch = slot.epoch;
        let handle = self.schedule.schedule_in(
            SimDuration::from_secs(backoff),
            Event::TransferRetry {
                site,
                epoch: retry_epoch,
            },
        );
        slot.retry = Some(handle);
    }

    /// The retry budget for `site`'s fetch is spent: dissolve the batch
    /// and hand the task back to the scheduler — it may land anywhere,
    /// including a site whose route still works. The worker itself is
    /// healthy (the network path failed, not the machine), so it goes
    /// straight back to the idle pool.
    fn requeue_after_exhausted_retries(&mut self, site: usize, w: usize) {
        let batch = self.servers[site]
            .active
            .take()
            .expect("exhausted retries imply an active batch");
        debug_assert_eq!(batch.worker, w);
        self.per_site[site].transfer_time_s += (self.now() - batch.service_start).as_secs();
        let current = self.workers[w]
            .current
            .take()
            .expect("active batch worker is running");
        let task = current.task;
        let was_replica = current.is_replica;
        let t = self.now().as_secs();
        self.telemetry.span_end(Track::worker(w), "staging", t);
        self.telemetry
            .instant_for_task(Track::worker(w), "requeued", t, task.index() as u64);
        for f in current.pinned {
            self.stores[site].unpin(f);
        }
        if was_replica {
            self.replicas_lost += 1;
        }
        let worker_id = self.workers[w].id;
        self.workers[w].generation += 1;
        self.workers[w].state = WorkerState::Idle;
        // Lost-then-recovered in one instant: the scheduler orphans the
        // task (requeueing it unless another replica still runs) and
        // immediately gets the worker back.
        let orphaned = self.scheduler.on_worker_lost(worker_id, Some(task));
        self.scheduler.on_worker_recovered(worker_id);
        if orphaned {
            self.tasks_lost += 1;
            self.lost_ever[task.index()] = true;
            self.wake_parked();
        } else if self.throttled && was_replica {
            self.wake_parked();
        }
        self.schedule.schedule_now(Event::WorkerIdle(w));
        self.maybe_start_service(site);
    }

    /// The backoff elapsed: re-issue `site`'s pending fetch — from the
    /// best-scored replica holder when failover finds one, else from the
    /// origin file server (even through a still-down route: the flow
    /// stalls and the next timeout fires, burning another attempt).
    fn handle_transfer_retry(&mut self, site: usize, epoch: u64) {
        if self
            .xfer
            .as_ref()
            .is_none_or(|g| g.slots[site].epoch != epoch)
        {
            return;
        }
        let Some(batch) = self.servers[site].active.as_ref() else {
            return;
        };
        debug_assert!(batch.current.is_none(), "retry implies no flow in flight");
        let now = self.now();
        let t_s = now.as_secs();
        let (file, remaining, naive) = {
            let guard = self.xfer.as_mut().expect("checked");
            // Open breakers may have cooled into half-open by now.
            for b in &mut guard.breakers {
                let _ = b.tick(t_s);
            }
            let slot = &mut guard.slots[site];
            slot.retry = None;
            let Some(file) = slot.pending_file.take() else {
                return;
            };
            (file, slot.remaining, guard.naive)
        };
        // Failover: the highest-scored other site that holds the file,
        // is up, and has a working route (ties → lowest index; no RNG —
        // the choice must not perturb any other random stream).
        let mut source: Option<usize> = None;
        if !naive {
            let guard = self.xfer.as_ref().expect("checked");
            let mut best = 0.0_f64;
            for s in 0..self.config.sites {
                if s == site || self.servers[s].down || !self.stores[s].contains(file) {
                    continue;
                }
                let (links, _) = self.union_route(s, site);
                if !self.net.route_up(&links) {
                    continue;
                }
                let score = guard.breakers[s].score_factor();
                if score > best {
                    best = score;
                    source = Some(s);
                }
            }
        }
        let (links, latency_s) = match source {
            Some(src) => {
                self.xfer_failovers += 1;
                self.xfer_failover_count.incr();
                self.union_route(src, site)
            }
            None => {
                let route = &self.site_routes[site];
                (route.links.clone(), route.latency_s)
            }
        };
        let fid = self.net.start_flow(now, &links, remaining, latency_s);
        self.flows_started += 1;
        self.flow_purpose.insert(fid, FlowPurpose::Batch { site });
        self.servers[site]
            .active
            .as_mut()
            .expect("still active")
            .current = Some((file, fid));
        self.xfer.as_mut().expect("checked").slots[site].source = source;
        self.xfer_retries += 1;
        self.xfer_retry_count.incr();
        self.resync_net();
        self.arm_transfer_timeout(site, remaining, &links, latency_s);
    }

    /// A correlated burst strikes: one uniformly-drawn site loses up to
    /// `burst_size` live workers at once (lowest worker index first —
    /// deterministic, and the draws happen in a fixed order so the burst
    /// stream never depends on grid state). Victims repair through their
    /// own MTTR timelines like any independent crash.
    fn handle_burst_strike(&mut self) {
        // Post-completion the process stops re-arming, draining like the
        // per-entity churn processes.
        if self.scheduler.unfinished() == 0 {
            return;
        }
        let b = self.burst.as_mut().expect("burst event implies the state");
        let site = b.pick_site(self.config.sites);
        let gap = b.next_gap();
        let size = b.size as usize;
        self.schedule.schedule_in(gap, Event::BurstStrike);
        let base = site * self.config.workers_per_site;
        let mut struck = 0usize;
        for w in base..base + self.config.workers_per_site {
            if struck >= size {
                break;
            }
            if matches!(self.workers[w].state, WorkerState::Down | WorkerState::Done) {
                continue;
            }
            self.handle_worker_crash(w);
            struck += 1;
        }
    }

    fn handle_worker_crash(&mut self, w: usize) {
        // Once the job is done the churn processes stop re-arming and
        // pending fault events drain without effect.
        if self.scheduler.unfinished() == 0 {
            return;
        }
        // Already down (scripted + stochastic overlap): ignore.
        if self.workers[w].state == WorkerState::Down {
            return;
        }
        let worker_id = self.workers[w].id;
        let torn = self.teardown_execution(w);
        let lost = torn.map(|(task, _)| task);
        let was_replica = torn.is_some_and(|(_, is_replica)| is_replica);
        if was_replica {
            self.replicas_lost += 1;
        }
        self.workers[w].generation += 1;
        self.workers[w].state = WorkerState::Down;
        self.workers[w].down_since = Some(self.now());
        self.worker_crashes += 1;
        self.telemetry
            .span_begin(Track::worker(w), "down", self.now().as_secs());
        // Feed the estimators: availability integral, failure
        // interarrival (the self-tuning Young/Daly's input) and the
        // site's circuit breaker.
        let site = worker_id.site.index();
        let t_s = self.now().as_secs();
        let tripped = self
            .control
            .as_mut()
            .is_some_and(|plane| plane.on_worker_crash(site, t_s));
        if self.control.is_some() {
            self.control_estimates.incr();
        }
        if tripped {
            self.control_breaker_opens.incr();
        }
        let orphaned = self.scheduler.on_worker_lost(worker_id, lost);
        if orphaned {
            let task = lost.expect("orphaned implies an in-flight task");
            self.tasks_lost += 1;
            self.lost_ever[task.index()] = true;
            // The requeued task may be picked up by parked workers.
            self.wake_parked();
        } else if self.throttled && was_replica {
            // The crash freed a replica slot (task cap and/or site budget)
            // without orphaning anything; crashes are rare enough that the
            // broad re-poll is the simple, safe hand-off.
            self.wake_parked();
        }
        if let Some(tl) = self.worker_timelines[w].as_mut() {
            let d = tl.time_to_repair();
            self.schedule.schedule_in(d, Event::WorkerRecover(w));
        }
    }

    fn handle_worker_recover(&mut self, w: usize) {
        if self.workers[w].state != WorkerState::Down {
            return;
        }
        let site = self.workers[w].id.site.index();
        if let Some(since) = self.workers[w].down_since.take() {
            let end = self.downtime_end().max(since);
            self.per_site[site].worker_downtime_s += (end - since).as_secs();
        }
        self.telemetry
            .span_end(Track::worker(w), "down", self.now().as_secs());
        self.workers[w].state = WorkerState::Idle;
        let t_s = self.now().as_secs();
        if let Some(plane) = self.control.as_mut() {
            plane.on_worker_recover(site, t_s);
            self.control_estimates.incr();
        }
        self.scheduler.on_worker_recovered(self.workers[w].id);
        if self.scheduler.unfinished() == 0 {
            return;
        }
        self.schedule.schedule_now(Event::WorkerIdle(w));
        if let Some(tl) = self.worker_timelines[w].as_mut() {
            let d = tl.time_to_failure();
            self.schedule.schedule_in(d, Event::WorkerCrash(w));
        }
    }

    fn handle_server_fail(&mut self, site: usize) {
        if self.scheduler.unfinished() == 0 {
            return;
        }
        if self.servers[site].down {
            return;
        }
        self.servers[site].down = true;
        self.servers[site].down_since = Some(self.now());
        self.server_outages += 1;
        self.telemetry
            .span_begin(Track::server(site), "outage", self.now().as_secs());
        // The active batch dissolves: its in-flight transfer is aborted
        // and the request goes back to the head of the queue, to be
        // re-served (re-fetching whatever the outage lost) after repair.
        // The worker keeps waiting; its task stays assigned.
        if let Some(batch) = self.servers[site].active.take() {
            let w = batch.worker;
            if let Some((_file, fid)) = batch.current {
                self.flow_purpose.remove(&fid);
                let attempt_size = self
                    .xfer
                    .as_ref()
                    .map_or(self.config.workload.file_size_bytes, |g| {
                        g.slots[site].remaining
                    });
                if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                    self.flows_aborted += 1;
                    self.cancelled_bytes += left;
                    let delivered = attempt_size - left;
                    self.per_site[site].bytes_transferred += delivered.max(0.0);
                }
                self.resync_net();
            }
            self.disarm_transfer_guard(site);
            self.per_site[site].transfer_time_s += (self.now() - batch.service_start).as_secs();
            let current = self.workers[w]
                .current
                .as_mut()
                .expect("active batch worker is running");
            for f in current.pinned.drain(..) {
                self.stores[site].unpin(f);
            }
            let enqueued_at = self.now();
            let generation = self.workers[w].generation;
            self.servers[site].queue.push_front(BatchRequest {
                worker: w,
                generation,
                enqueued_at,
            });
            // The dissolved batch's worker goes back to waiting in queue.
            let t = self.now().as_secs();
            let task_id = self.workers[w]
                .current
                .as_ref()
                .expect("active batch worker is running")
                .task
                .index() as u64;
            self.telemetry.span_end(Track::worker(w), "staging", t);
            self.telemetry
                .span_begin_for_task(Track::worker(w), "queued", t, task_id);
        }
        // Inbound replication pushes have no destination anymore.
        let mut inbound: Vec<FlowId> = self
            .flow_purpose
            .iter()
            .filter(|(_, p)| matches!(p, FlowPurpose::Replication { site: s, .. } if *s == site))
            .map(|(&fid, _)| fid)
            .collect();
        inbound.sort_unstable();
        for fid in inbound {
            self.flow_purpose.remove(&fid);
            if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                self.flows_aborted += 1;
                self.cancelled_bytes += left;
            }
        }
        self.resync_net();
        // Checkpointing: in-flight image writes to this server and image
        // fetches *from* it die with it; every image it held is lost.
        if self.checkpointing.is_some() {
            self.abort_ckpt_flows_for_failed_server(site);
            let ckpt = self.checkpointing.as_mut().expect("checked above");
            ckpt.vaults[site].fail();
            ckpt.tracker.drop_site(site);
            // Running executions whose durable image just vanished have
            // nothing to fall back on anymore: a later crash wastes
            // everything they have computed, not just the tail.
            let ckpt = self.checkpointing.as_ref().expect("checked above");
            for worker in &mut self.workers {
                let Some(current) = worker.current.as_mut() else {
                    continue;
                };
                if current.durable_s > 0.0 && ckpt.tracker.site_of(current.task).is_none() {
                    current.durable_flops = 0.0;
                    current.durable_s = 0.0;
                }
            }
        }
        // The outage loses every unpinned cached file.
        let lost = self.stores[site].fail();
        self.per_site[site].files_lost += lost.len() as u64;
        for f in lost {
            self.scheduler
                .on_file_evicted(SiteId(site as u32), f, self.stores[site].ref_count(f));
            if let Some(rep) = self.replication.as_mut() {
                rep.on_copy_lost(f);
            }
        }
        if let Some(tl) = self.server_timelines[site].as_mut() {
            let d = tl.time_to_repair();
            self.schedule.schedule_in(d, Event::ServerRecover(site));
        }
    }

    /// Aborts every checkpoint flow the failure of `site`'s data server
    /// invalidates: image writes by this site's workers (they drop the
    /// image and keep computing) and image fetches sourced from this
    /// server (the restoring worker loses its image and restarts from
    /// scratch — its input files are already pinned locally).
    fn abort_ckpt_flows_for_failed_server(&mut self, site: usize) {
        let mut writes: Vec<(FlowId, usize)> = Vec::new();
        let mut restores: Vec<(FlowId, usize)> = Vec::new();
        for (&fid, p) in &self.flow_purpose {
            match *p {
                FlowPurpose::Checkpoint { worker }
                    if self.workers[worker].id.site.index() == site =>
                {
                    writes.push((fid, worker));
                }
                FlowPurpose::Restore { worker, from_site } if from_site == site => {
                    restores.push((fid, worker));
                }
                _ => {}
            }
        }
        writes.sort_unstable();
        restores.sort_unstable();
        for &(fid, w) in writes.iter().chain(&restores) {
            self.flow_purpose.remove(&fid);
            if let Some(left) = self.net.cancel_flow(self.now(), fid) {
                self.flows_aborted += 1;
                self.cancelled_bytes += left;
            }
            let current = self.workers[w].current.as_mut().expect("flow owner runs");
            current.ckpt_flow = None;
            let stall_started = current.ckpt_flow_started.take();
            current.pending_image = None;
            self.account_aborted_ckpt_stall(stall_started);
        }
        self.resync_net();
        let t = self.now().as_secs();
        for &(_, w) in &writes {
            self.telemetry.span_end(Track::worker(w), "checkpoint", t);
            self.begin_compute_segment(w);
        }
        for &(_, w) in &restores {
            self.telemetry.span_end(Track::worker(w), "restore", t);
            let current = self.workers[w].current.as_mut().expect("restorer runs");
            current.progress_flops = 0.0;
            current.progress_s = 0.0;
            current.durable_flops = 0.0;
            current.durable_s = 0.0;
            self.begin_compute_segment(w);
        }
    }

    fn handle_server_recover(&mut self, site: usize) {
        if !self.servers[site].down {
            return;
        }
        self.servers[site].down = false;
        if let Some(since) = self.servers[site].down_since.take() {
            let end = self.downtime_end().max(since);
            self.per_site[site].server_downtime_s += (end - since).as_secs();
        }
        self.telemetry
            .span_end(Track::server(site), "outage", self.now().as_secs());
        self.maybe_start_service(site);
        if self.scheduler.unfinished() == 0 {
            return;
        }
        if let Some(tl) = self.server_timelines[site].as_mut() {
            let d = tl.time_to_failure();
            self.schedule.schedule_in(d, Event::ServerFail(site));
        }
    }

    // ----- reporting ------------------------------------------------------

    /// Where downtime accounting stops: availability is measured against
    /// the job's makespan, so once the last task has completed, repairs
    /// that drain later must not accrue further downtime.
    fn downtime_end(&self) -> SimTime {
        if self.scheduler.unfinished() == 0 {
            self.now().min(self.last_completion)
        } else {
            self.now()
        }
    }

    fn report(&self) -> MetricsReport {
        // Replica books must balance: every launched replica either won,
        // was cancelled by the winner, or died with its worker.
        debug_assert_eq!(
            self.replicas_launched,
            self.replicas_cancelled + self.replicas_completed + self.replicas_lost,
            "replica accounting out of balance"
        );
        let file_transfers: u64 = self.per_site.iter().map(|s| s.file_transfers).sum();
        let bytes: f64 = self.per_site.iter().map(|s| s.bytes_transferred).sum();
        let total_evictions: u64 = self.per_site.iter().map(|s| s.evictions).sum();
        let overflow: u64 = self.stores.iter().map(|s| s.stats().overflow_inserts).sum();
        let files_lost: u64 = self.per_site.iter().map(|s| s.files_lost).sum();
        // Entities still down at the end (scripted crash with no scripted
        // recovery) never saw a recover event; account their downtime up
        // to the makespan here.
        let mut per_site = self.per_site.clone();
        for w in &self.workers {
            if let Some(since) = w.down_since {
                let end = self.last_completion.max(since);
                per_site[w.id.site.index()].worker_downtime_s += (end - since).as_secs();
            }
        }
        for (site, server) in self.servers.iter().enumerate() {
            if let Some(since) = server.down_since {
                let end = self.last_completion.max(since);
                per_site[site].server_downtime_s += (end - since).as_secs();
            }
        }
        let (ckpt_written, ckpt_lost, restores, overhead_s, saved_s) = self
            .checkpointing
            .as_ref()
            .map_or((0, 0, 0, 0.0, 0.0), |c| {
                (
                    c.vaults.iter().map(ImageVault::written).sum(),
                    c.vaults.iter().map(ImageVault::lost).sum(),
                    c.restores,
                    c.overhead_s,
                    c.work_saved_s,
                )
            });
        // Links still impaired at the end (scripted outage with no
        // scripted recovery) never saw a recover event either.
        let mut link_downtime_s = self.link_downtime_s;
        for (_, since) in self.link_window.iter().flatten() {
            let end = self.last_completion.max(*since);
            link_downtime_s += (end - *since).as_secs();
        }
        // Flow conservation: every flow ever started either completed,
        // was aborted by a teardown, was cancelled into a retry/requeue
        // by the transfer guard, or is still stalled in the drained net
        // (a severed route with nothing left to wake it).
        debug_assert_eq!(
            self.flows_started,
            self.flows_completed
                + self.flows_aborted
                + self.flows_retrying
                + self.flows_requeued
                + self.net.active_flows() as u64,
            "flow conservation out of balance"
        );
        MetricsReport {
            config: self.config.summary(),
            makespan_minutes: self.last_completion.as_minutes(),
            file_transfers,
            bytes_transferred: bytes,
            cancelled_bytes: self.cancelled_bytes,
            tasks_completed: self.tasks_completed,
            replicas_launched: self.replicas_launched,
            replicas_cancelled: self.replicas_cancelled,
            replicas_completed: self.replicas_completed,
            primaries_cancelled: self.primaries_cancelled,
            replicas_lost: self.replicas_lost,
            per_site,
            replication_pushes: self.replication_pushes,
            replication_bytes: self.replication_bytes,
            events_dispatched: self.schedule.dispatched(),
            total_evictions,
            overflow_inserts: overflow,
            tasks_lost: self.tasks_lost,
            re_executions: self.re_executions,
            worker_crashes: self.worker_crashes,
            server_outages: self.server_outages,
            files_lost,
            wasted_compute_s: self.wasted_compute_s,
            checkpoints_written: ckpt_written,
            checkpoints_lost: ckpt_lost,
            checkpoint_restores: restores,
            checkpoint_overhead_s: overhead_s,
            work_saved_s: saved_s,
            link_outages: self.link_outages,
            link_downtime_s,
            xfer_timeouts: self.xfer_timeouts,
            xfer_retries: self.xfer_retries,
            xfer_failovers: self.xfer_failovers,
            xfer_bytes_resumed: self.xfer_bytes_resumed,
            xfer_bytes_retransmitted: self.xfer_bytes_retransmitted,
            flows_started: self.flows_started,
            flows_completed: self.flows_completed,
            flows_aborted: self.flows_aborted,
            flows_retrying: self.flows_retrying,
            flows_requeued: self.flows_requeued,
        }
    }
}

/// Chooses a replication push target uniformly among `candidates`,
/// consuming one RNG draw **iff** the slate is non-empty. An empty slate
/// must leave the replication stream untouched: drawing on it would let
/// transient store/outage states shift every later placement decision — a
/// determinism hazard across configurations.
fn pick_push_target<R: Rng + ?Sized>(rng: &mut R, candidates: &[usize]) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.gen_range(0..candidates.len())])
}

/// Flattens a (site, worker-in-site) pair to the engine's worker index.
///
/// # Panics
///
/// Panics if the worker index is out of the configured range (a fault
/// trace referencing a worker the run does not have).
fn flat_worker(site: usize, worker: usize, workers_per_site: usize) -> usize {
    assert!(
        worker < workers_per_site,
        "fault trace references worker {worker} at site {site} but the run has \
         {workers_per_site} workers per site"
    );
    site * workers_per_site + worker
}

/// Builds the checkpoint runtime state for a non-inert config: per-site
/// intervals (Young/Daly adapts to each site's access-link write cost) and
/// per-site image vaults.
///
/// # Panics
///
/// Panics if the policy is Young/Daly and the fault model has no worker
/// MTBF to derive the interval from.
fn build_ckpt_state(c: &CheckpointConfig, config: &SimConfig, topology: &Topology) -> CkptState {
    let mtbf = config.faults.as_ref().and_then(|f| f.worker_mtbf_s);
    let mut interval_s = Vec::with_capacity(config.sites);
    let mut access_link = Vec::with_capacity(config.sites);
    let mut write_costs = Vec::with_capacity(config.sites);
    for site in 0..config.sites {
        let route = topology.routes.site_to_file_server(site);
        let link = *route
            .links
            .last()
            .expect("site routes cross at least one link");
        let bandwidth = topology.graph.link(link).bandwidth_bps;
        let write_cost_s = c.size_bytes / bandwidth;
        interval_s.push(
            c.interval_s(mtbf, write_cost_s)
                .expect("non-inert checkpoint config has an interval"),
        );
        access_link.push(link);
        write_costs.push(write_cost_s);
    }
    CkptState {
        size_bytes: c.size_bytes,
        interval_s,
        access_link,
        vaults: vec![ImageVault::new(); config.sites],
        tracker: ImageTracker::new(),
        restores: 0,
        overhead_s: 0.0,
        work_saved_s: 0.0,
        write_cost_s: write_costs,
        adaptive: c.policy == CheckpointPolicy::YoungDalyAdaptive,
    }
}

/// Builds the scheduler for a strategy kind. `throttle` is the *effective*
/// replica throttle — the configured one, or the adaptive controller's
/// starting cap when the throttle loop runs with no configured bounds.
fn build_scheduler(config: &SimConfig, throttle: ReplicaThrottle) -> Box<dyn Scheduler> {
    let wl = config.workload.clone();
    match config.strategy {
        StrategyKind::StorageAffinity => Box::new(
            StorageAffinity::new(wl)
                .with_eval_mode(config.eval_mode)
                .with_throttle(throttle),
        ),
        StrategyKind::Workqueue => Box::new(Workqueue::new(wl)),
        StrategyKind::Sufferage => Box::new(Sufferage::new(wl).with_eval_mode(config.eval_mode)),
        kind => {
            let metric = kind
                .metric()
                .expect("worker-centric strategies have a metric");
            let n = config.choose_n_override.unwrap_or_else(|| kind.choose_n());
            Box::new(
                WorkerCentric::new(wl, metric, n, config.seed).with_eval_mode(config.eval_mode),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use gridsched_workload::coadd::CoaddConfig;
    use gridsched_workload::Workload;

    fn small_config(strategy: StrategyKind) -> SimConfig {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        SimConfig::paper(wl, strategy)
            .with_sites(3)
            .with_capacity(400)
            .with_seed(1)
    }

    #[test]
    fn completes_all_tasks_worker_centric() {
        for strategy in [
            StrategyKind::Overlap,
            StrategyKind::Rest,
            StrategyKind::Combined,
            StrategyKind::Rest2,
            StrategyKind::Combined2,
            StrategyKind::Workqueue,
        ] {
            let report = GridSim::new(small_config(strategy)).run();
            assert_eq!(report.tasks_completed, 200, "{strategy}");
            assert!(report.makespan_minutes > 0.0, "{strategy}");
            assert!(report.file_transfers > 0, "{strategy}");
            assert_eq!(report.replicas_launched, 0, "{strategy} never replicates");
        }
    }

    #[test]
    fn completes_all_tasks_storage_affinity() {
        let report = GridSim::new(small_config(StrategyKind::StorageAffinity)).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.makespan_minutes > 0.0);
        // Fault-free: every launched replica either won or was cancelled.
        assert_eq!(
            report.replicas_launched,
            report.replicas_cancelled + report.replicas_completed
        );
        assert_eq!(report.replicas_lost, 0);
    }

    #[test]
    fn throttled_storage_affinity_completes_with_fewer_replicas() {
        let uncapped = GridSim::new(small_config(StrategyKind::StorageAffinity)).run();
        let capped = GridSim::new(
            small_config(StrategyKind::StorageAffinity)
                .with_replica_cap(1)
                .with_site_replica_budget(2),
        )
        .run();
        assert_eq!(capped.tasks_completed, 200);
        assert!(
            capped.replicas_launched <= uncapped.replicas_launched,
            "throttle must not inflate the replica count: {} vs {}",
            capped.replicas_launched,
            uncapped.replicas_launched
        );
        assert_eq!(
            capped.replicas_launched,
            capped.replicas_cancelled + capped.replicas_completed
        );
        assert_eq!(capped.config.replica_throttle, "cap=1 site-budget=2");
        // Throttled runs are just as deterministic.
        let again = GridSim::new(
            small_config(StrategyKind::StorageAffinity)
                .with_replica_cap(1)
                .with_site_replica_budget(2),
        )
        .run();
        assert_eq!(capped, again);
    }

    #[test]
    fn throttled_churned_run_completes() {
        // Liveness under the throttle's targeted wake-ups: crashes orphan
        // tasks whose only route back is replication, and parked workers
        // must be woken to pick them up.
        let config = small_config(StrategyKind::StorageAffinity)
            .with_replica_cap(1)
            .with_site_replica_budget(1)
            .with_faults(gridsched_faults::FaultConfig::none().with_worker_faults(2_500.0, 400.0));
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert_eq!(
            report.replicas_launched,
            report.replicas_cancelled + report.replicas_completed + report.replicas_lost
        );
    }

    #[test]
    #[should_panic(expected = "only applies to storage-affinity")]
    fn throttle_with_worker_centric_strategy_panics() {
        let _ = GridSim::new(small_config(StrategyKind::Rest).with_replica_cap(1));
    }

    #[test]
    fn push_attempts_on_empty_slates_leave_rng_and_later_decisions_unchanged() {
        // Regression for the `maybe_replicate` determinism hazard: a push
        // attempt during a full-coverage or all-servers-down window must
        // not consume the placement RNG (so later pushes land exactly
        // where they would have), full coverage must exhaust the file
        // (no more O(S) re-scans while coverage holds, re-armed when a
        // copy is lost), and an outage window must only *defer* the push.
        use rand::rngs::StdRng;
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let config = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(3)
            .with_replication(crate::replication::ReplicationConfig {
                popularity_threshold: 1,
                max_replicas_per_file: 5,
            });
        let mut sim = GridSim::new(config);
        let probe = |rng: &StdRng| rng.clone().gen_range(0..1_000_000u64);
        let f = FileId(0);
        // Full coverage: every non-origin store already holds `f`.
        for s in 1..3 {
            let evicted = sim.stores[s].insert(f);
            assert!(evicted.is_empty());
        }
        let before = probe(&sim.replication_rng);
        sim.maybe_replicate(&[f], 0);
        assert_eq!(sim.replication_pushes, 0, "nowhere to push");
        assert_eq!(
            probe(&sim.replication_rng),
            before,
            "full-coverage slate must not advance the RNG"
        );
        // Exhaustion holds while coverage holds: no re-scan, no draw.
        sim.maybe_replicate(&[f], 0);
        assert_eq!(sim.replication_pushes, 0, "exhausted file stays inert");
        // All-servers-down window: skipped draw, but the file stays
        // eligible and pushes as soon as a server is back.
        let g = FileId(1);
        sim.servers[1].down = true;
        sim.servers[2].down = true;
        sim.maybe_replicate(&[g], 0);
        assert_eq!(sim.replication_pushes, 0, "outage blocks the push");
        assert_eq!(
            probe(&sim.replication_rng),
            before,
            "outage-window slate must not advance the RNG"
        );
        sim.servers[1].down = false;
        sim.servers[2].down = false;
        sim.maybe_replicate(&[g], 0);
        assert_eq!(sim.replication_pushes, 1, "outage only defers the push");
        assert_ne!(
            probe(&sim.replication_rng),
            before,
            "the deferred push consumes exactly the draw it always would"
        );
        // A lost copy re-arms an exhausted file (the engine forwards every
        // eviction/outage loss through `on_copy_lost`): the next reference
        // pushes `f` to the now-empty site after all.
        let lost = sim.stores[2].fail();
        assert!(lost.contains(&f));
        for e in lost {
            sim.replication.as_mut().expect("enabled").on_copy_lost(e);
        }
        sim.maybe_replicate(&[f], 0);
        assert_eq!(sim.replication_pushes, 2, "broken coverage re-arms f");
    }

    #[test]
    fn empty_push_slate_leaves_rng_untouched() {
        // Regression: `maybe_replicate` used to draw from the replication
        // RNG even when no site could receive the push (full coverage or
        // an outage window), so transient state shifted every later
        // placement. The draw must be skipped entirely.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let mut untouched = rng.clone();
        assert_eq!(pick_push_target(&mut rng, &[]), None);
        assert_eq!(pick_push_target(&mut rng, &[]), None);
        assert_eq!(
            rng.gen_range(0..1_000_000),
            untouched.gen_range(0..1_000_000),
            "empty slates must not advance the stream"
        );
        // Non-empty slates still consume exactly one draw each.
        let picked = pick_push_target(&mut rng, &[3, 5, 9]).expect("non-empty");
        assert!([3, 5, 9].contains(&picked));
        assert_ne!(
            rng.gen_range(0..1_000_000),
            untouched.gen_range(0..1_000_000),
            "a real pick consumes the stream"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = GridSim::new(small_config(StrategyKind::Rest2)).run();
        let b = GridSim::new(small_config(StrategyKind::Rest2)).run();
        assert_eq!(a, b, "same config ⇒ identical report");
    }

    #[test]
    fn seeds_change_results() {
        let a = GridSim::new(small_config(StrategyKind::Rest2)).run();
        let b = GridSim::new(small_config(StrategyKind::Rest2).with_seed(2)).run();
        assert_ne!(
            a.makespan_minutes, b.makespan_minutes,
            "different seeds should differ"
        );
    }

    #[test]
    fn transfers_bounded_by_accesses() {
        let report = GridSim::new(small_config(StrategyKind::Rest)).run();
        let wl = CoaddConfig::small(0).generate();
        let total_accesses: u64 = wl.tasks().iter().map(|t| t.file_count() as u64).sum();
        assert!(report.file_transfers <= total_accesses);
        // With data reuse, transfers should be well below total accesses.
        assert!(
            (report.file_transfers as f64) < 0.9 * total_accesses as f64,
            "reuse should eliminate many transfers: {} vs {}",
            report.file_transfers,
            total_accesses
        );
    }

    #[test]
    fn locality_beats_workqueue_on_transfers() {
        let rest = GridSim::new(small_config(StrategyKind::Rest)).run();
        let wq = GridSim::new(small_config(StrategyKind::Workqueue)).run();
        assert!(
            rest.file_transfers < wq.file_transfers,
            "rest ({}) should transfer fewer files than workqueue ({})",
            rest.file_transfers,
            wq.file_transfers
        );
    }

    #[test]
    fn tiny_capacity_still_completes() {
        // Capacity barely above the largest task: heavy thrash, but no
        // deadlock and no capacity violation beyond pinned overflow.
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let max_task = wl.tasks().iter().map(|t| t.file_count()).max().unwrap();
        let config = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(2)
            .with_capacity(max_task + 5)
            .with_seed(3);
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.total_evictions > 0, "thrash expected");
    }

    #[test]
    fn single_site_single_worker() {
        let wl = Arc::new(CoaddConfig::small(1).generate());
        let config = SimConfig::paper(wl, StrategyKind::Combined)
            .with_sites(1)
            .with_seed(4);
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert_eq!(report.per_site.len(), 1);
        assert_eq!(report.per_site[0].requests, 200);
    }

    #[test]
    fn multi_worker_site_contends() {
        let wl = Arc::new(CoaddConfig::small(2).generate());
        let config = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(2)
            .with_workers_per_site(4)
            .with_seed(5);
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        // With several workers per site, requests queue behind each other.
        let waited: f64 = report.per_site.iter().map(|s| s.waiting_time_s).sum();
        assert!(waited > 0.0, "queueing must appear with 4 workers/site");
    }

    #[test]
    fn replication_extension_pushes_files() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let config = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(3)
            .with_seed(6)
            .with_replication(crate::replication::ReplicationConfig {
                popularity_threshold: 2,
                max_replicas_per_file: 1,
            });
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.replication_pushes > 0);
        assert!(report.replication_bytes > 0.0);
    }

    #[test]
    fn fixed_speed_makespan_sanity() {
        // One site, one worker, fixed speed: makespan must exceed the pure
        // compute lower bound and the pure transfer lower bound.
        let wl = Arc::new(CoaddConfig::small(3).generate());
        let total_flops: f64 = wl.tasks().iter().map(|t| t.flops).sum();
        let speed = 1e11;
        let config = SimConfig::paper(Arc::clone(&wl), StrategyKind::Workqueue)
            .with_sites(1)
            .with_speeds(SpeedModelFixed(speed))
            .with_seed(7);
        let report = GridSim::new(config).run();
        let compute_minutes = total_flops / speed / 60.0;
        assert!(
            report.makespan_minutes >= compute_minutes,
            "makespan {} must cover compute {}",
            report.makespan_minutes,
            compute_minutes
        );
    }

    // Local alias so the test reads naturally.
    #[allow(non_snake_case)]
    fn SpeedModelFixed(s: f64) -> crate::speeds::SpeedModel {
        crate::speeds::SpeedModel::Fixed(s)
    }

    #[test]
    fn worker_churn_completes_with_reexecutions() {
        let config = small_config(StrategyKind::Rest2)
            .with_faults(gridsched_faults::FaultConfig::none().with_worker_faults(3_000.0, 400.0));
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.worker_crashes > 0, "churn must inject crashes");
        assert!(report.re_executions >= report.tasks_lost);
        assert!(report.mean_worker_availability() < 1.0);
    }

    #[test]
    fn server_churn_completes_and_loses_files() {
        let config = small_config(StrategyKind::StorageAffinity)
            .with_faults(gridsched_faults::FaultConfig::none().with_server_faults(15_000.0, 900.0));
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.server_outages > 0, "churn must inject outages");
        assert!(report.mean_server_availability() < 1.0);
    }

    #[test]
    fn checkpointing_saves_work_under_churn() {
        let faulty = || {
            small_config(StrategyKind::Rest2).with_faults(
                gridsched_faults::FaultConfig::none().with_worker_faults(3_000.0, 400.0),
            )
        };
        let plain = GridSim::new(faulty()).run();
        let ckpt = GridSim::new(
            faulty().with_checkpointing(gridsched_checkpoint::CheckpointConfig::fixed(300.0)),
        )
        .run();
        assert_eq!(ckpt.tasks_completed, 200);
        assert!(ckpt.checkpoints_written > 0, "churned run must checkpoint");
        assert!(ckpt.work_saved_s > 0.0, "resumes must rescue work");
        assert!(ckpt.checkpoint_restores > 0);
        assert!(
            ckpt.wasted_compute_s < plain.wasted_compute_s,
            "checkpointing must cut re-executed compute: {} vs {}",
            ckpt.wasted_compute_s,
            plain.wasted_compute_s
        );
        // Fault-free metrics of the checkpoint run stay self-consistent.
        assert!(ckpt.checkpoint_overhead_s > 0.0);
        assert_eq!(plain.checkpoints_written, 0);
        assert_eq!(plain.work_saved_s, 0.0);
    }

    #[test]
    fn young_daly_derives_interval_from_fault_model() {
        let config = small_config(StrategyKind::Workqueue)
            .with_faults(gridsched_faults::FaultConfig::none().with_worker_faults(2_500.0, 300.0))
            .with_checkpointing(gridsched_checkpoint::CheckpointConfig::young_daly());
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.checkpoints_written > 0);
        assert_eq!(report.config.checkpointing, "young-daly image=25MB");
    }

    #[test]
    #[should_panic(expected = "needs a worker MTBF")]
    fn young_daly_without_faults_panics() {
        let config = small_config(StrategyKind::Rest)
            .with_checkpointing(gridsched_checkpoint::CheckpointConfig::young_daly());
        let _ = GridSim::new(config);
    }

    #[test]
    fn inert_checkpoint_config_is_invisible() {
        let faulty = || {
            small_config(StrategyKind::StorageAffinity).with_faults(
                gridsched_faults::FaultConfig::none().with_worker_faults(4_000.0, 500.0),
            )
        };
        let a = GridSim::new(faulty()).run();
        let b = GridSim::new(
            faulty().with_checkpointing(gridsched_checkpoint::CheckpointConfig::none()),
        )
        .run();
        assert_eq!(a, b, "policy none must reproduce the churn engine exactly");
    }

    #[test]
    fn checkpointing_without_faults_only_adds_overhead() {
        let config = small_config(StrategyKind::Combined)
            .with_checkpointing(gridsched_checkpoint::CheckpointConfig::fixed(120.0));
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.checkpoints_written > 0);
        // Nothing ever crashes, so nothing is restored or lost.
        assert_eq!(report.checkpoint_restores, 0);
        assert_eq!(report.checkpoints_lost, 0);
        assert_eq!(report.work_saved_s, 0.0);
        assert!(report.checkpoint_overhead_s > 0.0);
    }

    #[test]
    fn checkpointed_churn_is_deterministic() {
        let config = || {
            small_config(StrategyKind::Combined2)
                .with_faults(
                    gridsched_faults::FaultConfig::none()
                        .with_worker_faults(3_500.0, 450.0)
                        .with_server_faults(20_000.0, 700.0),
                )
                .with_checkpointing(gridsched_checkpoint::CheckpointConfig::fixed(400.0))
        };
        let a = GridSim::new(config()).run();
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "checkpointing broke determinism");
    }

    #[test]
    fn weibull_repairs_change_downtime_not_crash_count() {
        let cfg = |shape: f64| {
            small_config(StrategyKind::Rest).with_faults(
                gridsched_faults::FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_worker_repair_shape(shape),
            )
        };
        let exp = GridSim::new(cfg(1.0)).run();
        let fat = GridSim::new(cfg(0.5)).run();
        assert_eq!(exp.tasks_completed, 200);
        assert_eq!(fat.tasks_completed, 200);
        // Shape 1.0 must match the legacy exponential engine exactly.
        let legacy =
            GridSim::new(small_config(StrategyKind::Rest).with_faults(
                gridsched_faults::FaultConfig::none().with_worker_faults(3_000.0, 400.0),
            ))
            .run();
        assert_eq!(exp.makespan_minutes, legacy.makespan_minutes);
        // A different shape must actually change the run.
        assert_ne!(fat.makespan_minutes, exp.makespan_minutes);
    }

    #[test]
    fn combined_churn_is_deterministic() {
        let config = || {
            small_config(StrategyKind::Combined2).with_faults(
                gridsched_faults::FaultConfig::none()
                    .with_worker_faults(4_000.0, 500.0)
                    .with_server_faults(25_000.0, 800.0),
            )
        };
        let a = GridSim::new(config()).run();
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "fault injection broke determinism");
    }

    #[test]
    fn burst_churn_completes_and_is_deterministic() {
        let config = || {
            small_config(StrategyKind::Rest2).with_faults(
                gridsched_faults::FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_worker_bursts(4_000.0, 2),
            )
        };
        let a = GridSim::new(config()).run();
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "bursts broke determinism");
        assert_eq!(a.tasks_completed, 200);
        assert!(a.worker_crashes > 0);
        assert!(a.config.faults.contains("bursts rate=4000s size=2"));
    }

    #[test]
    #[should_panic(expected = "correlated crash bursts need worker faults")]
    fn bursts_without_worker_faults_panic() {
        let config = small_config(StrategyKind::Rest).with_faults(
            gridsched_faults::FaultConfig::none()
                .with_server_faults(20_000.0, 900.0)
                .with_worker_bursts(3_000.0, 2),
        );
        let _ = GridSim::new(config);
    }

    #[test]
    fn adaptive_throttle_completes_and_is_deterministic() {
        use gridsched_core::ControlConfig;
        let config = || {
            small_config(StrategyKind::StorageAffinity).with_control(
                ControlConfig::none()
                    .with_adaptive_throttle()
                    .with_tick_s(120.0),
            )
        };
        let a = GridSim::new(config()).run();
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "the throttle controller broke determinism");
        assert_eq!(a.tasks_completed, 200);
        // The summary reports the *configured* throttle (none — the
        // controller's starting cap is runtime state) plus the loop.
        assert_eq!(a.config.replica_throttle, "none");
        assert_eq!(a.config.control, "throttle tick=120s");
        // The adaptive run is throttled from the start, so speculation
        // stays at or below the uncapped baseline.
        let uncapped = GridSim::new(small_config(StrategyKind::StorageAffinity)).run();
        assert!(
            a.replicas_launched <= uncapped.replicas_launched,
            "adaptive throttle must not inflate replicas: {} vs {}",
            a.replicas_launched,
            uncapped.replicas_launched
        );
    }

    #[test]
    #[should_panic(expected = "adaptive replica throttle only applies to storage-affinity")]
    fn adaptive_throttle_with_worker_centric_strategy_panics() {
        use gridsched_core::ControlConfig;
        let config = small_config(StrategyKind::Rest)
            .with_control(ControlConfig::none().with_adaptive_throttle());
        let _ = GridSim::new(config);
    }

    #[test]
    fn churn_placement_under_bursts_completes_and_is_deterministic() {
        use gridsched_core::ControlConfig;
        let config = || {
            small_config(StrategyKind::Rest2)
                .with_faults(
                    gridsched_faults::FaultConfig::none()
                        .with_worker_faults(2_500.0, 600.0)
                        .with_worker_bursts(3_000.0, 1),
                )
                .with_control(
                    ControlConfig::none()
                        .with_churn_placement()
                        .with_tick_s(120.0),
                )
        };
        let a = GridSim::new(config()).run();
        assert_eq!(a.tasks_completed, 200);
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "breaker gating broke determinism");
    }

    #[test]
    fn adaptive_young_daly_checkpoints_without_declared_mtbf() {
        use gridsched_core::ControlConfig;
        let config = small_config(StrategyKind::Workqueue)
            .with_faults(gridsched_faults::FaultConfig::none().with_worker_faults(2_500.0, 300.0))
            .with_checkpointing(gridsched_checkpoint::CheckpointConfig::young_daly_adaptive())
            .with_control(
                ControlConfig::none()
                    .with_adaptive_checkpoint()
                    .with_tick_s(300.0),
            );
        let report = GridSim::new(config).run();
        assert_eq!(report.tasks_completed, 200);
        assert!(
            report.checkpoints_written > 0,
            "the loop must switch checkpointing on once failures are observed"
        );
        assert_eq!(
            report.config.checkpointing,
            "young-daly-adaptive image=25MB"
        );
    }

    #[test]
    #[should_panic(expected = "young-daly-adaptive checkpointing needs the adaptive-checkpoint")]
    fn adaptive_young_daly_without_the_loop_panics() {
        let config = small_config(StrategyKind::Workqueue)
            .with_faults(gridsched_faults::FaultConfig::none().with_worker_faults(2_500.0, 300.0))
            .with_checkpointing(gridsched_checkpoint::CheckpointConfig::young_daly_adaptive());
        let _ = GridSim::new(config);
    }

    #[test]
    fn workload_type_reexport_sanity() {
        // Guard against accidental API drift: the engine consumes the same
        // Workload type the workload crate exports.
        fn takes(_: &Workload) {}
        let wl = CoaddConfig::small(0).generate();
        takes(&wl);
    }

    // ----- network faults & transfer resilience ---------------------------

    #[test]
    fn stochastic_link_faults_with_guard_complete_and_are_deterministic() {
        let config = || {
            small_config(StrategyKind::Rest)
                .with_faults(gridsched_faults::FaultConfig::none().with_link_faults(4_000.0, 600.0))
                .with_transfer_timeout(3.0)
                .with_transfer_retries(4)
                .with_retry_backoff(30.0)
        };
        let a = GridSim::new(config()).run();
        assert_eq!(a.tasks_completed, 200);
        assert!(a.link_outages > 0, "the MTBF must bite within the run");
        assert!(a.link_downtime_s > 0.0);
        // Flow conservation (also debug-asserted in report()).
        assert_eq!(
            a.flows_started,
            a.flows_completed + a.flows_aborted + a.flows_retrying + a.flows_requeued
        );
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "link faults + guard broke determinism");
    }

    #[test]
    fn degraded_link_windows_complete_without_a_guard() {
        // Degraded windows slow flows down but never stall them, so no
        // transfer guard is needed for liveness.
        let report = GridSim::new(
            small_config(StrategyKind::Rest2).with_faults(
                gridsched_faults::FaultConfig::none()
                    .with_link_faults(3_000.0, 900.0)
                    .with_link_degrade_factor(0.25),
            ),
        )
        .run();
        assert_eq!(report.tasks_completed, 200);
        assert!(report.link_outages > 0);
        assert_eq!(report.xfer_timeouts, 0, "no guard configured");
    }

    #[test]
    fn scripted_link_outage_accounts_downtime_and_heals() {
        let trace =
            gridsched_faults::FaultTrace::parse("600 link-down 0\n2400 link-up 0").expect("parses");
        let report = GridSim::new(
            small_config(StrategyKind::Workqueue)
                .with_faults(gridsched_faults::FaultConfig::none().with_trace(trace)),
        )
        .run();
        assert_eq!(report.tasks_completed, 200);
        assert_eq!(report.link_outages, 1);
        assert!(
            report.link_downtime_s > 0.0,
            "the outage window must accrue downtime"
        );
    }

    #[test]
    fn scripted_partition_with_guard_times_out_and_completes() {
        // Site 0 is cut off for its first busy stretch; the guard turns
        // the stalled fetches into retries (and, budget spent, requeues)
        // instead of waiting out the whole partition.
        let trace = gridsched_faults::FaultTrace::parse("60 partition 0\n6000 partition-heal 0")
            .expect("parses");
        let config = || {
            small_config(StrategyKind::Rest)
                .with_faults(gridsched_faults::FaultConfig::none().with_trace(trace.clone()))
                .with_transfer_timeout(2.0)
                .with_transfer_retries(2)
                .with_retry_backoff(60.0)
        };
        let a = GridSim::new(config()).run();
        assert_eq!(a.tasks_completed, 200);
        assert!(
            a.xfer_timeouts > 0,
            "stalled fetches behind the partition must hit the deadline"
        );
        assert!(a.xfer_retries > 0 || a.flows_requeued > 0);
        assert_eq!(
            a.flows_started,
            a.flows_completed + a.flows_aborted + a.flows_retrying + a.flows_requeued
        );
        let b = GridSim::new(config()).run();
        assert_eq!(a, b, "partition + guard broke determinism");
    }

    #[test]
    fn guard_on_a_healthy_run_never_fires() {
        // The deadline is timeout_mult × an upper bound on the transfer
        // time (the fair-share estimate lower-bounds the max–min rate),
        // so on a fault-free run no timeout can ever dispatch — the
        // guarded run's behaviour matches the unguarded run exactly.
        let base = GridSim::new(small_config(StrategyKind::StorageAffinity)).run();
        let guarded = GridSim::new(
            small_config(StrategyKind::StorageAffinity)
                .with_transfer_timeout(1.5)
                .with_transfer_retries(3)
                .with_retry_backoff(30.0),
        )
        .run();
        assert_eq!(guarded.xfer_timeouts, 0);
        assert_eq!(guarded.flows_retrying, 0);
        assert_eq!(guarded.flows_requeued, 0);
        assert_eq!(guarded.makespan_minutes, base.makespan_minutes);
        assert_eq!(guarded.file_transfers, base.file_transfers);
        assert_eq!(guarded.events_dispatched, base.events_dispatched);
        assert_eq!(guarded.per_site, base.per_site);
    }

    #[test]
    fn naive_retry_retransmits_what_resume_keeps() {
        // Under the same flap storm, restart-from-zero re-sends delivered
        // bytes that partial-transfer resume keeps.
        let trace = gridsched_faults::FaultTrace::parse(
            "300 link-down 0\n1500 link-up 0\n2400 link-down 0\n3600 link-up 0",
        )
        .expect("parses");
        let config = |naive: bool| {
            let c = small_config(StrategyKind::Rest)
                .with_faults(gridsched_faults::FaultConfig::none().with_trace(trace.clone()))
                .with_transfer_timeout(2.0)
                .with_transfer_retries(5)
                .with_retry_backoff(30.0);
            if naive {
                c.with_naive_retry()
            } else {
                c
            }
        };
        let resume = GridSim::new(config(false)).run();
        let naive = GridSim::new(config(true)).run();
        assert_eq!(resume.tasks_completed, 200);
        assert_eq!(naive.tasks_completed, 200);
        assert!(resume.xfer_timeouts > 0, "the flap storm must bite");
        assert!(naive.xfer_timeouts > 0, "the flap storm must bite");
        assert_eq!(resume.xfer_bytes_retransmitted, 0.0);
        assert_eq!(naive.xfer_bytes_resumed, 0.0);
        // Byte math stays sound either way: both runs moved at least one
        // full file per transfer they completed.
        assert!(resume.bytes_transferred > 0.0);
        assert!(naive.bytes_transferred >= resume.bytes_transferred - 1e-6);
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn trace_with_out_of_range_link_panics() {
        let trace = gridsched_faults::FaultTrace::parse("600 link-down 9999").expect("parses");
        let _ = GridSim::new(
            small_config(StrategyKind::Rest)
                .with_faults(gridsched_faults::FaultConfig::none().with_trace(trace)),
        );
    }
}
