//! # gridsched-core — worker-centric scheduling strategies
//!
//! The primary contribution of *"New Worker-Centric Scheduling Strategies
//! for Data-Intensive Grid Applications"* (Ko, Morales, Gupta — MIDDLEWARE
//! 2007), implemented as a library:
//!
//! * [`WorkerCentric`] — the paper's basic algorithm (Figure 2): a worker
//!   requests a task **only when it is idle**; the global scheduler weighs
//!   every pending task for that worker and picks one via
//!   [`choose::ChooseTask`];
//! * [`WeightMetric`] — the three weights of §4.2: `Overlap` (`|F_t|`),
//!   `Rest` (`1/(|t|−|F_t|)`) and `Combined`
//!   (`ref_t/totalRef + rest_t/totalRest`);
//! * [`StorageAffinity`] — the task-centric baseline of Santos-Neto et al.
//!   (data reuse + task replication), §3.1/[14];
//! * [`Workqueue`] — the classic FIFO pull scheduler [6];
//! * [`index::FileIndex`] / [`index::SiteView`] / [`index::TaskRank`] — an
//!   inverted file→task index with incrementally-maintained per-site
//!   overlap and reference sums, plus bucketed priority indexes over the
//!   pending pool, turning each scheduling decision from `O(T·I)` file
//!   probes into an `O(log T)` amortized pick (the complexity the paper
//!   quotes is the naive evaluation; all paths are provided, selectable
//!   via [`EvalMode`], and property-tested for byte-identical decisions).
//!
//! All strategies implement the [`Scheduler`] trait, which the grid
//! simulator (`gridsched-sim`) drives with worker-idle and task-completion
//! events plus storage-change notifications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choose;
pub mod control;
pub mod ids;
pub mod index;
pub mod pool;
pub mod scheduler;
pub mod storage_affinity;
pub mod sufferage;
pub mod weight;
pub mod worker_centric;
pub mod workqueue;

pub use choose::ChooseTask;
pub use control::{
    AvailabilityTracker, BreakerState, CapController, CircuitBreaker, ControlConfig,
    ControlDirective, ControlPlane, Ewma, InterarrivalTracker, TickOutcome,
};
pub use ids::{GridEnv, SiteId, WorkerId};
pub use pool::TaskPool;
pub use scheduler::{
    Assignment, CompletionOutcome, EvalMode, ReplicaThrottle, Scheduler, StrategyKind,
};
pub use storage_affinity::StorageAffinity;
pub use sufferage::Sufferage;
pub use weight::WeightMetric;
pub use worker_centric::WorkerCentric;
pub use workqueue::Workqueue;
