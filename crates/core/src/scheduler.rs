//! The scheduler interface the grid simulator drives.
//!
//! One trait covers both families:
//!
//! * **worker-centric** schedulers decide lazily, one request at a time
//!   ([`Scheduler::on_worker_idle`] returns [`Assignment::Run`]);
//! * the **task-centric** baseline pre-assigns every task at
//!   [`Scheduler::initialize`] time and serves queue pops, issuing
//!   [`Assignment::Replicate`] once its queues drain.
//!
//! Storage-change notifications ([`Scheduler::on_file_added`] etc.) let
//! implementations keep incremental indexes; they carry no information a
//! real global scheduler could not obtain (data location is "relatively
//! static and easy to obtain", §2.4).

use std::fmt;

use serde::{Deserialize, Serialize};

use gridsched_storage::SiteStore;
use gridsched_telemetry::Telemetry;
use gridsched_workload::{FileId, TaskId};

use crate::control::ControlDirective;
use crate::ids::{GridEnv, SiteId, WorkerId};
use crate::weight::WeightMetric;

/// How a scheduler evaluates its per-decision queue scan.
///
/// All modes are property-tested to produce byte-identical assignment
/// sequences (and therefore identical simulation output); they differ only
/// in per-decision cost. See `tests/scheduler_equivalence.rs` and the
/// `perf_scale` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvalMode {
    /// Incrementally-maintained per-site priority indexes
    /// ([`crate::index::TaskRank`]): `O(log T)` amortized per decision.
    /// The default.
    #[default]
    Incremental,
    /// Per-decision scan over incrementally-cached counters: `O(T)`.
    Indexed,
    /// Per-decision direct file probing — the paper's stated `O(T·I)`
    /// complexity (§4.4); kept for validation and benchmarking.
    Naive,
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvalMode::Incremental => "incremental",
            EvalMode::Indexed => "indexed",
            EvalMode::Naive => "naive",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "incremental" => Ok(EvalMode::Incremental),
            "indexed" => Ok(EvalMode::Indexed),
            "naive" => Ok(EvalMode::Naive),
            other => Err(format!(
                "unknown eval mode `{other}` (incremental|indexed|naive)"
            )),
        }
    }
}

/// Bounds on storage affinity's speculative task replication.
///
/// Uncapped replication is the documented large-grid pathology of the
/// task-centric baseline: every idle worker replicates some running task,
/// every completion cancels the losers, and the cancelled workers go idle
/// and replicate again — a launch/cancel storm whose event count dwarfs the
/// useful work (283M events vs ~1.8M for the worker-centric strategies at
/// 10⁵ workers in `BENCH_scale.json`). The throttle bounds the fan-out on
/// two axes without touching the paper's small-grid behaviour:
///
/// * [`replica_cap`](ReplicaThrottle::replica_cap) — at most this many
///   concurrent *replica* executions per task (primaries never count, so a
///   cap of 1 still lets an idle worker pick up any task that is queued or
///   running exactly once elsewhere);
/// * [`site_budget`](ReplicaThrottle::site_budget) — at most this many
///   concurrent replica executions *launched by one site's workers*, so a
///   site full of idle workers cannot flood the grid by itself.
///
/// `ReplicaThrottle::none()` (the default) disables both bounds and is
/// byte-identical to the unthrottled scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaThrottle {
    /// Max concurrent replica executions per task (`None` = unbounded).
    pub replica_cap: Option<u32>,
    /// Max concurrent replica executions launched per site (`None` =
    /// unbounded).
    pub site_budget: Option<u32>,
}

impl ReplicaThrottle {
    /// No throttling — the unbounded paper behaviour.
    #[must_use]
    pub fn none() -> Self {
        ReplicaThrottle::default()
    }

    /// Whether any bound is configured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.replica_cap.is_some() || self.site_budget.is_some()
    }

    /// Sets the per-task replica cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero: a fault-orphaned task that is in nobody's
    /// queue anymore can only come back as a replica, so a zero cap could
    /// deadlock churned runs.
    #[must_use]
    pub fn with_replica_cap(mut self, cap: u32) -> Self {
        assert!(cap >= 1, "replica cap must be >= 1");
        self.replica_cap = Some(cap);
        self
    }

    /// Sets the per-site in-flight replica budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero (same deadlock hazard as a zero cap).
    #[must_use]
    pub fn with_site_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "site replica budget must be >= 1");
        self.site_budget = Some(budget);
        self
    }

    /// Human-readable summary (`"none"` when inactive).
    #[must_use]
    pub fn summary(&self) -> String {
        match (self.replica_cap, self.site_budget) {
            (None, None) => "none".to_string(),
            (Some(c), None) => format!("cap={c}"),
            (None, Some(b)) => format!("site-budget={b}"),
            (Some(c), Some(b)) => format!("cap={c} site-budget={b}"),
        }
    }
}

/// What an idle worker should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Execute this pending task (it leaves the pending pool).
    Run(TaskId),
    /// Execute a *replica* of a task already running elsewhere
    /// (task-centric storage affinity's idle-worker mitigation).
    Replicate(TaskId),
    /// Nothing to do right now, but more work may appear (e.g. replicas
    /// only make sense once transfers finish) — ask again after the next
    /// completion.
    Wait,
    /// The job is finished from this worker's perspective; it will never
    /// receive work again.
    Finished,
}

/// The scheduler's reaction to a task completing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletionOutcome {
    /// Workers whose replica of the completed task must be aborted
    /// (storage affinity: "If one of the workers finishes the task, the
    /// other cancels the task").
    pub cancel_replicas: Vec<WorkerId>,
}

/// A grid scheduler under test.
///
/// Lifecycle, as driven by `gridsched-sim`:
/// 1. [`initialize`](Scheduler::initialize) once, with the grid shape;
/// 2. [`on_worker_idle`](Scheduler::on_worker_idle) whenever a worker has
///    nothing to do (including at start-up);
/// 3. [`on_task_complete`](Scheduler::on_task_complete) /
///    [`on_replica_aborted`](Scheduler::on_replica_aborted) as executions
///    finish;
/// 4. storage-change notifications interleaved throughout.
pub trait Scheduler {
    /// Short machine-readable name (used in experiment output; matches the
    /// paper's algorithm labels, e.g. `rest.2`).
    fn name(&self) -> String;

    /// Called once before the simulation starts.
    fn initialize(&mut self, env: &GridEnv, stores: &[SiteStore]) {
        let _ = (env, stores);
    }

    /// Installs hot-path instrument handles from the run's telemetry
    /// collector. Called by the engine before
    /// [`initialize`](Scheduler::initialize); the default is a no-op.
    /// Implementations must only *record* through the handles — attaching
    /// telemetry must not change any scheduling decision (property-tested
    /// in `tests/scheduler_equivalence.rs`).
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let _ = telemetry;
    }

    /// A control-plane directive arrived (adaptive cap moves, fresh
    /// per-site placement scores). Delivered at controller-tick time —
    /// never inside an event dispatch — so implementations may mutate
    /// internal setpoints freely. The default ignores directives: every
    /// strategy keeps working unchanged with the control loops on, and
    /// with them off this is never called (byte-identity with the
    /// uncontrolled engine is property-tested).
    fn on_control(&mut self, directive: &ControlDirective) {
        let _ = directive;
    }

    /// A worker is idle and requests work. `store` is the current storage
    /// of the worker's site.
    fn on_worker_idle(&mut self, worker: WorkerId, store: &SiteStore) -> Assignment;

    /// `task` finished at `worker`.
    fn on_task_complete(&mut self, worker: WorkerId, task: TaskId) -> CompletionOutcome;

    /// The engine aborted `task`'s replica at `worker` (follow-up to a
    /// [`CompletionOutcome::cancel_replicas`] entry).
    fn on_replica_aborted(&mut self, worker: WorkerId, task: TaskId) {
        let _ = (worker, task);
    }

    /// `worker` crashed (fault injection). `in_flight` is the task it was
    /// executing, if any; the scheduler must make that task eligible for
    /// execution again unless another replica of it is still running.
    ///
    /// Returns `true` iff an in-flight task was *orphaned* — no copy of it
    /// is running anywhere anymore — and will therefore need a
    /// re-execution. The engine uses the return value for its
    /// `tasks_lost` accounting.
    fn on_worker_lost(&mut self, worker: WorkerId, in_flight: Option<TaskId>) -> bool;

    /// `worker` recovered from a crash and will start requesting work
    /// again.
    fn on_worker_recovered(&mut self, worker: WorkerId) {
        let _ = worker;
    }

    /// A file became resident at a site (with its current `r_i`).
    fn on_file_added(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        let _ = (site, file, ref_count);
    }

    /// A file was evicted at a site (with the `r_i` it held).
    fn on_file_evicted(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        let _ = (site, file, ref_count);
    }

    /// A task at `site` referenced `file` (`r_i` incremented by one).
    fn on_task_reference(&mut self, site: SiteId, file: FileId) {
        let _ = (site, file);
    }

    /// Number of tasks that have not yet completed anywhere.
    fn unfinished(&self) -> usize;
}

/// The six algorithms of the paper's evaluation (§5.3) plus the classic
/// workqueue baseline, as a parseable configuration enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Task-centric storage affinity (data reuse + task replication) [14].
    StorageAffinity,
    /// Worker-centric, `overlap` metric, deterministic.
    Overlap,
    /// Worker-centric, `rest` metric, `ChooseTask(1)`.
    Rest,
    /// Worker-centric, `combined` metric, `ChooseTask(1)`.
    Combined,
    /// Worker-centric, `rest` metric, randomized `ChooseTask(2)`.
    Rest2,
    /// Worker-centric, `combined` metric, randomized `ChooseTask(2)`.
    Combined2,
    /// FIFO workqueue (no locality) [6].
    Workqueue,
    /// Data-aware XSufferage-style baseline (Casanova et al. [5]).
    Sufferage,
}

impl StrategyKind {
    /// The paper's six compared algorithms, in Figure legend order.
    pub const PAPER_SET: [StrategyKind; 6] = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
    ];

    /// The worker-centric weight metric, if this is a worker-centric
    /// strategy.
    #[must_use]
    pub fn metric(self) -> Option<WeightMetric> {
        match self {
            StrategyKind::Overlap => Some(WeightMetric::Overlap),
            StrategyKind::Rest | StrategyKind::Rest2 => Some(WeightMetric::Rest),
            StrategyKind::Combined | StrategyKind::Combined2 => Some(WeightMetric::Combined),
            StrategyKind::StorageAffinity | StrategyKind::Workqueue | StrategyKind::Sufferage => {
                None
            }
        }
    }

    /// The `ChooseTask(n)` parameter for worker-centric strategies.
    #[must_use]
    pub fn choose_n(self) -> usize {
        match self {
            StrategyKind::Rest2 | StrategyKind::Combined2 => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyKind::StorageAffinity => "storage-affinity",
            StrategyKind::Overlap => "overlap",
            StrategyKind::Rest => "rest",
            StrategyKind::Combined => "combined",
            StrategyKind::Rest2 => "rest.2",
            StrategyKind::Combined2 => "combined.2",
            StrategyKind::Workqueue => "workqueue",
            StrategyKind::Sufferage => "xsufferage",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "storage-affinity" | "storage_affinity" | "sa" => Ok(StrategyKind::StorageAffinity),
            "overlap" => Ok(StrategyKind::Overlap),
            "rest" => Ok(StrategyKind::Rest),
            "combined" => Ok(StrategyKind::Combined),
            "rest.2" | "rest2" => Ok(StrategyKind::Rest2),
            "combined.2" | "combined2" => Ok(StrategyKind::Combined2),
            "workqueue" | "wq" => Ok(StrategyKind::Workqueue),
            "xsufferage" | "sufferage" => Ok(StrategyKind::Sufferage),
            other => Err(format!("unknown strategy `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(
            StrategyKind::StorageAffinity.to_string(),
            "storage-affinity"
        );
        assert_eq!(StrategyKind::Rest2.to_string(), "rest.2");
        assert_eq!(StrategyKind::Combined2.to_string(), "combined.2");
    }

    #[test]
    fn parse_round_trips() {
        for k in StrategyKind::PAPER_SET {
            assert_eq!(k.to_string().parse::<StrategyKind>().unwrap(), k);
        }
        assert_eq!(
            "workqueue".parse::<StrategyKind>().unwrap(),
            StrategyKind::Workqueue
        );
    }

    #[test]
    fn throttle_summary_and_activity() {
        assert!(!ReplicaThrottle::none().is_active());
        assert_eq!(ReplicaThrottle::none().summary(), "none");
        let t = ReplicaThrottle::none().with_replica_cap(2);
        assert!(t.is_active());
        assert_eq!(t.summary(), "cap=2");
        let t = t.with_site_budget(16);
        assert_eq!(t.summary(), "cap=2 site-budget=16");
        assert_eq!(
            ReplicaThrottle::none().with_site_budget(4).summary(),
            "site-budget=4"
        );
    }

    #[test]
    #[should_panic(expected = "replica cap must be >= 1")]
    fn zero_cap_panics() {
        let _ = ReplicaThrottle::none().with_replica_cap(0);
    }

    #[test]
    fn metric_mapping() {
        assert_eq!(StrategyKind::Rest2.metric(), Some(WeightMetric::Rest));
        assert_eq!(StrategyKind::Rest2.choose_n(), 2);
        assert_eq!(StrategyKind::Combined.choose_n(), 1);
        assert_eq!(StrategyKind::StorageAffinity.metric(), None);
    }
}
