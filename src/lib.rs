//! # gridsched — worker-centric scheduling for data-intensive grids
//!
//! A full reproduction of *"New Worker-Centric Scheduling Strategies for
//! Data-Intensive Grid Applications"* (Steven Y. Ko, Ramsés Morales,
//! Indranil Gupta — MIDDLEWARE 2007) as a Rust workspace. This facade
//! crate re-exports the public API of every sub-crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`des`] | `gridsched-des` | discrete-event kernel (time, event queue, seeded RNG streams) |
//! | [`topology`] | `gridsched-topology` | Tiers-like WAN/MAN/LAN generator + routing |
//! | [`net`] | `gridsched-net` | flow-level network with max–min fair sharing |
//! | [`workload`] | `gridsched-workload` | Bag-of-Tasks model + the Coadd generator |
//! | [`storage`] | `gridsched-storage` | capacity-bounded site storage (LRU/FIFO/LFU, pinning, `r_i`) |
//! | [`core`] | `gridsched-core` | the scheduling strategies (the paper's contribution) |
//! | [`faults`] | `gridsched-faults` | fault injection: MTBF/MTTR churn processes + scripted fault traces |
//! | [`checkpoint`] | `gridsched-checkpoint` | checkpoint/restart policies (fixed interval, Young/Daly) + image tracking |
//! | [`telemetry`] | `gridsched-telemetry` | deterministic observability: instruments, lifecycle spans, probe sampler |
//! | [`sim`] | `gridsched-sim` | the grid simulator + experiment runner |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gridsched::prelude::*;
//!
//! // The paper's scaled Coadd workload (use `CoaddConfig::small(0)` in
//! // tests — it finishes instantly).
//! let workload = Arc::new(CoaddConfig::small(0).generate());
//!
//! // Table 1 defaults: 10 sites, 1 worker/site, 6,000-file data servers.
//! let config = SimConfig::paper(workload, StrategyKind::Combined2).with_sites(3);
//!
//! let report = GridSim::new(config).run();
//! assert_eq!(report.tasks_completed, 200);
//! println!("makespan: {:.0} minutes", report.makespan_minutes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gridsched_checkpoint as checkpoint;
pub use gridsched_core as core;
pub use gridsched_des as des;
pub use gridsched_faults as faults;
pub use gridsched_net as net;
pub use gridsched_storage as storage;
pub use gridsched_telemetry as telemetry;
pub use gridsched_topology as topology;
pub use gridsched_workload as workload;

/// Re-export of the simulator crate (named `sim` to avoid the
/// `gridsched_sim` mouthful).
pub mod sim {
    pub use gridsched_sim::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use gridsched_checkpoint::{CheckpointConfig, CheckpointPolicy};
    pub use gridsched_core::{
        Assignment, BreakerState, ChooseTask, ControlConfig, ControlDirective, EvalMode,
        ReplicaThrottle, Scheduler, SiteId, StorageAffinity, StrategyKind, Sufferage, WeightMetric,
        WorkerCentric, WorkerId, Workqueue,
    };
    pub use gridsched_faults::{FaultConfig, FaultEvent, FaultKind, FaultTrace};
    pub use gridsched_sim::{
        run_averaged, run_averaged_with_spread, GridSim, MetricsReport, ReplicationConfig,
        ReportSpread, SimConfig, SpeedModel, Telemetry,
    };
    pub use gridsched_storage::{EvictionPolicy, SiteStore};
    pub use gridsched_telemetry::{
        diff_digests, BlameReport, DigestFold, DigestStream, Divergence, MetricsServer,
    };
    pub use gridsched_topology::{generate as generate_topology, TiersConfig};
    pub use gridsched_workload::builder::{Popularity, WorkloadBuilder};
    pub use gridsched_workload::coadd::CoaddConfig;
    pub use gridsched_workload::{FileId, TaskId, TaskSpec, Workload};
}
