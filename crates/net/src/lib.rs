//! # gridsched-net — flow-level network simulation
//!
//! Reimplements the network model the paper inherits from SimGrid: a
//! **fluid, flow-level** model in which every active transfer (flow) crosses
//! a fixed route of links, and link bandwidth is divided among concurrent
//! flows by **max–min fairness**. A transfer of `S` bytes over a route with
//! total propagation latency `L` finishes after `L + S / rate(t)` where the
//! rate is the (time-varying) max–min share of the flow.
//!
//! * [`fair::max_min_rates`] — the progressive-filling specification,
//! * [`fair::MaxMinSolver`] — its bit-identical hot-path implementation
//!   (incremental flow registration, no per-recompute allocation),
//! * [`NetSim`] — the stateful engine: start/cancel flows, advance fluid
//!   state, query the next completion instant.
//!
//! The engine is deliberately decoupled from the event queue: the caller
//! (the grid simulator) owns the clock, asks [`NetSim::next_completion`]
//! after every change, and schedules/cancels a single DES event for it.
//!
//! ```
//! use gridsched_des::SimTime;
//! use gridsched_net::NetSim;
//! use gridsched_topology::EdgeId;
//!
//! // One link of 10 bytes/s; a 100-byte flow with 2s latency.
//! let mut net = NetSim::new(vec![10.0]);
//! let f = net.start_flow(SimTime::ZERO, &[EdgeId(0)], 100.0, 2.0);
//! let (t, id) = net.next_completion().expect("one active flow");
//! assert_eq!(id, f);
//! assert!((t.as_secs() - 12.0).abs() < 1e-9); // 2s latency + 100/10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fair;

pub use engine::{FlowId, NetSim};
