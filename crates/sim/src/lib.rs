//! # gridsched-sim — the grid application simulator
//!
//! Ties every substrate together into the system model of §2.2 of the
//! paper:
//!
//! 1. a job is a Bag-of-Tasks ([`gridsched_workload`]);
//! 2. multiple sites, each with ≥1 worker and exactly one data server with
//!    capacity-bounded local storage ([`gridsched_storage`]);
//! 3. the data server receives all file requests from its site's workers
//!    and sends **batch** requests for the missing files to the external
//!    file server, processing requests **one by one**;
//! 4. each task issues exactly one batch file request;
//! 5. a worker starts executing only when all the task's files are local;
//! 6. one global scheduler hands out tasks on demand
//!    ([`gridsched_core`]); one external file server holds every file;
//! 7. intra-site communication is free; inter-site transfers ride the
//!    flow-level network ([`gridsched_net`]) over Tiers-like topologies
//!    ([`gridsched_topology`]);
//! 8. files are equally sized.
//!
//! [`GridSim`] is the deterministic discrete-event engine;
//! [`SimConfig`] describes one run (Table 1 defaults via
//! [`SimConfig::paper`]); [`MetricsReport`] is what an experiment gets
//! back — makespan (minutes, like the paper's figures), file-transfer
//! counts (Figure 5), per-site waiting/transfer times (Table 3), bytes on
//! the wire, replication/cancellation accounting.
//!
//! ```
//! use std::sync::Arc;
//! use gridsched_core::StrategyKind;
//! use gridsched_sim::{GridSim, SimConfig};
//! use gridsched_workload::coadd::CoaddConfig;
//!
//! let workload = Arc::new(CoaddConfig::small(0).generate());
//! let config = SimConfig::paper(workload, StrategyKind::Rest2)
//!     .with_sites(3)
//!     .with_seed(1);
//! let report = GridSim::new(config).run();
//! assert_eq!(report.tasks_completed, 200);
//! assert!(report.makespan_minutes > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod replication;
pub mod runner;
pub mod speeds;

pub use config::SimConfig;
pub use engine::GridSim;
pub use metrics::{MetricsReport, SiteMetrics};
pub use replication::ReplicationConfig;
pub use runner::{
    average_reports, report_spread, run_averaged, run_averaged_with_spread, ExperimentPoint,
    ReportSpread,
};
pub use speeds::SpeedModel;

// The observability layer: re-export so simulator users can inject a
// `Telemetry` handle (tests, examples) without an extra dependency line.
pub use gridsched_telemetry::{self as telemetry, Telemetry};

// The fault and checkpoint models live in their own crates; re-export the
// configuration surface so simulator users need only `gridsched_sim`.
pub use gridsched_checkpoint::{CheckpointConfig, CheckpointPolicy};
pub use gridsched_core::{BreakerState, ControlConfig};
pub use gridsched_faults::{FaultConfig, FaultEvent, FaultKind, FaultTrace};
