//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A size specification: a fixed length or a range of lengths.
pub trait SizeBound {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeBound for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeBound for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBound for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Vectors of `size` elements drawn from `element`.
#[must_use]
pub fn vec<S: Strategy, B: SizeBound>(element: S, size: B) -> VecStrategy<S, B> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, B> {
    element: S,
    size: B,
}

impl<S: Strategy, B: SizeBound> Strategy for VecStrategy<S, B> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Ordered sets with a target size drawn from `size`.
///
/// If the element domain is too small to reach the target size, the set
/// saturates at whatever distinct values showed up (mirroring proptest's
/// best-effort behaviour).
#[must_use]
pub fn btree_set<S, B>(element: S, size: B) -> BTreeSetStrategy<S, B>
where
    S: Strategy,
    S::Value: Ord,
    B: SizeBound,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, B> {
    element: S,
    size: B,
}

impl<S, B> Strategy for BTreeSetStrategy<S, B>
where
    S: Strategy,
    S::Value: Ord,
    B: SizeBound,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 10 * target + 100 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn vec_sizes() {
        let mut rng = test_rng("collection::vec_sizes");
        let fixed = vec(0u32..5, 7usize);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
        let ranged = vec(0u32..5, 2..6);
        for _ in 0..100 {
            assert!((2..6).contains(&ranged.sample(&mut rng).len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_possible() {
        let mut rng = test_rng("collection::btree_set");
        let s = btree_set(0usize..10, 1..=10);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 10);
        }
    }
}
