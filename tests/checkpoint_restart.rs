//! Property-based and scripted guarantees of the checkpoint/restart
//! subsystem, checked through the public API:
//!
//! 1. a **`CheckpointPolicy::None`** config reproduces the PR 1 churn
//!    engine's `MetricsReport` exactly (every field, including event
//!    counts) — checkpointing off is not merely "similar", it is the same
//!    simulation;
//! 2. a scripted crash mid-task provably resumes from the last checkpoint:
//!    the re-executed work stays below one checkpoint interval (plus the
//!    image-write stall) instead of the whole progress so far;
//! 3. with stochastic churn and Young/Daly checkpointing on, total
//!    re-executed compute time is strictly lower than the no-checkpoint
//!    run on the same seed (the ISSUE's acceptance criterion);
//! 4. checkpoint images die with the data server that holds them.

use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;

fn small_workload(seed: u64, tasks: u32) -> Arc<Workload> {
    let mut cfg = CoaddConfig::small(seed);
    cfg.tasks = tasks;
    Arc::new(cfg.generate())
}

fn base_config(strategy: StrategyKind, sites: usize, seed: u64) -> SimConfig {
    SimConfig::paper(small_workload(seed, 120), strategy)
        .with_sites(sites)
        .with_capacity(600)
        .with_seed(seed)
}

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::StorageAffinity),
        Just(StrategyKind::Rest),
        Just(StrategyKind::Rest2),
        Just(StrategyKind::Combined2),
        Just(StrategyKind::Workqueue),
        Just(StrategyKind::Sufferage),
    ]
}

proptest! {
    // Whole-simulation cases are expensive; a moderate case count still
    // covers strategy x fault-shape x seed combinations well.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (1) `--checkpoint-policy none` must be invisible: same
    /// `MetricsReport`, field for field, as not configuring checkpointing
    /// at all — under arbitrary seeded churn.
    #[test]
    fn policy_none_reproduces_churn_engine_exactly(
        strategy in arb_strategy(),
        sites in 2usize..4,
        worker_mtbf in 2_000.0f64..30_000.0,
        worker_mttr in 120.0f64..1_500.0,
        server_mtbf in 20_000.0f64..80_000.0,
        seed in 0u64..1_000,
    ) {
        let faults = FaultConfig::none()
            .with_worker_faults(worker_mtbf, worker_mttr)
            .with_server_faults(server_mtbf, 600.0);
        let plain = GridSim::new(
            base_config(strategy, sites, seed).with_faults(faults.clone()),
        )
        .run();
        let inert = GridSim::new(
            base_config(strategy, sites, seed)
                .with_faults(faults)
                .with_checkpointing(CheckpointConfig::none()),
        )
        .run();
        prop_assert_eq!(&plain, &inert, "inert checkpointing perturbed {}", strategy);
        prop_assert_eq!(plain.events_dispatched, inert.events_dispatched);
        prop_assert_eq!(inert.checkpoints_written, 0);
        prop_assert_eq!(inert.checkpoint_restores, 0);
        prop_assert_eq!(inert.work_saved_s, 0.0);
        prop_assert_eq!(inert.config.checkpointing.as_str(), "none");
    }

    /// (3) Young/Daly checkpointing strictly cuts re-executed compute
    /// under churn aggressive enough to actually lose tasks.
    #[test]
    fn young_daly_strictly_cuts_wasted_compute(
        strategy in arb_strategy(),
        seed in 0u64..200,
    ) {
        let faulty = |s: StrategyKind, seed: u64| {
            base_config(s, 3, seed)
                .with_faults(FaultConfig::none().with_worker_faults(2_500.0, 300.0))
        };
        let plain = GridSim::new(faulty(strategy, seed)).run();
        // Only meaningful when the churn actually destroyed work (at this
        // MTBF it essentially always does).
        if plain.wasted_compute_s > 0.0 {
            let ckpt = GridSim::new(
                faulty(strategy, seed).with_checkpointing(CheckpointConfig::young_daly()),
            )
            .run();
            prop_assert_eq!(ckpt.tasks_completed, 120);
            prop_assert!(
                ckpt.wasted_compute_s < plain.wasted_compute_s,
                "{}: checkpointed waste {} !< plain waste {}",
                strategy, ckpt.wasted_compute_s, plain.wasted_compute_s
            );
        }
    }
}

/// (2) A scripted crash mid-task resumes from the last checkpoint: the
/// work re-executed is bounded by one checkpoint interval plus the image
/// write stall — not by the task's whole progress.
#[test]
fn scripted_crash_resumes_from_last_checkpoint() {
    const INTERVAL_S: f64 = 300.0;
    // One site, one worker, fixed speed: the timeline is fully scripted.
    // CoaddConfig::small tasks run for thousands of seconds at 1e10
    // flop/s, so a crash 2 h in lands mid-computation with several
    // checkpoints behind it.
    let trace = "7200 worker-crash 0 0\n7500 worker-recover 0 0\n";
    let cfg = |ckpt: Option<CheckpointConfig>| {
        let mut c = SimConfig::paper(small_workload(7, 120), StrategyKind::Workqueue)
            .with_sites(1)
            .with_capacity(600)
            .with_seed(7)
            .with_speeds(SpeedModel::Fixed(1e10))
            .with_faults(
                FaultConfig::none().with_trace(FaultTrace::parse(trace).expect("valid trace")),
            );
        if let Some(k) = ckpt {
            c = c.with_checkpointing(k);
        }
        c
    };
    let plain = GridSim::new(cfg(None)).run();
    let ckpt = GridSim::new(cfg(Some(CheckpointConfig::fixed(INTERVAL_S)))).run();

    assert_eq!(plain.tasks_completed, 120);
    assert_eq!(ckpt.tasks_completed, 120);
    assert_eq!(ckpt.worker_crashes, 1);
    // The crash must actually have destroyed compute in the baseline,
    // and more than one interval's worth (otherwise the bound is vacuous).
    assert!(
        plain.wasted_compute_s > INTERVAL_S,
        "baseline crash wasted only {}s",
        plain.wasted_compute_s
    );
    assert!(ckpt.checkpoints_written > 0);
    assert!(ckpt.checkpoint_restores >= 1, "the resume must restore");
    assert!(ckpt.work_saved_s > 0.0);
    // The bound: everything since the last durable image is re-executed,
    // which is under one interval of compute plus the aborted image-write
    // stall (the write itself takes seconds on the site's access link).
    let write_slack_s = 120.0;
    assert!(
        ckpt.wasted_compute_s < INTERVAL_S + write_slack_s,
        "re-executed work {}s exceeds one interval ({INTERVAL_S}s + slack)",
        ckpt.wasted_compute_s
    );
    assert!(
        ckpt.wasted_compute_s < plain.wasted_compute_s,
        "checkpointing must beat the baseline: {} vs {}",
        ckpt.wasted_compute_s,
        plain.wasted_compute_s
    );
    // Replays are byte-identical.
    let replay = GridSim::new(cfg(Some(CheckpointConfig::fixed(INTERVAL_S)))).run();
    assert_eq!(ckpt, replay);
}

/// (4) Checkpoint images die with the data server that held them: an
/// outage after images accumulated loses them, and a later crash cannot
/// restore what no longer exists.
#[test]
fn server_outage_loses_checkpoint_images() {
    // One site: every image lives on the server that fails at t=7200.
    let trace = "7200 server-fail 0\n7300 server-recover 0\n";
    let config = SimConfig::paper(small_workload(9, 120), StrategyKind::Workqueue)
        .with_sites(1)
        .with_capacity(20_000)
        .with_seed(9)
        .with_speeds(SpeedModel::Fixed(1e10))
        .with_faults(FaultConfig::none().with_trace(FaultTrace::parse(trace).expect("valid")))
        .with_checkpointing(CheckpointConfig::fixed(300.0));
    let report = GridSim::new(config).run();
    assert_eq!(report.tasks_completed, 120);
    assert_eq!(report.server_outages, 1);
    assert!(
        report.checkpoints_lost > 0,
        "a warm vault must lose images to the outage"
    );
}

/// Weibull repairs parse through the whole stack: shape 1 is the legacy
/// engine exactly, fatter tails change the run.
#[test]
fn weibull_repair_shape_round_trip() {
    let cfg = |shape: Option<f64>| {
        let mut f = FaultConfig::none().with_worker_faults(3_000.0, 400.0);
        if let Some(k) = shape {
            f = f.with_worker_repair_shape(k);
        }
        base_config(StrategyKind::Rest2, 2, 11).with_faults(f)
    };
    let legacy = GridSim::new(cfg(None)).run();
    let unit_shape = GridSim::new(cfg(Some(1.0))).run();
    assert_eq!(legacy, unit_shape, "shape 1 must be the exponential engine");
    let fat = GridSim::new(cfg(Some(0.5))).run();
    assert_eq!(fat.tasks_completed, 120);
    assert_ne!(
        fat.makespan_minutes, legacy.makespan_minutes,
        "fat-tailed repairs must change the run"
    );
}
