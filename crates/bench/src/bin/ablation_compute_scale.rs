//! Ablation — sensitivity to the calibrated compute cost.
//!
//! DESIGN.md §5 documents that the paper does not state Coadd's per-task
//! FLOP count; we calibrated `flops_per_file` so aggregate compute
//! dominates as the paper's figures imply. This ablation scales that
//! constant ×0.5 / ×1 / ×2 and verifies the paper's *qualitative* results
//! are insensitive to it: `rest` still beats `overlap` on both makespan
//! and transfers, and worker-centric still beats storage affinity.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;
use std::sync::Arc;

fn main() {
    let cli = Cli::parse();
    let scales: &[f64] = if cli.quick {
        &[0.5, 2.0]
    } else {
        &[0.5, 1.0, 2.0]
    };

    let mut table = Table::new(
        "Ablation: compute-cost scale",
        &["flops_scale", "algorithm", "makespan_min", "file_transfers"],
    );
    let mut ordering_holds = true;
    for &scale in scales {
        let mut coadd = cli.coadd_config();
        coadd.flops_per_file *= scale;
        let workload = Arc::new(coadd.generate());
        let mut makespans = Vec::new();
        for strategy in [
            StrategyKind::Rest,
            StrategyKind::Overlap,
            StrategyKind::StorageAffinity,
        ] {
            let config = SimConfig::paper(workload.clone(), strategy);
            let r = run(&cli, &config);
            table.push_row(vec![
                fmt(scale, 1),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
                r.file_transfers.to_string(),
            ]);
            makespans.push(r.makespan_minutes);
        }
        // rest < overlap and rest < storage affinity at every scale.
        ordering_holds &= makespans[0] < makespans[1] && makespans[0] < makespans[2];
    }
    table.emit(&cli, "ablation_compute_scale");

    check(
        &cli,
        "algorithm ranking is insensitive to the compute-cost calibration",
        ordering_holds,
    );
}
