//! Windowed determinism digests of the dispatched event stream.
//!
//! A [`DigestFold`] maintains one rolling FNV-1a 64-bit hash over every
//! event the engine dispatches (timestamp bits plus an encoding of the
//! event payload), folded *between* events in the run loop — never as DES
//! events, the same discipline as the probe sampler — so a digest-enabled
//! run is provably inert. The chain hash is snapshotted once per sim-time
//! window, together with intra-window *milestones* (the chain value every
//! `stride` events, `stride` doubling so a window never stores more than
//! [`MAX_MILESTONES`] of them).
//!
//! Two digest streams from runs that should be identical can then be
//! bisected with [`diff_digests`]: the first window whose end-of-window
//! chain differs is the first divergent window, and the first differing
//! milestone inside it narrows the divergence to a `stride`-wide ordinal
//! range — exact (`lo == hi`) while the stride is still 1. This is the
//! byte-identity witness the planned sharded engine validates against,
//! far cheaper than diffing full reports or traces.

use std::fmt::Write as _;

use crate::json::{self, JsonValue};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Milestone cap per window: when a window accumulates this many, every
/// second one is dropped and the stride doubles.
pub const MAX_MILESTONES: usize = 128;

#[inline]
fn fnv1a_word(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The in-run digest accumulator. One per simulation; the engine calls
/// [`DigestFold::record`] right after popping each event and
/// [`DigestFold::finish`] when the schedule drains.
#[derive(Debug)]
pub struct DigestFold {
    window_s: f64,
    chain: u64,
    ordinal: u64,
    cur: Option<WindowBuild>,
    done: Vec<WindowDigest>,
}

#[derive(Debug)]
struct WindowBuild {
    index: u64,
    start_ordinal: u64,
    count: u64,
    stride: u64,
    pending: u64,
    milestones: Vec<u64>,
}

impl DigestFold {
    /// A fold with the given sim-time window width (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    #[must_use]
    pub fn new(window_s: f64) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "digest window must be positive"
        );
        DigestFold {
            window_s,
            chain: FNV_OFFSET,
            ordinal: 0,
            cur: None,
            done: Vec::new(),
        }
    }

    /// Folds one dispatched event: its timestamp bits, then each payload
    /// word. `t_s` must be non-decreasing (simulation time).
    pub fn record(&mut self, t_s: f64, words: &[u64]) {
        let index = (t_s / self.window_s) as u64;
        if self.cur.as_ref().is_some_and(|w| w.index != index) {
            self.flush_window();
        }
        self.chain = fnv1a_word(self.chain, t_s.to_bits());
        for &w in words {
            self.chain = fnv1a_word(self.chain, w);
        }
        let start_ordinal = self.ordinal;
        let chain = self.chain;
        let w = self.cur.get_or_insert_with(|| WindowBuild {
            index,
            start_ordinal,
            count: 0,
            stride: 1,
            pending: 0,
            milestones: Vec::new(),
        });
        self.ordinal += 1;
        w.count += 1;
        w.pending += 1;
        if w.pending == w.stride {
            w.milestones.push(chain);
            w.pending = 0;
            if w.milestones.len() == MAX_MILESTONES {
                // Halve the resolution: keep every second milestone. The
                // cap is even, so the last kept milestone still marks the
                // most recent event and `pending` stays valid.
                w.milestones = w.milestones.iter().copied().skip(1).step_by(2).collect();
                w.stride *= 2;
            }
        }
    }

    fn flush_window(&mut self) {
        if let Some(w) = self.cur.take() {
            self.done.push(WindowDigest {
                index: w.index,
                t0_s: w.index as f64 * self.window_s,
                start_ordinal: w.start_ordinal,
                count: w.count,
                stride: w.stride,
                hash: self.chain,
                milestones: w.milestones,
            });
        }
    }

    /// Total events folded so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.ordinal
    }

    /// Seals the fold into its final stream (flushes the open window).
    #[must_use]
    pub fn finish(mut self) -> DigestStream {
        self.flush_window();
        DigestStream {
            window_s: self.window_s,
            events: self.ordinal,
            final_hash: self.chain,
            windows: self.done,
        }
    }
}

/// One sealed window of the digest stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDigest {
    /// Window index `k` (the window spans `[k·window_s, (k+1)·window_s)`).
    pub index: u64,
    /// Window start, sim seconds.
    pub t0_s: f64,
    /// Ordinal (0-based, run-global) of the window's first event.
    pub start_ordinal: u64,
    /// Events folded in this window.
    pub count: u64,
    /// Events per milestone (a power of two).
    pub stride: u64,
    /// Chain hash after the window's last event.
    pub hash: u64,
    /// Chain hash after each `stride`-th event of the window.
    pub milestones: Vec<u64>,
}

/// A complete digest stream: the sealed windows plus run totals.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestStream {
    /// Window width, sim seconds.
    pub window_s: f64,
    /// Total events folded.
    pub events: u64,
    /// Chain hash after the last event.
    pub final_hash: u64,
    /// Sealed windows, ascending by index (empty windows are skipped).
    pub windows: Vec<WindowDigest>,
}

impl DigestStream {
    /// Renders the stream as JSONL: one header line, one line per window.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"digest-header\",\"window_s\":{},\"events\":{},\"hash\":\"{:016x}\"}}",
            self.window_s, self.events, self.final_hash
        );
        for w in &self.windows {
            let _ = write!(
                out,
                "{{\"type\":\"digest\",\"w\":{},\"t0\":{},\"start\":{},\"n\":{},\
                 \"stride\":{},\"hash\":\"{:016x}\",\"m\":[",
                w.index, w.t0_s, w.start_ordinal, w.count, w.stride, w.hash
            );
            for (i, m) in w.milestones.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{m:016x}\"");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses a stream previously written by [`DigestStream::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty digest file")?;
        let header = json::parse(header).map_err(|e| format!("header: {e}"))?;
        if header.get("type").and_then(JsonValue::as_str) != Some("digest-header") {
            return Err("first line is not a digest-header".to_string());
        }
        let window_s = header
            .get("window_s")
            .and_then(JsonValue::as_f64)
            .ok_or("header missing window_s")?;
        let events = header
            .get("events")
            .and_then(JsonValue::as_u64)
            .ok_or("header missing events")?;
        let final_hash = parse_hash(&header, "hash").ok_or("header missing hash")?;
        let mut windows = Vec::new();
        for (lineno, line) in lines {
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if v.get("type").and_then(JsonValue::as_str) != Some("digest") {
                return Err(format!("line {}: not a digest line", lineno + 1));
            }
            let field = |name: &str| {
                v.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))
            };
            let milestones = v
                .get("m")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("line {}: missing m", lineno + 1))?
                .iter()
                .map(|m| {
                    m.as_str()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .ok_or_else(|| format!("line {}: bad milestone", lineno + 1))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            windows.push(WindowDigest {
                index: field("w")?,
                t0_s: v
                    .get("t0")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("line {}: missing t0", lineno + 1))?,
                start_ordinal: field("start")?,
                count: field("n")?,
                stride: field("stride")?,
                hash: parse_hash(&v, "hash")
                    .ok_or_else(|| format!("line {}: missing hash", lineno + 1))?,
                milestones,
            });
        }
        Ok(DigestStream {
            window_s,
            events,
            final_hash,
            windows,
        })
    }
}

fn parse_hash(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

/// Where two digest streams first disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first divergent window.
    pub window: u64,
    /// That window's start, sim seconds.
    pub t0_s: f64,
    /// First event ordinal that may differ (0-based, run-global).
    pub ordinal_lo: u64,
    /// Last event ordinal that may differ. `lo == hi` is an exact pinpoint.
    pub ordinal_hi: u64,
    /// Human-readable detail for the CLI.
    pub detail: String,
}

/// Bisects two digest streams: `Ok(None)` when identical, the first
/// divergence otherwise.
///
/// # Errors
///
/// Returns an error when the streams are not comparable (different window
/// widths).
pub fn diff_digests(a: &DigestStream, b: &DigestStream) -> Result<Option<Divergence>, String> {
    if a.window_s != b.window_s {
        return Err(format!(
            "streams are not comparable: window {} s vs {} s",
            a.window_s, b.window_s
        ));
    }
    for k in 0..a.windows.len().max(b.windows.len()) {
        match (a.windows.get(k), b.windows.get(k)) {
            (Some(wa), Some(wb)) => {
                if wa.index != wb.index {
                    let (first, ordinal) = if wa.index < wb.index {
                        (wa, wa.start_ordinal)
                    } else {
                        (wb, wb.start_ordinal)
                    };
                    return Ok(Some(Divergence {
                        window: first.index,
                        t0_s: first.t0_s,
                        ordinal_lo: ordinal,
                        ordinal_hi: ordinal,
                        detail: format!(
                            "window {} exists in only one stream (indices {} vs {})",
                            first.index, wa.index, wb.index
                        ),
                    }));
                }
                if wa.hash == wb.hash && wa.count == wb.count {
                    continue;
                }
                return Ok(Some(pinpoint(wa, wb)));
            }
            (Some(w), None) | (None, Some(w)) => {
                return Ok(Some(Divergence {
                    window: w.index,
                    t0_s: w.t0_s,
                    ordinal_lo: w.start_ordinal,
                    ordinal_hi: w.start_ordinal + w.count.saturating_sub(1),
                    detail: format!("window {} present in only one stream", w.index),
                }));
            }
            (None, None) => break,
        }
    }
    if a.events != b.events || a.final_hash != b.final_hash {
        // All windows matched but the totals disagree (e.g. truncation).
        let last = a.windows.last().map_or(0, |w| w.index);
        return Ok(Some(Divergence {
            window: last,
            t0_s: a.windows.last().map_or(0.0, |w| w.t0_s),
            ordinal_lo: a.events.min(b.events),
            ordinal_hi: a.events.max(b.events).saturating_sub(1),
            detail: format!(
                "window set identical but totals differ: {} vs {} events",
                a.events, b.events
            ),
        }));
    }
    Ok(None)
}

fn pinpoint(wa: &WindowDigest, wb: &WindowDigest) -> Divergence {
    let start = wa.start_ordinal;
    let max_count = wa.count.max(wb.count);
    if wa.stride == wb.stride {
        let shared = wa.milestones.len().min(wb.milestones.len());
        for j in 0..shared {
            if wa.milestones[j] != wb.milestones[j] {
                let lo = start + j as u64 * wa.stride;
                let hi = start + (j as u64 + 1) * wa.stride - 1;
                return Divergence {
                    window: wa.index,
                    t0_s: wa.t0_s,
                    ordinal_lo: lo,
                    ordinal_hi: hi,
                    detail: format!(
                        "first divergent milestone {} of window {} (stride {})",
                        j, wa.index, wa.stride
                    ),
                };
            }
        }
        // Shared milestones agree: the divergence sits in the tail.
        let covered = shared as u64 * wa.stride;
        Divergence {
            window: wa.index,
            t0_s: wa.t0_s,
            ordinal_lo: start + covered,
            ordinal_hi: start + max_count.saturating_sub(1).max(covered),
            detail: format!(
                "divergence after the last common milestone of window {}",
                wa.index
            ),
        }
    } else {
        Divergence {
            window: wa.index,
            t0_s: wa.t0_s,
            ordinal_lo: start,
            ordinal_hi: start + max_count.saturating_sub(1),
            detail: format!(
                "window {} strides differ ({} vs {}); cannot narrow further",
                wa.index, wa.stride, wb.stride
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_events(n: u64, window_s: f64, perturb: Option<u64>) -> DigestStream {
        let mut f = DigestFold::new(window_s);
        for i in 0..n {
            let word = if perturb == Some(i) { i ^ 0xdead } else { i };
            f.record(i as f64, &[7, word]);
        }
        f.finish()
    }

    #[test]
    fn identical_inputs_identical_streams() {
        let a = fold_events(5000, 100.0, None);
        let b = fold_events(5000, 100.0, None);
        assert_eq!(a, b);
        assert_eq!(diff_digests(&a, &b).unwrap(), None);
        assert_eq!(a.events, 5000);
        assert_eq!(a.windows.len(), 50);
    }

    #[test]
    fn single_event_perturbation_is_pinpointed_exactly() {
        // 100 events per window keeps the stride at 1 → exact ordinals.
        let a = fold_events(5000, 100.0, None);
        let b = fold_events(5000, 100.0, Some(2345));
        let d = diff_digests(&a, &b).unwrap().expect("must diverge");
        assert_eq!(d.window, 23);
        assert_eq!(d.ordinal_lo, 2345);
        assert_eq!(d.ordinal_hi, 2345);
    }

    #[test]
    fn perturbation_in_big_window_narrows_to_stride_range() {
        // One giant window: stride grows past 1, pinpoint is a range that
        // still contains the perturbed ordinal.
        let a = fold_events(5000, 1e9, None);
        let b = fold_events(5000, 1e9, Some(2345));
        let d = diff_digests(&a, &b).unwrap().expect("must diverge");
        assert_eq!(d.window, 0);
        assert!(d.ordinal_lo <= 2345 && 2345 <= d.ordinal_hi);
        assert!(d.ordinal_hi - d.ordinal_lo < 5000);
    }

    #[test]
    fn milestones_stay_capped_and_stride_is_power_of_two() {
        let s = fold_events(100_000, 1e9, None);
        assert_eq!(s.windows.len(), 1);
        let w = &s.windows[0];
        assert!(w.milestones.len() <= MAX_MILESTONES);
        assert!(w.stride.is_power_of_two());
        assert!(w.stride > 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let s = fold_events(777, 50.0, None);
        let text = s.to_jsonl();
        let back = DigestStream::parse_jsonl(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn truncated_stream_reports_divergence() {
        let a = fold_events(500, 100.0, None);
        let mut b = a.clone();
        b.windows.pop();
        b.events = 400;
        let d = diff_digests(&a, &b).unwrap().expect("must diverge");
        assert_eq!(d.window, 4);
    }

    #[test]
    fn incompatible_windows_error() {
        let a = fold_events(10, 100.0, None);
        let b = fold_events(10, 50.0, None);
        assert!(diff_digests(&a, &b).is_err());
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut f = DigestFold::new(10.0);
        f.record(5.0, &[1]);
        f.record(95.0, &[2]);
        let s = f.finish();
        let idx: Vec<u64> = s.windows.iter().map(|w| w.index).collect();
        assert_eq!(idx, vec![0, 9]);
    }

    #[test]
    #[should_panic(expected = "digest window must be positive")]
    fn zero_window_panics() {
        let _ = DigestFold::new(0.0);
    }
}
