//! # gridsched-topology — hierarchical grid topologies
//!
//! Replaces the *Tiers* structural topology generator used in the paper
//! (Doar, "A Better Model for Generating Test Networks", Globecom 1996).
//! Tiers produces 3-level hierarchical networks — WAN, MAN, LAN — which is
//! exactly the structure of multi-site grids: every *site* (cluster) hangs
//! off a LAN gateway, LAN gateways hang off MAN routers, MAN routers off a
//! WAN core.
//!
//! This crate provides:
//!
//! * [`Graph`] — a small weighted undirected multigraph with typed nodes,
//! * [`TiersConfig`] / [`generate`] — a seeded 3-tier generator with
//!   per-tier bandwidth/latency ranges and optional redundant MAN–MAN links,
//! * [`RouteTable`] — Dijkstra (latency-weighted) routes from every site
//!   gateway to the global file server and scheduler.
//!
//! The paper's evaluation uses **5 different topologies with 90 sites each**
//! and averages results over them; [`TiersConfig::paper`] reproduces that
//! setup for seeds `0..5`.
//!
//! ```
//! use gridsched_topology::{generate, TiersConfig};
//!
//! let topo = generate(&TiersConfig::paper(0));
//! assert_eq!(topo.sites.len(), 90);
//! let route = topo.routes.site_to_file_server(5);
//! assert!(!route.links.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod graph;
pub mod route;
pub mod tiers;

pub use graph::{EdgeId, Graph, LinkSpec, NodeId, NodeKind};
pub use route::{Route, RouteTable};
pub use tiers::{generate, TierRange, TiersConfig, Topology};
