//! Ablation — network faults & transfer resilience: does the transfer
//! guard (timeout / retry / failover / resume) earn its keep against a
//! naive restart-from-zero retry under a scripted backbone flap storm?
//!
//! Two faces:
//!
//! 1. **Zero-link-fault equivalence**: with no link faults configured the
//!    guard's armed-but-always-cancelled deadlines must change *nothing* —
//!    identical makespan, transfer counts and dispatched-event counts on a
//!    clean run. This is the discipline gate: resilience machinery that
//!    perturbs healthy runs is a bug, not a feature.
//! 2. **Backbone flap storm**: the two most-shared links on the
//!    site→file-server routes flap on a fixed cadence (scripted, so every
//!    configuration sees the *same* outages). Three contenders: no guard
//!    (flows stall through each outage), a naive guard that restarts every
//!    timed-out fetch from byte zero, and the full guard (alternate-replica
//!    failover + partial-transfer resume). The full guard must beat naive
//!    restart on re-transferred bytes and makespan.
//!
//! The storm is tied to one topology (link indices are meaningless across
//! topology seeds), so face 2 runs a single replicate on the first
//! `--seeds` entry; face 1 averages over all of them as usual.
//!
//! Results go to `BENCH_netfaults.json` (machine-readable; consumed by
//! CI) in the working directory; tables follow the usual `--out` rules.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::{
    run_averaged, FaultConfig, FaultEvent, FaultKind, FaultTrace, MetricsReport, SimConfig,
};
use gridsched_topology::{generate, TiersConfig};
use gridsched_workload::Workload;

/// Paper grid size (Table 1): the storm's backbone scan covers the routes
/// these sites actually use.
const SITES: usize = 10;

/// Storm cadence: each backbone link cuts out for `DOWN_S` every
/// `PERIOD_S`, staggered so the two links never flap in lockstep, from
/// shortly after warm-up until well past any plausible makespan.
const FIRST_S: f64 = 1_200.0;
const PERIOD_S: f64 = 5_400.0;
const DOWN_S: f64 = 900.0;
const HORIZON_S: f64 = 2_000_000.0;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let topo_seed = cli.seeds[0];

    let clean = clean_face(&cli, &workload);
    let storm = storm_face(&cli, topo_seed);

    let json = to_json(&cli, topo_seed, &clean, &storm);
    if let Err(e) = std::fs::write("BENCH_netfaults.json", &json) {
        eprintln!("warning: could not write BENCH_netfaults.json: {e}");
    } else {
        println!("wrote BENCH_netfaults.json");
    }

    run_checks(&cli, &clean, &storm);
}

fn guard(config: SimConfig) -> SimConfig {
    config
        .with_transfer_timeout(3.0)
        .with_transfer_retries(4)
        .with_retry_backoff(60.0)
}

struct CleanFace {
    plain: MetricsReport,
    guarded: MetricsReport,
}

impl CleanFace {
    /// The guard changed nothing a clean run can observe: same makespan,
    /// same transfer volume, same dispatched-event count, and it never
    /// fired.
    fn guard_inert(&self) -> bool {
        self.guarded.xfer_timeouts == 0
            && self.plain.makespan_minutes == self.guarded.makespan_minutes
            && self.plain.file_transfers == self.guarded.file_transfers
            && self.plain.events_dispatched == self.guarded.events_dispatched
    }
}

/// Face 1: no link faults — the guard must be invisible.
fn clean_face(cli: &Cli, workload: &Arc<Workload>) -> CleanFace {
    let base = SimConfig::paper(workload.clone(), StrategyKind::Rest2);
    let plain = run(cli, &base);
    let guarded = run(cli, &guard(base));

    let mut table = Table::new(
        "Ablation: transfer guard on a clean network (rest.2, no link faults)",
        &[
            "configuration",
            "makespan_min",
            "file_transfers",
            "events",
            "xfer_timeouts",
        ],
    );
    for (label, r) in [("no guard", &plain), ("guard armed", &guarded)] {
        table.push_row(vec![
            label.to_string(),
            fmt(r.makespan_minutes, 0),
            r.file_transfers.to_string(),
            r.events_dispatched.to_string(),
            r.xfer_timeouts.to_string(),
        ]);
    }
    table.emit(cli, "ablation_netfaults_clean");
    CleanFace { plain, guarded }
}

/// The links most shared across the sites' file-server routes — the
/// backbone. Cutting one hits many sites at once, which is exactly the
/// correlated-outage structure the guard has to survive.
fn backbone_links(topo_seed: u64) -> Vec<usize> {
    let topo = generate(&TiersConfig::paper(topo_seed));
    let mut shared: BTreeMap<usize, usize> = BTreeMap::new();
    for site in 0..SITES {
        for l in &topo.routes.site_to_file_server(site).links {
            *shared.entry(l.index()).or_insert(0) += 1;
        }
    }
    let mut links: Vec<(usize, usize)> = shared.into_iter().filter(|&(_, n)| n >= 2).collect();
    // Most-shared first; link index is the deterministic tie-break.
    links.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    links.into_iter().take(2).map(|(l, _)| l).collect()
}

fn storm_trace(links: &[usize]) -> FaultTrace {
    let mut events = Vec::new();
    for (i, &link) in links.iter().enumerate() {
        let offset = i as f64 * PERIOD_S / links.len() as f64;
        let mut t = FIRST_S + offset;
        while t < HORIZON_S {
            events.push(FaultEvent {
                at_s: t,
                kind: FaultKind::LinkDown { link },
            });
            events.push(FaultEvent {
                at_s: t + DOWN_S,
                kind: FaultKind::LinkUp { link },
            });
            t += PERIOD_S;
        }
    }
    FaultTrace::new(events)
}

struct StormFace {
    links: Vec<usize>,
    no_guard: MetricsReport,
    naive: MetricsReport,
    resilient: MetricsReport,
}

/// Face 2: the scripted backbone flap storm, one topology replicate.
///
/// The storm runs the *transfer-bound* regime (the paper's workload with
/// 200 MB files instead of 25 MB): restart-from-zero only costs wall-clock
/// when the re-sent bytes sit on the critical path, and with small files
/// the compute dominates and every retry policy ties. Big files are where
/// a resilience layer earns or loses its keep.
fn storm_face(cli: &Cli, topo_seed: u64) -> StormFace {
    let links = backbone_links(topo_seed);
    assert!(
        !links.is_empty(),
        "paper topology must share at least one backbone link across sites"
    );
    let workload = Arc::new(cli.coadd_config().with_file_size_mb(200.0).generate());
    let base = SimConfig::paper(workload, StrategyKind::Rest2)
        .with_faults(FaultConfig::none().with_trace(storm_trace(&links)));
    let no_guard = run_averaged(&base, &[topo_seed]);
    let naive = run_averaged(&guard(base.clone()).with_naive_retry(), &[topo_seed]);
    let resilient = run_averaged(&guard(base), &[topo_seed]);

    let mut table = Table::new(
        format!(
            "Ablation: backbone flap storm on links {links:?} (rest.2, 200 MB files, \
             {DOWN_S:.0}s cut every {PERIOD_S:.0}s per link)"
        ),
        &[
            "configuration",
            "makespan_min",
            "timeouts",
            "retries",
            "failovers",
            "requeues",
            "resumed_gb",
            "retransmitted_gb",
        ],
    );
    for (label, r) in [
        ("no guard (flows stall)", &no_guard),
        ("naive retry (restart from zero)", &naive),
        ("failover + resume", &resilient),
    ] {
        table.push_row(vec![
            label.to_string(),
            fmt(r.makespan_minutes, 0),
            r.xfer_timeouts.to_string(),
            r.xfer_retries.to_string(),
            r.xfer_failovers.to_string(),
            r.flows_requeued.to_string(),
            fmt(r.xfer_bytes_resumed / 1e9, 2),
            fmt(r.xfer_bytes_retransmitted / 1e9, 2),
        ]);
    }
    table.emit(cli, "ablation_netfaults_storm");
    StormFace {
        links,
        no_guard,
        naive,
        resilient,
    }
}

fn run_checks(cli: &Cli, clean: &CleanFace, storm: &StormFace) {
    // Face 1: the discipline gate.
    check(
        cli,
        "guard on a clean network is invisible (same makespan, transfers, events)",
        clean.guard_inert(),
    );

    // Face 2: the storm must actually bite both guarded contenders — a
    // storm nobody notices proves nothing.
    check(
        cli,
        "the backbone flap storm forces transfer timeouts",
        storm.naive.xfer_timeouts > 0 && storm.resilient.xfer_timeouts > 0,
    );
    check(
        cli,
        "scripted outages open link windows in every contender",
        storm.no_guard.link_outages > 0
            && storm.naive.link_outages > 0
            && storm.resilient.link_outages > 0,
    );
    // Resume keeps every delivered byte; naive restart throws them away.
    check(
        cli,
        "resume re-transfers strictly fewer bytes than naive restart",
        storm.resilient.xfer_bytes_retransmitted < storm.naive.xfer_bytes_retransmitted,
    );
    check(
        cli,
        "naive restart measurably re-sends delivered bytes",
        storm.naive.xfer_bytes_retransmitted > 0.0,
    );
    check(
        cli,
        "resume actually rescues partial transfers",
        storm.resilient.xfer_bytes_resumed > 0.0,
    );
    check(
        cli,
        "failover + resume beats naive restart on makespan",
        storm.resilient.makespan_minutes <= storm.naive.makespan_minutes,
    );
    // Every run still finishes the whole workload under the storm.
    check(
        cli,
        "all storm contenders complete every task",
        storm.no_guard.tasks_completed == storm.naive.tasks_completed
            && storm.naive.tasks_completed == storm.resilient.tasks_completed,
    );
}

fn to_json(cli: &Cli, topo_seed: u64, clean: &CleanFace, storm: &StormFace) -> String {
    let point = |r: &MetricsReport| {
        format!(
            "{{\"makespan_min\": {:.3}, \"timeouts\": {}, \"retries\": {}, \
             \"failovers\": {}, \"requeues\": {}, \"resumed_gb\": {:.4}, \
             \"retransmitted_gb\": {:.4}, \"link_outages\": {}}}",
            r.makespan_minutes,
            r.xfer_timeouts,
            r.xfer_retries,
            r.xfer_failovers,
            r.flows_requeued,
            r.xfer_bytes_resumed / 1e9,
            r.xfer_bytes_retransmitted / 1e9,
            r.link_outages
        )
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"gridsched.ablation_netfaults.v1\",");
    let _ = writeln!(out, "  \"quick\": {},", cli.quick);
    let _ = writeln!(out, "  \"topology_seed\": {topo_seed},");
    let _ = writeln!(
        out,
        "  \"backbone_links\": [{}],",
        storm
            .links
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"clean\": {{");
    let _ = writeln!(
        out,
        "    \"plain\": {{\"makespan_min\": {:.3}, \"file_transfers\": {}, \"events\": {}}},",
        clean.plain.makespan_minutes, clean.plain.file_transfers, clean.plain.events_dispatched
    );
    let _ = writeln!(
        out,
        "    \"guarded\": {{\"makespan_min\": {:.3}, \"file_transfers\": {}, \"events\": {}}},",
        clean.guarded.makespan_minutes,
        clean.guarded.file_transfers,
        clean.guarded.events_dispatched
    );
    let _ = writeln!(out, "    \"guard_inert\": {}", clean.guard_inert());
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"storm\": {{");
    let _ = writeln!(out, "    \"no_guard\": {},", point(&storm.no_guard));
    let _ = writeln!(out, "    \"naive\": {},", point(&storm.naive));
    let _ = writeln!(out, "    \"resilient\": {},", point(&storm.resilient));
    let _ = writeln!(
        out,
        "    \"resilient_vs_naive_makespan\": {:.4},",
        storm.resilient.makespan_minutes / storm.naive.makespan_minutes
    );
    let _ = writeln!(
        out,
        "    \"resilient_beats_naive_retransmit\": {},",
        storm.resilient.xfer_bytes_retransmitted < storm.naive.xfer_bytes_retransmitted
    );
    let _ = writeln!(
        out,
        "    \"resilient_beats_naive_makespan\": {}",
        storm.resilient.makespan_minutes <= storm.naive.makespan_minutes
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}
