//! Identifiers shared between the schedulers and the grid simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a grid site (cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a worker: its site plus its index within the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId {
    /// The site the worker lives at.
    pub site: SiteId,
    /// The worker's index within its site (`0..workers_per_site`).
    pub index: u32,
}

impl WorkerId {
    /// Creates a worker id.
    #[must_use]
    pub fn new(site: SiteId, index: u32) -> Self {
        WorkerId { site, index }
    }

    /// Flattens to a dense global index given the per-site worker count.
    #[must_use]
    pub fn flat_index(self, workers_per_site: usize) -> usize {
        self.site.index() * workers_per_site + self.index as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}w{}", self.site, self.index)
    }
}

/// Static facts about the simulated grid that schedulers may use at
/// initialisation: the model explicitly allows the global scheduler to know
/// how many sites and workers exist (it receives their requests), but *not*
/// dynamic state like CPU loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridEnv {
    /// Number of active sites.
    pub sites: usize,
    /// Workers per site (uniform across sites, as in the paper's setup).
    pub workers_per_site: usize,
    /// Per-site storage capacity in files (Table 1).
    pub capacity_files: usize,
}

impl GridEnv {
    /// Total number of workers.
    #[must_use]
    pub fn total_workers(&self) -> usize {
        self.sites * self.workers_per_site
    }

    /// Iterates over every worker id.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        let wps = self.workers_per_site as u32;
        (0..self.sites as u32).flat_map(move |s| (0..wps).map(move |w| WorkerId::new(SiteId(s), w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense() {
        let env = GridEnv {
            sites: 3,
            workers_per_site: 4,
            capacity_files: 100,
        };
        let all: Vec<usize> = env.workers().map(|w| w.flat_index(4)).collect();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        assert_eq!(env.total_workers(), 12);
    }

    #[test]
    fn display_formats() {
        let w = WorkerId::new(SiteId(2), 5);
        assert_eq!(w.to_string(), "s2w5");
    }
}
