//! Inverted file→task index and incrementally-maintained per-site views.
//!
//! The paper's basic algorithm re-derives `|F_t|` (and `ref_t`) for every
//! pending task by probing the requesting site's storage — `O(T·I)` per
//! scheduling decision (§4.4). Because storage contents change only when a
//! file arrives, is evicted, or is referenced, the same quantities can be
//! maintained **incrementally**: an inverted index maps each file to the
//! tasks that read it, and every storage change updates the per-task
//! overlap counters of the affected tasks. A scheduling decision then
//! degenerates to an `O(T)` scan over cached counters.
//!
//! An `O(T)` scan per decision is still an `O(T²)` run, which caps the
//! engine far below 10⁵ workers. The same storage-change notifications can
//! therefore also maintain a **priority index**: every [`SiteView`] may
//! carry a [`TaskRank`] that buckets the pending tasks by their (small
//! integer) overlap or missing-file count, each bucket an ordered set.
//! A scheduling decision then degenerates to reading the best few bucket
//! heads — `O(log T)` amortized — instead of scanning the pool.
//!
//! ## Sparse membership propagation
//!
//! With one `TaskRank` per site, *eagerly* mirroring pool membership into
//! every rank makes each pool insert/remove an `O(S log T)` broadcast —
//! the dominant cost of a scheduling decision once the site count grows
//! (the `perf_scale` sites sweep showed wall time ~linear in `S`).
//! Membership therefore propagates **lazily**:
//!
//! * a pool *removal* touches no rank at all — the entry goes stale in
//!   place, and a read that encounters it skips it via the caller's `live`
//!   predicate and physically removes it then (each stale entry is
//!   repaired at most once per site, and only if it ever surfaces near a
//!   bucket head at that site);
//! * a pool *insert* (requeue, replica-cap release) appends to a shared
//!   [`PendingLog`]; each view holds a cursor and replays the suffix on
//!   its next read ([`SiteView::sync_pending`]) — `O(1)` at event time,
//!   each (site, insert) pair processed once.
//!
//! Storage-change notifications stay eager — they are site-local already —
//! so every *physical* rank entry always carries current coordinates; only
//! pool membership can go stale. The `combined` metric's queue-wide
//! normalisers cannot be read off a rank with stale members, so they move
//! to [`ComboAggregates`], which maintains them exactly with per-file site
//! residency lists: a membership change costs `O(Σ_f |sites holding f|)`
//! over the task's files — flat in `S` for data-local workloads — instead
//! of `O(S)`.
//!
//! None of this changes any scheduling decision — [`weigh_all_indexed`]
//! and the ranked picks are property-tested to agree exactly with
//! [`crate::weight::weigh_all_naive`] plus [`crate::choose::ChooseTask`] —
//! it only changes the constant/complexity; the `sched_decision` criterion
//! bench and the `perf_scale` harness quantify the gap.

use std::collections::BTreeSet;

use rand::Rng;

use gridsched_storage::SiteStore;
use gridsched_telemetry::{Counter, Histogram, Telemetry};
use gridsched_workload::{FileId, TaskId, Workload};

use crate::choose::ChooseTask;
use crate::pool::TaskPool;
use crate::weight::{combined_weight, rest_weight, total_rest_from_counts, WeightMetric};

/// Compressed-sparse-row inverted index: for each file, the tasks reading
/// it; plus per-task input-set sizes (`|t|`).
///
/// Immutable after construction; shared by all sites' views.
#[derive(Debug, Clone)]
pub struct FileIndex {
    offsets: Vec<u32>,
    task_lists: Vec<u32>,
    task_sizes: Vec<u32>,
}

impl FileIndex {
    /// Builds the index from a workload.
    #[must_use]
    pub fn build(workload: &Workload) -> Self {
        let num_files = workload.file_count();
        let mut counts = vec![0u32; num_files];
        for t in workload.tasks() {
            for f in t.files() {
                counts[f.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_files + 1);
        let mut acc = 0u32;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        let mut task_lists = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for t in workload.tasks() {
            for f in t.files() {
                let slot = &mut cursor[f.index()];
                task_lists[*slot as usize] = t.id.0;
                *slot += 1;
            }
        }
        let task_sizes = workload
            .tasks()
            .iter()
            .map(|t| t.file_count() as u32)
            .collect();
        FileIndex {
            offsets,
            task_lists,
            task_sizes,
        }
    }

    /// The tasks reading `file`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if the file is out of range.
    #[must_use]
    pub fn tasks_of(&self, file: FileId) -> &[u32] {
        let lo = self.offsets[file.index()] as usize;
        let hi = self.offsets[file.index() + 1] as usize;
        &self.task_lists[lo..hi]
    }

    /// `|t|` — the input-set size of `task`.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range.
    #[must_use]
    pub fn task_size(&self, task: TaskId) -> u32 {
        self.task_sizes[task.index()]
    }

    /// Number of tasks covered.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_sizes.len()
    }

    /// Number of files covered.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The largest input-set size over all tasks (`max |t|`) — the number
    /// of levels a [`TaskRank`] needs.
    #[must_use]
    pub fn max_task_size(&self) -> u32 {
        self.task_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// An incrementally-maintained per-site priority index over the *pending*
/// tasks, bucketed by the metric's small-integer level:
///
/// * `Overlap` — level `|F_t|`, best bucket is the **highest** level;
/// * `Rest` / `Combined` — level `|t| − |F_t|` (missing files), best
///   bucket is the **lowest** level.
///
/// Within a bucket, tasks are ordered so the bucket head is exactly the
/// task the full-scan argmax would select among that bucket: ascending id
/// for `Overlap`/`Rest` (all weights in a bucket are equal there), and
/// descending cached reference sum (ties by id) for finite `Combined`
/// buckets. The zero-missing `Combined` bucket orders by id alone — its
/// weight is `+∞` regardless of references.
///
/// The owning [`SiteView`] keeps the bucket coordinates in sync on every
/// counter change. Pool membership propagates **lazily** (see the module
/// docs): a member may be stale — no longer pending — until a read at this
/// site encounters and repairs it, so `len()` bounds the pending
/// population from above rather than equalling it. Each maintenance step
/// is one `BTreeSet` remove + insert — `O(log T)`.
#[derive(Debug, Clone)]
pub struct TaskRank {
    metric: WeightMetric,
    /// `buckets[level]` — ordered `(key, task id)`; see [`TaskRank`] docs
    /// for the key.
    buckets: Vec<BTreeSet<(u64, u32)>>,
    member: Vec<bool>,
    level_of: Vec<u32>,
    key_of: Vec<u64>,
    /// Member tasks' cached `Σ r_i` (mirrors [`SiteView::refsum`] so key
    /// changes need no caller-side bookkeeping).
    refsum_of: Vec<u64>,
    len: usize,
}

impl TaskRank {
    fn new(metric: WeightMetric, num_tasks: usize, max_level: u32) -> Self {
        let levels = max_level as usize + 1;
        TaskRank {
            metric,
            buckets: vec![BTreeSet::new(); levels],
            member: vec![false; num_tasks],
            level_of: vec![0; num_tasks],
            key_of: vec![0; num_tasks],
            refsum_of: vec![0; num_tasks],
            len: 0,
        }
    }

    /// Number of member tasks (pending plus not-yet-repaired stale).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no task is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The metric whose ordering this rank maintains.
    #[must_use]
    pub fn metric(&self) -> WeightMetric {
        self.metric
    }

    fn level_for(&self, size: u32, overlap: u32) -> u32 {
        match self.metric {
            WeightMetric::Overlap => overlap,
            WeightMetric::Rest | WeightMetric::Combined => size - overlap,
        }
    }

    fn key_for(&self, level: u32, refsum: u64) -> u64 {
        // Only finite Combined buckets order by references; level 0 there
        // means zero missing files (weight +∞ for every reference count).
        if self.metric == WeightMetric::Combined && level > 0 {
            u64::MAX - refsum
        } else {
            0
        }
    }

    fn insert(&mut self, t: usize, level: u32, refsum: u64) {
        if self.member[t] {
            return;
        }
        let key = self.key_for(level, refsum);
        self.buckets[level as usize].insert((key, t as u32));
        self.member[t] = true;
        self.level_of[t] = level;
        self.key_of[t] = key;
        self.refsum_of[t] = refsum;
        self.len += 1;
    }

    fn remove(&mut self, t: usize) {
        if !self.member[t] {
            return;
        }
        let level = self.level_of[t] as usize;
        self.buckets[level].remove(&(self.key_of[t], t as u32));
        self.member[t] = false;
        self.len -= 1;
    }

    /// Re-files `t` after its cached counters changed.
    fn sync(&mut self, t: usize, level: u32, refsum: u64) {
        if !self.member[t] {
            return;
        }
        self.refsum_of[t] = refsum;
        let key = self.key_for(level, refsum);
        if level == self.level_of[t] && key == self.key_of[t] {
            return;
        }
        let old_level = self.level_of[t] as usize;
        self.buckets[old_level].remove(&(self.key_of[t], t as u32));
        self.buckets[level as usize].insert((key, t as u32));
        self.level_of[t] = level;
        self.key_of[t] = key;
    }
}

/// Hot-path instruments of the lazy-membership machinery, shared by every
/// [`SiteView`] of one scheduler (cloning shares the underlying cells).
///
/// The default handles are inert — recording costs one branch — so the
/// instrumented paths are byte-identical with telemetry off, and the
/// numbers confirm the complexity claims with it on: mean repairs per pick
/// should stay flat as the site count grows (each stale entry is repaired
/// at most once per site), and replay lengths track the requeue window,
/// not the run length.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    /// Ranked reads ([`SiteView::pick_ranked`] /
    /// [`SiteView::top_overlap_where`]) — `scheduler.rank.picks`.
    pub picks: Counter,
    /// Stale entries physically removed during ranked reads —
    /// `scheduler.rank.repairs`.
    pub repairs: Counter,
    /// [`SiteView::sync_pending`] calls with a rank attached —
    /// `scheduler.pending_log.replays`.
    pub replays: Counter,
    /// Journal entries replayed per sync —
    /// `scheduler.pending_log.replay_len`.
    pub replay_len: Histogram,
}

impl RankStats {
    /// Handles registered on `telemetry` under the canonical instrument
    /// names (inert handles when the collector is disabled).
    #[must_use]
    pub fn attach(telemetry: &Telemetry) -> Self {
        RankStats {
            picks: telemetry.counter("scheduler.rank.picks"),
            repairs: telemetry.counter("scheduler.rank.repairs"),
            replays: telemetry.counter("scheduler.pending_log.replays"),
            replay_len: telemetry.histogram("scheduler.pending_log.replay_len"),
        }
    }
}

/// Shared journal of *become-live* membership transitions (requeues after
/// faults, replica-cap releases): the scheduler appends in `O(1)`; each
/// [`SiteView`] holds a cursor and replays the suffix it has not seen yet
/// on its next read ([`SiteView::sync_pending`]).
///
/// Pool *removals* are never journaled — stale rank entries are filtered
/// (and repaired) lazily at read time instead.
#[derive(Debug, Clone, Default)]
pub struct PendingLog {
    entries: Vec<u32>,
}

impl PendingLog {
    /// Amortization period for [`PendingLog::record`]'s compaction sweep.
    const COMPACT_EVERY: usize = 4096;

    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        PendingLog::default()
    }

    /// Records that `task` (re-)became live for the per-site ranks, and
    /// periodically drains the prefix every view has already replayed —
    /// the journal stays bounded by the in-flight window (entries some
    /// cursor still trails) instead of growing for the run's lifetime.
    /// The sweep is `O(views)` once per [`PendingLog::COMPACT_EVERY`]
    /// appends.
    pub fn record(&mut self, task: TaskId, views: &mut [SiteView]) {
        self.entries.push(task.0);
        if self.entries.len().is_multiple_of(Self::COMPACT_EVERY) {
            let replayed = views
                .iter()
                .map(|v| v.log_cursor)
                .min()
                .unwrap_or(self.entries.len());
            if replayed > 0 {
                self.entries.drain(..replayed);
                for v in views {
                    v.log_cursor -= replayed;
                }
            }
        }
    }

    /// Number of journaled transitions still retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Incrementally-maintained per-site overlap state.
///
/// For every task `t`, caches:
/// * `overlap[t]` — `|F_t|` against this site's *current* storage,
/// * `refsum[t]` — `Σ_{i ∈ F_t} r_i` over the resident overlap.
///
/// The owner must forward every storage change:
/// [`SiteView::on_file_added`] after an insert,
/// [`SiteView::on_file_evicted`] for each eviction, and
/// [`SiteView::on_task_reference`] after each `r_i` increment.
#[derive(Debug, Clone)]
pub struct SiteView {
    overlap: Vec<u32>,
    refsum: Vec<u64>,
    rank: Option<TaskRank>,
    /// How far into the shared [`PendingLog`] this view has replayed.
    log_cursor: usize,
    /// Hot-path instruments (inert by default; see [`RankStats`]).
    stats: RankStats,
}

impl SiteView {
    /// A view for an initially-empty site storage.
    #[must_use]
    pub fn new(num_tasks: usize) -> Self {
        SiteView {
            overlap: vec![0; num_tasks],
            refsum: vec![0; num_tasks],
            rank: None,
            log_cursor: 0,
            stats: RankStats::default(),
        }
    }

    /// Installs hot-path instrument handles (typically shared across all
    /// of a scheduler's views). Recording through inert handles — the
    /// default — is a no-op, so this never changes scheduling behaviour.
    pub fn set_stats(&mut self, stats: RankStats) {
        self.stats = stats;
    }

    /// Replays the [`PendingLog`] suffix this view has not seen yet,
    /// admitting every journaled task that is still live (per the caller's
    /// predicate) into the priority index. Call before any ranked read.
    ///
    /// `O(new entries)` — each (site, journal entry) pair is processed at
    /// most once over the run. No-op beyond cursor advancement when no
    /// rank is attached.
    pub fn sync_pending<F: FnMut(TaskId) -> bool>(
        &mut self,
        index: &FileIndex,
        log: &PendingLog,
        mut live: F,
    ) {
        if self.rank.is_none() {
            self.log_cursor = log.entries.len();
            return;
        }
        self.stats.replays.incr();
        self.stats
            .replay_len
            .record((log.entries.len() - self.log_cursor) as u64);
        while self.log_cursor < log.entries.len() {
            let task = TaskId(log.entries[self.log_cursor]);
            self.log_cursor += 1;
            if live(task) {
                self.rank_insert(index, task);
            }
        }
    }

    /// Attaches an (empty) priority index ordered for `metric`. Call after
    /// seeding the counters from pre-populated storage, then admit the
    /// pending pool via [`SiteView::rank_insert`].
    pub fn enable_rank(&mut self, metric: WeightMetric, index: &FileIndex) {
        self.rank = Some(TaskRank::new(
            metric,
            self.overlap.len(),
            index.max_task_size(),
        ));
    }

    /// The attached priority index, if any.
    #[must_use]
    pub fn rank(&self) -> Option<&TaskRank> {
        self.rank.as_ref()
    }

    /// Admits `task` (newly pending) into the priority index. No-op
    /// without a rank or if already tracked.
    pub fn rank_insert(&mut self, index: &FileIndex, task: TaskId) {
        let t = task.index();
        let (overlap, refsum) = (self.overlap[t], self.refsum[t]);
        if let Some(rank) = self.rank.as_mut() {
            let level = rank.level_for(index.task_size(task), overlap);
            rank.insert(t, level, refsum);
        }
    }

    /// Withdraws `task` (assigned/completed) from the priority index.
    /// No-op without a rank or if not tracked.
    pub fn rank_remove(&mut self, task: TaskId) {
        if let Some(rank) = self.rank.as_mut() {
            rank.remove(task.index());
        }
    }

    /// Bulk-admits `tasks` (ascending, not yet tracked) into a freshly
    /// enabled priority index: per-bucket sorted runs built in one pass,
    /// then loaded via `BTreeSet::from_iter` — equivalent to
    /// [`SiteView::rank_insert`] per task, minus `O(T)` tree inserts per
    /// site.
    ///
    /// # Panics
    ///
    /// Panics if no rank is attached.
    pub fn rank_bulk_admit(&mut self, index: &FileIndex, tasks: &[TaskId]) {
        let rank = self
            .rank
            .as_mut()
            .expect("rank_bulk_admit requires an enabled rank");
        let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); rank.buckets.len()];
        for &task in tasks {
            let t = task.index();
            if rank.member[t] {
                continue;
            }
            let (overlap, refsum) = (self.overlap[t], self.refsum[t]);
            let level = rank.level_for(index.task_size(task), overlap);
            let key = rank.key_for(level, refsum);
            buckets[level as usize].push((key, task.0));
            rank.member[t] = true;
            rank.level_of[t] = level;
            rank.key_of[t] = key;
            rank.refsum_of[t] = refsum;
            rank.len += 1;
        }
        for (level, entries) in buckets.into_iter().enumerate() {
            if !entries.is_empty() {
                // A hard assert: silently overwriting a non-empty bucket
                // would drop tracked tasks while member[]/len still count
                // them. Cold path (once per rank enable), so it is free.
                assert!(
                    rank.buckets[level].is_empty(),
                    "rank_bulk_admit into a non-empty bucket (level {level})"
                );
                rank.buckets[level] = entries.into_iter().collect();
            }
        }
    }

    /// Records that `file` became resident with current reference count
    /// `ref_count`.
    pub fn on_file_added(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        self.on_file_added_pruning(index, file, ref_count, |_| true);
    }

    /// [`SiteView::on_file_added`] with opportunistic stale repair: a rank
    /// member failing `live` is physically removed instead of re-filed —
    /// the event handler is touching the entry anyway, so the repair that
    /// would otherwise wait for a read at this site comes for free, and
    /// dead entries stop paying `O(log T)` re-files on every later storage
    /// event. The predicate must be the owner's rank-liveness (the same
    /// one its reads pass), or live tasks would vanish from the index.
    pub fn on_file_added_pruning<F: FnMut(TaskId) -> bool>(
        &mut self,
        index: &FileIndex,
        file: FileId,
        ref_count: u32,
        mut live: F,
    ) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.overlap[ti] += 1;
            self.refsum[ti] += u64::from(ref_count);
            if let Some(rank) = self.rank.as_mut() {
                if !rank.member[ti] {
                    continue;
                }
                if live(TaskId(t)) {
                    let level = rank.level_for(index.task_size(TaskId(t)), self.overlap[ti]);
                    rank.sync(ti, level, self.refsum[ti]);
                } else {
                    rank.remove(ti);
                }
            }
        }
    }

    /// Records that `file` was evicted while holding reference count
    /// `ref_count`.
    pub fn on_file_evicted(&mut self, index: &FileIndex, file: FileId, ref_count: u32) {
        self.on_file_evicted_pruning(index, file, ref_count, |_| true);
    }

    /// [`SiteView::on_file_evicted`] with opportunistic stale repair (see
    /// [`SiteView::on_file_added_pruning`]).
    pub fn on_file_evicted_pruning<F: FnMut(TaskId) -> bool>(
        &mut self,
        index: &FileIndex,
        file: FileId,
        ref_count: u32,
        mut live: F,
    ) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.overlap[ti] -= 1;
            self.refsum[ti] -= u64::from(ref_count);
            if let Some(rank) = self.rank.as_mut() {
                if !rank.member[ti] {
                    continue;
                }
                if live(TaskId(t)) {
                    let level = rank.level_for(index.task_size(TaskId(t)), self.overlap[ti]);
                    rank.sync(ti, level, self.refsum[ti]);
                } else {
                    rank.remove(ti);
                }
            }
        }
    }

    /// Records that a task referenced resident `file` (`r_i += 1`).
    pub fn on_task_reference(&mut self, index: &FileIndex, file: FileId) {
        self.on_task_reference_pruning(index, file, |_| true);
    }

    /// [`SiteView::on_task_reference`] with opportunistic stale repair
    /// (see [`SiteView::on_file_added_pruning`]).
    pub fn on_task_reference_pruning<F: FnMut(TaskId) -> bool>(
        &mut self,
        index: &FileIndex,
        file: FileId,
        mut live: F,
    ) {
        for &t in index.tasks_of(file) {
            let ti = t as usize;
            self.refsum[ti] += 1;
            if let Some(rank) = self.rank.as_mut() {
                if !rank.member[ti] {
                    continue;
                }
                if live(TaskId(t)) {
                    let level = rank.level_of[ti];
                    rank.sync(ti, level, self.refsum[ti]);
                } else {
                    rank.remove(ti);
                }
            }
        }
    }

    /// Cached `|F_t|`.
    #[must_use]
    pub fn overlap(&self, task: TaskId) -> u32 {
        self.overlap[task.index()]
    }

    /// Cached `Σ r_i` over the resident overlap of `task`.
    #[must_use]
    pub fn refsum(&self, task: TaskId) -> u64 {
        self.refsum[task.index()]
    }

    /// The worker-centric pick straight off the priority index —
    /// equivalent to `chooser.pick(weigh_all(...), rng)` but reading only
    /// the best few bucket heads (`O(log T)` amortized; `Combined`
    /// additionally reads its queue-wide normalisers from the supplied
    /// `combined_totals`, maintained exactly by [`ComboAggregates`]).
    ///
    /// Pool membership is lazy: entries failing `live` are skipped *and
    /// physically removed* (each stale entry is repaired at most once), so
    /// the candidate set equals what an eagerly-maintained rank would
    /// hold. It provably contains the full scan's top-`n` (within a bucket
    /// the order matches the argmax tie-break; across buckets every bucket
    /// contributes its first `n` live members), and the weights are
    /// computed with the identical expressions — so the pick, including
    /// its RNG consumption, is bit-identical. Call
    /// [`SiteView::sync_pending`] first so journaled re-inserts are
    /// visible.
    ///
    /// Returns `None` when no live task is tracked.
    ///
    /// # Panics
    ///
    /// Panics if no rank is attached (see [`SiteView::enable_rank`]), or
    /// if the rank orders by [`WeightMetric::Combined`] and
    /// `combined_totals` is `None`.
    pub fn pick_ranked<R, F>(
        &mut self,
        chooser: &ChooseTask,
        rng: &mut R,
        mut live: F,
        combined_totals: Option<(u64, f64)>,
    ) -> Option<TaskId>
    where
        R: Rng + ?Sized,
        F: FnMut(TaskId) -> bool,
    {
        self.stats.picks.incr();
        let n = chooser.n();
        let mut stale: Vec<u32> = Vec::new();
        let mut cands: Vec<(TaskId, f64)> = Vec::with_capacity(n);
        {
            let rank = self
                .rank
                .as_ref()
                .expect("pick_ranked requires an enabled rank");
            match rank.metric {
                WeightMetric::Overlap => {
                    // Strictly decreasing weight per level: the first n
                    // live tasks in (level desc, id asc) order are the
                    // exact top-n.
                    'levels: for level in (0..rank.buckets.len()).rev() {
                        for &(_, t) in &rank.buckets[level] {
                            if !live(TaskId(t)) {
                                stale.push(t);
                                continue;
                            }
                            cands.push((TaskId(t), level as f64));
                            if cands.len() == n {
                                break 'levels;
                            }
                        }
                    }
                }
                WeightMetric::Rest => {
                    // Strictly decreasing weight as missing grows:
                    // ascending levels yield the exact top-n.
                    'levels: for (level, bucket) in rank.buckets.iter().enumerate() {
                        for &(_, t) in bucket {
                            if !live(TaskId(t)) {
                                stale.push(t);
                                continue;
                            }
                            cands.push((TaskId(t), rest_weight(level)));
                            if cands.len() == n {
                                break 'levels;
                            }
                        }
                    }
                }
                WeightMetric::Combined => {
                    // Weights mix normalised references and rest, so no
                    // single bucket order is globally sorted — but within
                    // a bucket the order is weight-descending, hence the
                    // global top-n is contained in the union of every
                    // bucket's first n live members.
                    let (total_ref, total_rest) =
                        combined_totals.expect("Combined pick needs ComboAggregates totals");
                    for (level, bucket) in rank.buckets.iter().enumerate() {
                        let mut taken = 0;
                        for &(_, t) in bucket {
                            if !live(TaskId(t)) {
                                stale.push(t);
                                continue;
                            }
                            let w = combined_weight(
                                self.refsum[t as usize],
                                rest_weight(level),
                                total_ref,
                                total_rest,
                            );
                            cands.push((TaskId(t), w));
                            taken += 1;
                            if taken == n {
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.repair(&stale);
        chooser.pick(&cands, rng)
    }

    /// Physically removes lazily-discovered stale entries from the rank.
    fn repair(&mut self, stale: &[u32]) {
        if stale.is_empty() {
            return;
        }
        self.stats.repairs.add(stale.len() as u64);
        let rank = self.rank.as_mut().expect("repair follows a ranked read");
        for &t in stale {
            rank.remove(t as usize);
        }
    }

    /// The live task with the largest overlap (ties to the lowest id)
    /// that satisfies `keep`, walking the index in (overlap desc, id asc)
    /// order — the storage-affinity replica selection and the sufferage
    /// fallback.
    ///
    /// `live` is the lazy-membership predicate: entries failing it are
    /// skipped and physically repaired. `keep` is a *transient* caller
    /// filter (e.g. "not already executing at this worker") — entries
    /// failing only `keep` stay in the rank. Call
    /// [`SiteView::sync_pending`] first.
    ///
    /// # Panics
    ///
    /// Panics if no rank is attached or the rank does not order by
    /// [`WeightMetric::Overlap`].
    pub fn top_overlap_where<L, K>(&mut self, mut live: L, mut keep: K) -> Option<TaskId>
    where
        L: FnMut(TaskId) -> bool,
        K: FnMut(TaskId) -> bool,
    {
        self.stats.picks.incr();
        let mut stale: Vec<u32> = Vec::new();
        let mut found = None;
        {
            let rank = self
                .rank
                .as_ref()
                .expect("top_overlap_where requires an enabled rank");
            assert_eq!(
                rank.metric,
                WeightMetric::Overlap,
                "top_overlap_where needs an Overlap-ordered rank"
            );
            'levels: for level in (0..rank.buckets.len()).rev() {
                for &(_, t) in &rank.buckets[level] {
                    let task = TaskId(t);
                    if !live(task) {
                        stale.push(t);
                        continue;
                    }
                    if keep(task) {
                        found = Some(task);
                        break 'levels;
                    }
                }
            }
        }
        self.repair(&stale);
        found
    }

    /// Debug helper: checks this view against ground truth from the store.
    ///
    /// # Panics
    ///
    /// Panics (in any build) if a cached counter disagrees with the store.
    pub fn assert_consistent(&self, index: &FileIndex, workload: &Workload, store: &SiteStore) {
        for t in workload.tasks() {
            let files = t.files();
            let overlap = store.overlap(files) as u32;
            let refsum = store.overlap_ref_sum(files);
            assert_eq!(
                self.overlap(t.id),
                overlap,
                "overlap mismatch for task {}",
                t.id
            );
            assert_eq!(
                self.refsum(t.id),
                refsum,
                "refsum mismatch for task {}",
                t.id
            );
        }
        let _ = index;
    }
}

/// Attaches a `metric`-ordered priority index to every view and admits the
/// current pending pool — the shared initialize-time step of every
/// incremental-mode scheduler. Admission is bulk: per-bucket sorted runs
/// handed to `BTreeSet::from_iter` (which bulk-builds), instead of
/// `S × T` individual tree inserts.
pub fn enable_ranks(
    views: &mut [SiteView],
    metric: WeightMetric,
    index: &FileIndex,
    pool: &TaskPool,
) {
    let pending: Vec<TaskId> = pool.iter().collect();
    for view in views {
        view.enable_rank(metric, index);
        view.rank_bulk_admit(index, &pending);
    }
}

/// Exact, sparsely-maintained queue-wide normalisers for the `combined`
/// metric — `totalRef` and the per-missing-count histogram behind
/// `totalRest` — for **every** site at once.
///
/// The naive definition is per-site and per-membership:
/// `totalRef(s) = Σ_{t pending} refsum_s(t)` and
/// `counts_s[m] = #{t pending : missing_s(t) = m}` — maintaining these
/// eagerly costs `O(S)` per pool insert/remove, the broadcast this module
/// eliminates. Two observations make the maintenance sparse:
///
/// * a task with **zero overlap** at a site contributes `refsum = 0` and
///   `missing = |t|` there — so a global `pending_by_size` histogram is a
///   correct baseline for every site, and each site only needs a
///   *correction* for its nonzero-overlap pending tasks;
/// * a task has nonzero overlap exactly at the sites holding at least one
///   of its files — enumerable from per-file **residency lists** in
///   `O(Σ_f |sites holding f|)`, independent of `S` for data-local
///   workloads.
///
/// Storage events stay site-local (`O(tasks reading the file)`), exactly
/// like the [`SiteView`] counter maintenance they piggyback on. All
/// arithmetic is integer, so the totals are bit-exact; `totalRest` is
/// produced by feeding the reconstructed histogram through the canonical
/// [`total_rest_from_counts`] accumulation.
///
/// Event routing (the owner must keep this in lock-step with the views;
/// all hooks take the *already updated* [`SiteView`] of the event's site):
/// [`ComboAggregates::on_file_added`] / [`ComboAggregates::on_file_evicted`]
/// / [`ComboAggregates::on_task_reference`] after the view update, and
/// [`ComboAggregates::on_pool_remove`] / [`ComboAggregates::on_pool_insert`]
/// on membership changes.
#[derive(Debug, Clone)]
pub struct ComboAggregates {
    /// Baseline histogram: `#pending tasks with |t| = k` (global).
    pending_by_size: Vec<i64>,
    /// Per-site corrections, flattened `site * levels + m`: for each
    /// pending task with nonzero overlap at the site,
    /// `[missing = m] − [|t| = m]`.
    corr: Vec<i64>,
    /// Per-site `Σ refsum` over pending tasks (zero-overlap tasks
    /// contribute zero, so only nonzero-overlap sites ever adjust this).
    total_ref: Vec<u64>,
    /// `residency[f]` — sites currently holding file `f`.
    residency: Vec<Vec<u32>>,
    /// Site-dedup scratch for membership sweeps (stamp pattern).
    seen: Vec<u64>,
    stamp: u64,
    levels: usize,
}

impl ComboAggregates {
    /// Aggregates for `sites` initially-**empty** site stores over the
    /// current pending pool. Pre-populated stores must be seeded through
    /// [`ComboAggregates::on_file_added`], file by file, after the
    /// corresponding view update.
    #[must_use]
    pub fn new(index: &FileIndex, pool: &TaskPool, sites: usize) -> Self {
        let levels = index.max_task_size() as usize + 1;
        let mut pending_by_size = vec![0i64; levels];
        for t in pool.iter() {
            pending_by_size[index.task_size(t) as usize] += 1;
        }
        ComboAggregates {
            pending_by_size,
            corr: vec![0; sites * levels],
            total_ref: vec![0; sites],
            residency: vec![Vec::new(); index.file_count()],
            seen: vec![0; sites],
            stamp: 0,
            levels,
        }
    }

    /// The exact `(totalRef, totalRest)` pair for `site`, over the current
    /// pending pool — `O(levels)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a reconstructed count is negative — an event was
    /// routed out of lock-step.
    #[must_use]
    pub fn totals(&self, site: usize) -> (u64, f64) {
        let corr = &self.corr[site * self.levels..(site + 1) * self.levels];
        let total_rest = total_rest_from_counts((0..self.levels).map(|m| {
            let count = self.pending_by_size[m] + corr[m];
            debug_assert!(count >= 0, "negative count at level {m}");
            count as u32
        }));
        (self.total_ref[site], total_rest)
    }

    /// `file` became resident at `site` with reference count `ref_count`;
    /// `view` is the site's view, already updated.
    pub fn on_file_added(
        &mut self,
        site: usize,
        index: &FileIndex,
        view: &SiteView,
        file: FileId,
        ref_count: u32,
        pool: &TaskPool,
    ) {
        self.residency[file.index()].push(site as u32);
        let corr = &mut self.corr[site * self.levels..(site + 1) * self.levels];
        for &t in index.tasks_of(file) {
            let task = TaskId(t);
            if !pool.contains(task) {
                continue;
            }
            // Overlap rose by one, so the task misses one file fewer. When
            // it just joined the nonzero-overlap set, the old "missing"
            // equals |t| — exactly the baseline slot its correction must
            // now cancel, so the uniform two-slot update covers both cases.
            let m_new = (index.task_size(task) - view.overlap(task)) as usize;
            corr[m_new + 1] -= 1;
            corr[m_new] += 1;
            self.total_ref[site] += u64::from(ref_count);
        }
    }

    /// `file` was evicted at `site` while holding `ref_count`; `view` is
    /// the site's view, already updated.
    pub fn on_file_evicted(
        &mut self,
        site: usize,
        index: &FileIndex,
        view: &SiteView,
        file: FileId,
        ref_count: u32,
        pool: &TaskPool,
    ) {
        let slot = self.residency[file.index()]
            .iter()
            .position(|&s| s == site as u32)
            .expect("evicted file was resident");
        self.residency[file.index()].swap_remove(slot);
        let corr = &mut self.corr[site * self.levels..(site + 1) * self.levels];
        for &t in index.tasks_of(file) {
            let task = TaskId(t);
            if !pool.contains(task) {
                continue;
            }
            let m_new = (index.task_size(task) - view.overlap(task)) as usize;
            corr[m_new - 1] -= 1;
            corr[m_new] += 1;
            self.total_ref[site] -= u64::from(ref_count);
        }
    }

    /// A task at `site` referenced resident `file` (`r_i += 1`): every
    /// pending reader's refsum rose by one.
    pub fn on_task_reference(
        &mut self,
        site: usize,
        index: &FileIndex,
        file: FileId,
        pool: &TaskPool,
    ) {
        let pending_readers = index
            .tasks_of(file)
            .iter()
            .filter(|&&t| pool.contains(TaskId(t)))
            .count() as u64;
        self.total_ref[site] += pending_readers;
    }

    /// `task` (input set `files`) left the pending pool. Touches only the
    /// sites where the task has nonzero overlap, via the residency lists.
    pub fn on_pool_remove(
        &mut self,
        index: &FileIndex,
        task: TaskId,
        files: &[FileId],
        views: &[SiteView],
    ) {
        let size = index.task_size(task) as usize;
        self.pending_by_size[size] -= 1;
        self.for_each_overlap_site(files, |aggr, site| {
            let view = &views[site];
            let m = size - view.overlap(task) as usize;
            let corr = &mut aggr.corr[site * aggr.levels..(site + 1) * aggr.levels];
            corr[m] -= 1;
            corr[size] += 1;
            aggr.total_ref[site] -= view.refsum(task);
        });
    }

    /// `task` (input set `files`) re-joined the pending pool.
    pub fn on_pool_insert(
        &mut self,
        index: &FileIndex,
        task: TaskId,
        files: &[FileId],
        views: &[SiteView],
    ) {
        let size = index.task_size(task) as usize;
        self.pending_by_size[size] += 1;
        self.for_each_overlap_site(files, |aggr, site| {
            let view = &views[site];
            let m = size - view.overlap(task) as usize;
            let corr = &mut aggr.corr[site * aggr.levels..(site + 1) * aggr.levels];
            corr[m] += 1;
            corr[size] -= 1;
            aggr.total_ref[site] += view.refsum(task);
        });
    }

    /// Visits each distinct site holding at least one of `files` — exactly
    /// the sites where the owning task's overlap is nonzero.
    fn for_each_overlap_site<F: FnMut(&mut Self, usize)>(&mut self, files: &[FileId], mut f: F) {
        self.stamp += 1;
        let stamp = self.stamp;
        for &file in files {
            let sites = std::mem::take(&mut self.residency[file.index()]);
            for &s in &sites {
                let s = s as usize;
                if self.seen[s] != stamp {
                    self.seen[s] = stamp;
                    f(self, s);
                }
            }
            self.residency[file.index()] = sites;
        }
    }
}

/// Indexed equivalent of [`weigh_all_naive`]: `O(T)` per decision.
///
/// [`weigh_all_naive`]: crate::weight::weigh_all_naive
#[must_use]
pub fn weigh_all_indexed(
    metric: WeightMetric,
    index: &FileIndex,
    pool: &TaskPool,
    view: &SiteView,
) -> Vec<(TaskId, f64)> {
    match metric {
        WeightMetric::Overlap => pool
            .iter()
            .map(|t| (t, f64::from(view.overlap(t))))
            .collect(),
        WeightMetric::Rest => pool
            .iter()
            .map(|t| {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                (t, rest_weight(missing))
            })
            .collect(),
        WeightMetric::Combined => {
            let mut per_task: Vec<(TaskId, u64, usize)> = Vec::with_capacity(pool.len());
            let mut total_ref: u64 = 0;
            let mut missing_counts: Vec<u32> = Vec::new();
            for t in pool.iter() {
                let missing = (index.task_size(t) - view.overlap(t)) as usize;
                let ref_t = view.refsum(t);
                total_ref += ref_t;
                if missing >= missing_counts.len() {
                    missing_counts.resize(missing + 1, 0);
                }
                missing_counts[missing] += 1;
                per_task.push((t, ref_t, missing));
            }
            let total_rest = total_rest_from_counts(missing_counts.iter().copied());
            per_task
                .into_iter()
                .map(|(t, ref_t, missing)| {
                    let rest_t = rest_weight(missing);
                    (t, combined_weight(ref_t, rest_t, total_ref, total_rest))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 0.0),
            ],
            4,
            1.0,
            "w",
        )
    }

    #[test]
    fn index_layout() {
        let idx = FileIndex::build(&wl());
        assert_eq!(idx.file_count(), 4);
        assert_eq!(idx.task_count(), 3);
        assert_eq!(idx.tasks_of(FileId(1)), &[0, 1]);
        assert_eq!(idx.tasks_of(FileId(3)), &[2]);
        assert_eq!(idx.task_size(TaskId(0)), 2);
    }

    #[test]
    fn view_tracks_store() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        assert_eq!(view.overlap(TaskId(0)), 1);
        assert_eq!(view.overlap(TaskId(1)), 1);
        assert_eq!(view.overlap(TaskId(2)), 0);

        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));
        assert_eq!(view.refsum(TaskId(0)), 1);

        view.assert_consistent(&idx, &workload, &store);
    }

    #[test]
    fn eviction_rolls_back_counters() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(1, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);

        store.insert(FileId(1));
        view.on_file_added(&idx, FileId(1), store.ref_count(FileId(1)));
        store.record_task_reference(FileId(1));
        view.on_task_reference(&idx, FileId(1));

        // Inserting file 2 evicts file 1 (capacity 1).
        let ref_before = store.ref_count(FileId(1));
        let evicted = store.insert(FileId(2));
        assert_eq!(evicted, vec![FileId(1)]);
        view.on_file_evicted(&idx, FileId(1), ref_before);
        view.on_file_added(&idx, FileId(2), store.ref_count(FileId(2)));

        view.assert_consistent(&idx, &workload, &store);
        assert_eq!(view.overlap(TaskId(0)), 0);
        assert_eq!(view.refsum(TaskId(0)), 0);
    }

    #[test]
    fn indexed_matches_naive_on_example() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(3);
        for f in [0u32, 2] {
            store.insert(FileId(f));
            view.on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
        }
        store.record_task_reference(FileId(2));
        view.on_task_reference(&idx, FileId(2));
        let pool = TaskPool::full(3);
        for metric in [
            WeightMetric::Overlap,
            WeightMetric::Rest,
            WeightMetric::Combined,
        ] {
            let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
            let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
            assert_eq!(naive, indexed, "metric {metric}");
        }
    }
}

#[cfg(test)]
mod rank_tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(2), FileId(3)], 0.0),
                TaskSpec::new(TaskId(3), vec![FileId(0), FileId(3)], 0.0),
            ],
            4,
            1.0,
            "w",
        )
    }

    fn ranked_view(metric: WeightMetric, resident: &[u32]) -> (FileIndex, SiteView, SiteStore) {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut store = SiteStore::new(10, EvictionPolicy::Lru);
        let mut view = SiteView::new(4);
        view.enable_rank(metric, &idx);
        for t in 0..4 {
            view.rank_insert(&idx, TaskId(t));
        }
        for &f in resident {
            store.insert(FileId(f));
            view.on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
        }
        (idx, view, store)
    }

    #[test]
    fn ranked_overlap_pick_is_argmax() {
        let (_, mut view, _) = ranked_view(WeightMetric::Overlap, &[2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        // Task 2 overlaps {2,3} fully; deterministic argmax.
        assert_eq!(
            view.pick_ranked(&ChooseTask::new(1), &mut rng, |_| true, None),
            Some(TaskId(2))
        );
    }

    #[test]
    fn ranked_rest_prefers_zero_missing() {
        let (_, mut view, _) = ranked_view(WeightMetric::Rest, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            view.pick_ranked(&ChooseTask::new(1), &mut rng, |_| true, None),
            Some(TaskId(0)),
            "task 0 needs zero transfers"
        );
    }

    #[test]
    fn ranked_tracks_lazy_membership() {
        // Membership is conveyed through the `live` predicate + the
        // PendingLog, never by touching the rank directly.
        let (idx, mut view, _) = ranked_view(WeightMetric::Overlap, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let chooser = ChooseTask::new(1);
        let mut pool = TaskPool::full(4);
        let mut log = PendingLog::new();
        let mut pick = |view: &mut SiteView, pool: &TaskPool, log: &PendingLog| {
            view.sync_pending(&idx, log, |t| pool.contains(t));
            view.pick_ranked(&chooser, &mut rng, |t| pool.contains(t), None)
        };
        assert_eq!(pick(&mut view, &pool, &log), Some(TaskId(0)));
        pool.remove(TaskId(0));
        assert_eq!(pick(&mut view, &pool, &log), Some(TaskId(1)));
        // The stale entry was physically repaired during the read.
        assert_eq!(view.rank().expect("enabled").len(), 3);
        pool.insert(TaskId(0));
        log.record(TaskId(0), std::slice::from_mut(&mut view));
        assert_eq!(pick(&mut view, &pool, &log), Some(TaskId(0)));
        for t in 0..4 {
            pool.remove(TaskId(t));
        }
        assert_eq!(pick(&mut view, &pool, &log), None);
        assert!(view.rank().expect("enabled").is_empty(), "all repaired");
    }

    #[test]
    fn rank_stats_count_picks_replays_and_repairs() {
        let (idx, mut view, _) = ranked_view(WeightMetric::Overlap, &[0, 1]);
        let telemetry = Telemetry::enabled();
        view.set_stats(RankStats::attach(&telemetry));
        let mut pool = TaskPool::full(4);
        let log = PendingLog::new();
        view.sync_pending(&idx, &log, |t| pool.contains(t));
        // Task 0 (overlap 2, the bucket head) goes stale in place; the next
        // ranked read must skip and physically repair it.
        pool.remove(TaskId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let picked = view.pick_ranked(&ChooseTask::new(1), &mut rng, |t| pool.contains(t), None);
        assert_eq!(picked, Some(TaskId(1)));
        assert_eq!(telemetry.counter("scheduler.rank.picks").get(), 1);
        assert_eq!(telemetry.counter("scheduler.rank.repairs").get(), 1);
        assert_eq!(telemetry.counter("scheduler.pending_log.replays").get(), 1);
        let lens = telemetry.histogram("scheduler.pending_log.replay_len");
        assert_eq!(lens.count(), 1, "one sync call, zero entries replayed");
        assert_eq!(lens.sum(), 0);
    }

    #[test]
    fn top_overlap_where_filters() {
        let (_, mut view, _) = ranked_view(WeightMetric::Overlap, &[2, 3]);
        assert_eq!(view.top_overlap_where(|_| true, |_| true), Some(TaskId(2)));
        assert_eq!(
            view.top_overlap_where(|_| true, |t| t != TaskId(2)),
            Some(TaskId(1)),
            "next-best overlap after filtering the argmax"
        );
        assert_eq!(view.top_overlap_where(|_| true, |_| false), None);
        // A transient `keep` filter must not shrink the rank...
        assert_eq!(view.rank().expect("enabled").len(), 4);
        // ...but a failing `live` predicate repairs the walked entries.
        assert_eq!(view.top_overlap_where(|_| false, |_| true), None);
        assert!(view.rank().expect("enabled").is_empty());
    }

    #[test]
    fn combo_aggregates_track_membership_and_storage() {
        let workload = wl();
        let idx = FileIndex::build(&workload);
        let mut pool = TaskPool::full(4);
        let mut combo = ComboAggregates::new(&idx, &pool, 2);
        let mut views = vec![SiteView::new(4), SiteView::new(4)];
        let mut store = SiteStore::new(2, EvictionPolicy::Lru);

        // Baseline (empty stores): totalRef 0, counts all at |t| = 2.
        let naive_totals = |pool: &TaskPool, store: &SiteStore| {
            let mut total_ref = 0u64;
            let mut counts: Vec<u32> = Vec::new();
            for t in pool.iter() {
                let files = workload.task(t).files();
                let missing = files.len() - store.overlap(files);
                total_ref += store.overlap_ref_sum(files);
                if missing >= counts.len() {
                    counts.resize(missing + 1, 0);
                }
                counts[missing] += 1;
            }
            (total_ref, total_rest_from_counts(counts))
        };
        let check = |combo: &ComboAggregates, pool: &TaskPool, store: &SiteStore| {
            let (r, rest) = combo.totals(0);
            let (nr, nrest) = naive_totals(pool, store);
            assert_eq!(r, nr);
            assert_eq!(rest.to_bits(), nrest.to_bits(), "bit-identical totalRest");
        };
        check(&combo, &pool, &store);

        // File events at site 0.
        for f in [1u32, 2] {
            store.insert(FileId(f));
            views[0].on_file_added(&idx, FileId(f), store.ref_count(FileId(f)));
            combo.on_file_added(
                0,
                &idx,
                &views[0],
                FileId(f),
                store.ref_count(FileId(f)),
                &pool,
            );
        }
        store.record_task_reference(FileId(1));
        views[0].on_task_reference(&idx, FileId(1));
        combo.on_task_reference(0, &idx, FileId(1), &pool);
        check(&combo, &pool, &store);

        // Membership: remove a nonzero-overlap task, then re-admit it.
        let files1: Vec<FileId> = workload.task(TaskId(1)).files().to_vec();
        pool.remove(TaskId(1));
        combo.on_pool_remove(&idx, TaskId(1), &files1, &views);
        check(&combo, &pool, &store);
        pool.insert(TaskId(1));
        combo.on_pool_insert(&idx, TaskId(1), &files1, &views);
        check(&combo, &pool, &store);

        // Eviction (capacity 2, LRU) rolls the correction back.
        let evicted = store.insert(FileId(3));
        assert_eq!(evicted.len(), 1, "capacity 2 forces one eviction");
        for e in evicted {
            let rc = store.ref_count(e);
            views[0].on_file_evicted(&idx, e, rc);
            combo.on_file_evicted(0, &idx, &views[0], e, rc, &pool);
        }
        views[0].on_file_added(&idx, FileId(3), store.ref_count(FileId(3)));
        combo.on_file_added(
            0,
            &idx,
            &views[0],
            FileId(3),
            store.ref_count(FileId(3)),
            &pool,
        );
        check(&combo, &pool, &store);

        // Site 1 never saw a file: its totals stay at the baseline.
        let (r1, _) = combo.totals(1);
        assert_eq!(r1, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::TaskSpec;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Reference(u32),
        RemoveTask(u32),
    }

    fn arb_workload() -> impl Strategy<Value = Workload> {
        // 3..10 tasks over 12 files, 1..6 files each.
        proptest::collection::vec(proptest::collection::btree_set(0u32..12, 1..6), 3..10).prop_map(
            |task_files| {
                let tasks: Vec<TaskSpec> = task_files
                    .into_iter()
                    .enumerate()
                    .map(|(i, fs)| {
                        TaskSpec::new(TaskId(i as u32), fs.into_iter().map(FileId).collect(), 0.0)
                    })
                    .collect();
                Workload::new(tasks, 12, 1.0, "prop")
            },
        )
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        let op = prop_oneof![
            (0u32..12).prop_map(Op::Insert),
            (0u32..12).prop_map(Op::Reference),
            (0u32..10).prop_map(Op::RemoveTask),
        ];
        proptest::collection::vec(op, 0..60)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn indexed_always_matches_naive(
            workload in arb_workload(),
            ops in arb_ops(),
            cap in 1usize..8,
        ) {
            let idx = FileIndex::build(&workload);
            let mut store = SiteStore::new(cap, EvictionPolicy::Lru);
            let mut view = SiteView::new(workload.task_count());
            let mut pool = TaskPool::full(workload.task_count());
            for op in ops {
                match op {
                    Op::Insert(f) => {
                        let f = FileId(f);
                        if !store.contains(f) {
                            let evicted = store.insert(f);
                            for e in evicted {
                                view.on_file_evicted(&idx, e, store.ref_count(e));
                            }
                            view.on_file_added(&idx, f, store.ref_count(f));
                        }
                    }
                    Op::Reference(f) => {
                        let f = FileId(f);
                        if store.contains(f) {
                            store.record_task_reference(f);
                            view.on_task_reference(&idx, f);
                        }
                    }
                    Op::RemoveTask(t) => {
                        if (t as usize) < workload.task_count() {
                            pool.remove(TaskId(t));
                        }
                    }
                }
                for metric in [WeightMetric::Overlap, WeightMetric::Rest, WeightMetric::Combined] {
                    let naive = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
                    let indexed = weigh_all_indexed(metric, &idx, &pool, &view);
                    prop_assert_eq!(naive, indexed, "metric {}", metric);
                }
            }
        }

        /// The ranked pick — lazy membership (stale filtering + PendingLog
        /// replay), `ComboAggregates` normalisers, candidate selection off
        /// the bucket heads — makes the same choice as the full naive scan
        /// + `ChooseTask`, consuming the RNG identically, across storage
        /// churn and pool membership changes.
        #[test]
        fn ranked_pick_matches_naive_scan(
            workload in arb_workload(),
            ops in arb_ops(),
            cap in 1usize..8,
            metric_ix in 0usize..3,
            n in 1usize..4,
            seed in 0u64..8,
        ) {
            use rand::rngs::StdRng;
            use rand::SeedableRng;

            let metric = [WeightMetric::Overlap, WeightMetric::Rest, WeightMetric::Combined][metric_ix];
            let chooser = ChooseTask::new(n);
            let idx = FileIndex::build(&workload);
            let mut store = SiteStore::new(cap, EvictionPolicy::Lru);
            let mut view = SiteView::new(workload.task_count());
            view.enable_rank(metric, &idx);
            let mut pool = TaskPool::full(workload.task_count());
            for t in pool.iter().collect::<Vec<_>>() {
                view.rank_insert(&idx, t);
            }
            let mut combo = ComboAggregates::new(&idx, &pool, 1);
            let mut log = PendingLog::new();
            let mut rng_naive = StdRng::seed_from_u64(seed);
            let mut rng_ranked = StdRng::seed_from_u64(seed);
            for op in ops {
                match op {
                    Op::Insert(f) => {
                        let f = FileId(f);
                        if !store.contains(f) {
                            let evicted = store.insert(f);
                            for e in evicted {
                                view.on_file_evicted(&idx, e, store.ref_count(e));
                                combo.on_file_evicted(0, &idx, &view, e, store.ref_count(e), &pool);
                            }
                            view.on_file_added(&idx, f, store.ref_count(f));
                            combo.on_file_added(0, &idx, &view, f, store.ref_count(f), &pool);
                        }
                    }
                    Op::Reference(f) => {
                        let f = FileId(f);
                        if store.contains(f) {
                            store.record_task_reference(f);
                            view.on_task_reference(&idx, f);
                            combo.on_task_reference(0, &idx, f, &pool);
                        }
                    }
                    Op::RemoveTask(t) => {
                        // Toggle pool membership to exercise requeues: a
                        // removal touches no rank (lazy), an insert goes
                        // through the journal.
                        if (t as usize) < workload.task_count() {
                            let t = TaskId(t);
                            let files: Vec<FileId> = workload.task(t).files().to_vec();
                            if pool.contains(t) {
                                pool.remove(t);
                                combo.on_pool_remove(&idx, t, &files, std::slice::from_ref(&view));
                            } else {
                                pool.insert(t);
                                combo.on_pool_insert(&idx, t, &files, std::slice::from_ref(&view));
                                log.record(t, std::slice::from_mut(&mut view));
                            }
                        }
                    }
                }
                let weights = crate::weight::weigh_all_naive(metric, &workload, &pool, &store);
                let naive = chooser.pick(&weights, &mut rng_naive);
                let totals = (metric == WeightMetric::Combined).then(|| combo.totals(0));
                view.sync_pending(&idx, &log, |t| pool.contains(t));
                let ranked = view.pick_ranked(&chooser, &mut rng_ranked, |t| pool.contains(t), totals);
                prop_assert_eq!(naive, ranked, "metric {} n {}", metric, n);
            }
        }
    }
}
