//! No-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! downstream users *could* serialize them, but nothing inside the
//! workspace actually serializes (there is no serde_json / bincode /
//! etc.), so these derives emit no code at all. When real serde becomes
//! available, delete `vendor/` and restore registry deps — every
//! `#[derive(Serialize, Deserialize)]` in the tree is already correct for
//! the real macros.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
