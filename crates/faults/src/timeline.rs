//! Per-entity stochastic failure/recovery timelines.
//!
//! Each worker and each data server gets its **own** RNG stream, derived
//! from the master seed and the entity's identity. This keeps timelines
//! decorrelated and — crucially — makes the fault schedule independent of
//! event interleaving: the k-th failure of worker 7 happens at the same
//! simulated time no matter what the other entities did in between, so a
//! run is reproducible from `(seed, FaultConfig)` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridsched_des::rng::{derive_seed, Stream};
use gridsched_des::SimDuration;

/// A fault-prone entity of the simulated grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A worker, by flat index (`site * workers_per_site + index`).
    Worker(usize),
    /// A site's data server, by site index.
    Server(usize),
    /// A network link, by edge index (`EdgeId::index` in
    /// `gridsched-topology`).
    Link(usize),
}

impl Entity {
    /// A collision-free 64-bit tag for seed derivation.
    fn tag(self) -> u64 {
        match self {
            Entity::Worker(i) => 0x1_0000_0000 | i as u64,
            Entity::Server(s) => 0x2_0000_0000 | s as u64,
            Entity::Link(l) => 0x4_0000_0000 | l as u64,
        }
    }
}

/// An alternating-renewal fault process: up for `Exp(MTBF)`, down for a
/// repair time drawn from a Weibull with the configured mean and shape
/// (shape 1 ⇒ the classic exponential repair).
///
/// The engine asks for the next inter-event time lazily ([`
/// FaultTimeline::time_to_failure`] while up, [`FaultTimeline::time_to_repair`]
/// while down); the sequence of draws is fixed by the seed and entity.
/// Every draw consumes exactly one uniform variate regardless of shape, so
/// changing the shape never perturbs the *failure* schedule.
#[derive(Debug)]
pub struct FaultTimeline {
    rng: StdRng,
    mtbf_s: f64,
    mttr_s: f64,
    /// Weibull shape of the repair distribution; 1.0 is exponential,
    /// < 1.0 fat-tailed (many quick repairs, occasional very long ones).
    mttr_shape: f64,
    /// Cached Weibull scale `λ = mean / Γ(1 + 1/k)` so each draw costs
    /// one uniform + `powf`, not a Lanczos evaluation.
    mttr_scale: f64,
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 over the range we need (Weibull shapes in
/// `(0, ~50]` query `Γ(1 + 1/k)`); used to convert a Weibull *mean* into
/// the distribution's scale parameter.
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx).
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The scale `λ` of a Weibull with the given `mean` and `shape`:
/// `mean = λ Γ(1 + 1/k)` ⇒ `λ = mean / Γ(1 + 1/k)`.
#[must_use]
pub fn weibull_scale(mean: f64, shape: f64) -> f64 {
    assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
    assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
    mean / ln_gamma(1.0 + 1.0 / shape).exp()
}

impl FaultTimeline {
    /// Creates the timeline of `entity` under `master_seed` with the given
    /// mean up/down times (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    #[must_use]
    pub fn new(master_seed: u64, entity: Entity, mtbf_s: f64, mttr_s: f64) -> Self {
        assert!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive");
        assert!(mttr_s > 0.0 && mttr_s.is_finite(), "MTTR must be positive");
        let base = derive_seed(master_seed, Stream::Faults);
        let seed = derive_seed(base ^ entity.tag(), Stream::Faults);
        FaultTimeline {
            rng: StdRng::seed_from_u64(seed),
            mtbf_s,
            mttr_s,
            mttr_shape: 1.0,
            mttr_scale: mttr_s,
        }
    }

    /// Sets the Weibull shape of the repair distribution (1.0 keeps the
    /// exponential repair byte-for-byte; shapes < 1 are fat-tailed).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not strictly positive and finite.
    #[must_use]
    pub fn with_repair_shape(mut self, shape: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "repair shape must be positive"
        );
        self.mttr_shape = shape;
        self.mttr_scale = weibull_scale(self.mttr_s, shape);
        self
    }

    fn exponential(&mut self, mean_s: f64) -> SimDuration {
        // Inverse-CDF sampling; u ∈ [0, 1) keeps ln(1-u) finite.
        let u: f64 = self.rng.gen();
        SimDuration::from_secs(-mean_s * (1.0 - u).ln())
    }

    fn weibull(&mut self, scale: f64, shape: f64) -> SimDuration {
        // Inverse CDF: x = λ (-ln(1-u))^(1/k), one uniform per draw like
        // `exponential` so the two stay stream-compatible.
        let u: f64 = self.rng.gen();
        SimDuration::from_secs(scale * (-(1.0 - u).ln()).powf(1.0 / shape))
    }

    /// Time from now (an up transition) until the next failure.
    #[must_use]
    pub fn time_to_failure(&mut self) -> SimDuration {
        self.exponential(self.mtbf_s)
    }

    /// Time from now (a failure) until the repair completes.
    #[must_use]
    pub fn time_to_repair(&mut self) -> SimDuration {
        // Shape exactly 1.0 takes the exponential path so legacy configs
        // reproduce the PR 1 timelines bit for bit (the Weibull formula
        // agrees analytically but would round differently through Γ).
        if self.mttr_shape == 1.0 {
            self.exponential(self.mttr_s)
        } else {
            self.weibull(self.mttr_scale, self.mttr_shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_entity() {
        let draws = |entity| {
            let mut tl = FaultTimeline::new(42, entity, 3600.0, 600.0);
            (0..8)
                .map(|_| (tl.time_to_failure(), tl.time_to_repair()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(Entity::Worker(0)), draws(Entity::Worker(0)));
        assert_ne!(draws(Entity::Worker(0)), draws(Entity::Worker(1)));
        assert_ne!(draws(Entity::Worker(0)), draws(Entity::Server(0)));
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = FaultTimeline::new(1, Entity::Server(2), 1000.0, 100.0);
        let mut b = FaultTimeline::new(2, Entity::Server(2), 1000.0, 100.0);
        assert_ne!(a.time_to_failure(), b.time_to_failure());
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut tl = FaultTimeline::new(0, Entity::Worker(0), 500.0, 50.0);
        let n = 4000;
        let sum: f64 = (0..n).map(|_| tl.time_to_failure().as_secs()).sum();
        let mean = sum / f64::from(n);
        assert!(
            (mean - 500.0).abs() < 50.0,
            "sample mean {mean} far from 500"
        );
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let mut tl = FaultTimeline::new(9, Entity::Worker(5), 10.0, 1.0);
        for _ in 0..1000 {
            let d = tl.time_to_failure().as_secs();
            assert!(d.is_finite() && d >= 0.0);
        }
    }

    #[test]
    fn shape_one_is_byte_identical_to_exponential() {
        let mut plain = FaultTimeline::new(13, Entity::Worker(2), 800.0, 90.0);
        let mut shaped =
            FaultTimeline::new(13, Entity::Worker(2), 800.0, 90.0).with_repair_shape(1.0);
        for _ in 0..64 {
            assert_eq!(plain.time_to_failure(), shaped.time_to_failure());
            assert_eq!(plain.time_to_repair(), shaped.time_to_repair());
        }
    }

    #[test]
    fn repair_shape_never_perturbs_failures() {
        // One uniform per draw regardless of shape ⇒ failure times match.
        let mut exp = FaultTimeline::new(5, Entity::Server(1), 700.0, 60.0);
        let mut fat = FaultTimeline::new(5, Entity::Server(1), 700.0, 60.0).with_repair_shape(0.5);
        for _ in 0..64 {
            assert_eq!(exp.time_to_failure(), fat.time_to_failure());
            let _ = (exp.time_to_repair(), fat.time_to_repair());
        }
    }

    #[test]
    fn weibull_mean_roughly_matches_for_any_shape() {
        for shape in [0.5, 0.7, 2.0, 3.5] {
            let mut tl =
                FaultTimeline::new(3, Entity::Worker(1), 500.0, 120.0).with_repair_shape(shape);
            let n = 30_000;
            let mean: f64 =
                (0..n).map(|_| tl.time_to_repair().as_secs()).sum::<f64>() / f64::from(n);
            assert!(
                (mean - 120.0).abs() < 120.0 * 0.1,
                "shape {shape}: sample mean {mean} far from 120"
            );
        }
    }

    #[test]
    fn fat_tail_has_more_extreme_repairs() {
        // Shape 0.5 at the same mean: P[X > 4·mean] ≈ 0.059 vs the
        // exponential's e⁻⁴ ≈ 0.018 — the tail must be visibly heavier.
        let count_over = |shape: f64| {
            let mut tl =
                FaultTimeline::new(11, Entity::Worker(0), 500.0, 100.0).with_repair_shape(shape);
            (0..20_000)
                .filter(|_| tl.time_to_repair().as_secs() > 400.0)
                .count()
        };
        let fat = count_over(0.5);
        let exp = count_over(1.0);
        assert!(
            fat > exp * 2,
            "fat tail should see far more >4·mean repairs: {fat} vs {exp}"
        );
    }

    #[test]
    fn gamma_sanity() {
        // Γ(2) = 1 ⇒ scale = mean for the exponential special case.
        assert!((weibull_scale(100.0, 1.0) - 100.0).abs() < 1e-9);
        // Γ(1.5) = √π/2 ≈ 0.8862 ⇒ scale = mean / 0.8862.
        let expected = 100.0 / (std::f64::consts::PI.sqrt() / 2.0);
        assert!((weibull_scale(100.0, 2.0) - expected).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_rejected() {
        let _ = FaultTimeline::new(0, Entity::Worker(0), 10.0, 1.0).with_repair_shape(0.0);
    }
}
