//! Ablation — `ChooseTask(n)` for n ∈ {1, 2, 4, 8}.
//!
//! §4.3/§5.3: the paper tried several n and found only 1 and 2 give good
//! results. This ablation regenerates that finding: a little randomization
//! (n = 2) avoids sub-optimal greedy matches, but larger n dilutes the
//! metric until the scheduler approaches random dispatch.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let ns: &[usize] = if cli.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };

    let mut table = Table::new(
        "Ablation: ChooseTask(n) sweep",
        &["n", "metric", "makespan_min", "file_transfers"],
    );
    let mut rest_series = Vec::new();
    for &n in ns {
        for strategy in [StrategyKind::Rest, StrategyKind::Combined] {
            let config = SimConfig::paper(workload.clone(), strategy).with_choose_n(n);
            let r = run(&cli, &config);
            table.push_row(vec![
                n.to_string(),
                strategy.to_string(),
                fmt(r.makespan_minutes, 0),
                r.file_transfers.to_string(),
            ]);
            if strategy == StrategyKind::Rest {
                rest_series.push((n, r.makespan_minutes, r.file_transfers));
            }
        }
    }
    table.emit(&cli, "ablation_choose_n");

    let small_n_best = rest_series
        .iter()
        .filter(|(n, _, _)| *n <= 2)
        .map(|&(_, m, _)| m)
        .fold(f64::MAX, f64::min);
    let large_n_worst = rest_series
        .iter()
        .filter(|(n, _, _)| *n >= 4)
        .map(|&(_, m, _)| m)
        .fold(f64::MIN, f64::max);
    check(
        &cli,
        "small n (1-2) beats large n (>=4) — 'only 1 and 2 give good results'",
        small_n_best < large_n_worst,
    );
    check(
        &cli,
        "transfers grow as n grows (metric dilution)",
        rest_series.first().map(|r| r.2) <= rest_series.last().map(|r| r.2),
    );
}
