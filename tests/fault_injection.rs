//! Property-based guarantees of the fault-injection subsystem, checked
//! through the public API:
//!
//! 1. an **inert** fault config reproduces the fault-free engine's
//!    `MetricsReport` exactly (every field, including event counts);
//! 2. under arbitrary seeded churn every task still completes, the
//!    re-execution accounting is consistent (`re_executions ≥ tasks_lost`)
//!    and the whole run is deterministic per seed;
//! 3. scripted fault traces inject exactly what they say.

use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;

fn small_workload(seed: u64, tasks: u32) -> Arc<Workload> {
    let mut cfg = CoaddConfig::small(seed);
    cfg.tasks = tasks;
    Arc::new(cfg.generate())
}

fn base_config(strategy: StrategyKind, sites: usize, seed: u64) -> SimConfig {
    SimConfig::paper(small_workload(seed, 120), strategy)
        .with_sites(sites)
        .with_capacity(600)
        .with_seed(seed)
}

const ALL_STRATEGIES: [StrategyKind; 8] = [
    StrategyKind::StorageAffinity,
    StrategyKind::Overlap,
    StrategyKind::Rest,
    StrategyKind::Combined,
    StrategyKind::Rest2,
    StrategyKind::Combined2,
    StrategyKind::Workqueue,
    StrategyKind::Sufferage,
];

/// (1) Inert fault configs must be invisible: same `MetricsReport`, field
/// for field, as not configuring faults at all.
#[test]
fn zero_fault_config_reproduces_faultless_run_exactly() {
    for strategy in ALL_STRATEGIES {
        let plain = GridSim::new(base_config(strategy, 3, 1)).run();
        let inert =
            GridSim::new(base_config(strategy, 3, 1).with_faults(FaultConfig::none())).run();
        assert_eq!(plain, inert, "inert faults perturbed {strategy}");
        // Includes the diagnostic event count: the fault paths must not
        // schedule anything.
        assert_eq!(plain.events_dispatched, inert.events_dispatched);
        assert_eq!(inert.tasks_lost, 0);
        assert_eq!(inert.re_executions, 0);
        assert_eq!(inert.worker_crashes, 0);
        assert_eq!(inert.server_outages, 0);
        assert_eq!(inert.config.faults, "none");
    }
}

/// An empty scripted trace is inert too.
#[test]
fn empty_trace_is_inert() {
    let plain = GridSim::new(base_config(StrategyKind::Rest2, 2, 5)).run();
    let traced = GridSim::new(
        base_config(StrategyKind::Rest2, 2, 5)
            .with_faults(FaultConfig::none().with_trace(FaultTrace::default())),
    )
    .run();
    assert_eq!(plain, traced);
}

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::StorageAffinity),
        Just(StrategyKind::Rest),
        Just(StrategyKind::Rest2),
        Just(StrategyKind::Combined2),
        Just(StrategyKind::Workqueue),
        Just(StrategyKind::Sufferage),
    ]
}

proptest! {
    // Whole-simulation churn cases are expensive; a moderate case count
    // still covers strategy × fault-shape × seed combinations well.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (2) Under arbitrary worker/server churn: completion, accounting
    /// consistency, determinism.
    #[test]
    fn churn_preserves_completion_and_determinism(
        strategy in arb_strategy(),
        sites in 2usize..4,
        workers in 1usize..3,
        worker_mtbf in 2_000.0f64..30_000.0,
        worker_mttr in 120.0f64..1_500.0,
        server_mtbf in 20_000.0f64..80_000.0,
        server_mttr in 300.0f64..1_500.0,
        seed in 0u64..1_000,
    ) {
        let faults = FaultConfig::none()
            .with_worker_faults(worker_mtbf, worker_mttr)
            .with_server_faults(server_mtbf, server_mttr);
        let config = base_config(strategy, sites, seed)
            .with_workers_per_site(workers)
            .with_faults(faults);
        let report = GridSim::new(config.clone()).run();

        // Every task completes despite churn.
        prop_assert_eq!(report.tasks_completed, 120, "{} lost work", strategy);
        // Each orphaned execution is eventually re-executed (possibly more
        // than once under replication).
        prop_assert!(
            report.re_executions >= report.tasks_lost,
            "{}: re_executions {} < tasks_lost {}",
            strategy, report.re_executions, report.tasks_lost
        );
        // A lost task implies at least one injected crash.
        prop_assert!(report.tasks_lost == 0 || report.worker_crashes > 0);
        // Availability metrics stay in range.
        let wa = report.mean_worker_availability();
        let sa = report.mean_server_availability();
        prop_assert!((0.0..=1.0).contains(&wa), "worker availability {wa}");
        prop_assert!((0.0..=1.0).contains(&sa), "server availability {sa}");
        // File-loss accounting is per-site consistent.
        let site_lost: u64 = report.per_site.iter().map(|s| s.files_lost).sum();
        prop_assert_eq!(site_lost, report.files_lost);

        // Determinism: the same config replays to the identical report.
        let replay = GridSim::new(config).run();
        prop_assert_eq!(report, replay, "churn run not deterministic");
    }

    /// Different master seeds produce different fault timelines (churn is
    /// actually seeded, not frozen).
    #[test]
    fn churn_varies_with_seed(seed in 0u64..500) {
        let cfg = |s: u64| {
            base_config(StrategyKind::Rest, 2, s)
                .with_faults(FaultConfig::none().with_worker_faults(4_000.0, 600.0))
        };
        let a = GridSim::new(cfg(seed)).run();
        let b = GridSim::new(cfg(seed + 1)).run();
        prop_assert!(
            a.makespan_minutes != b.makespan_minutes
                || a.worker_crashes != b.worker_crashes,
            "seeds {seed}/{} gave identical churn", seed + 1
        );
    }
}

/// (3) Scripted traces inject exactly the events they script.
#[test]
fn scripted_trace_injects_exact_events() {
    let trace = FaultTrace::parse(
        "900 worker-crash 0 0\n2400 worker-recover 0 0\n\
         1200 server-fail 1\n4800 server-recover 1\n",
    )
    .expect("valid trace");
    let config = base_config(StrategyKind::Workqueue, 2, 3)
        .with_faults(FaultConfig::none().with_trace(trace));
    let report = GridSim::new(config.clone()).run();

    assert_eq!(report.tasks_completed, 120);
    assert_eq!(report.worker_crashes, 1);
    assert_eq!(report.server_outages, 1);
    // The crashed worker was down 900→2400s; the engine may stop counting
    // early only if the job ended first, which this workload does not.
    let down: f64 = report.per_site.iter().map(|s| s.worker_downtime_s).sum();
    assert!((down - 1500.0).abs() < 1e-6, "downtime {down}");
    let server_down: f64 = report.per_site.iter().map(|s| s.server_downtime_s).sum();
    assert!(
        (server_down - 3600.0).abs() < 1e-6,
        "server downtime {server_down}"
    );

    let replay = GridSim::new(config).run();
    assert_eq!(report, replay);
}

/// A worker crash mid-computation wastes the compute spent so far.
#[test]
fn crash_mid_run_wastes_compute_and_reexecutes() {
    // One site, one worker: the crash at t=900 is guaranteed to hit an
    // execution in progress (the single worker is never idle this early).
    let trace =
        FaultTrace::parse("900 worker-crash 0 0\n1000 worker-recover 0 0\n").expect("valid");
    let config = base_config(StrategyKind::Workqueue, 1, 7)
        .with_faults(FaultConfig::none().with_trace(trace));
    let report = GridSim::new(config).run();
    assert_eq!(report.tasks_completed, 120);
    assert_eq!(report.worker_crashes, 1);
    assert_eq!(report.tasks_lost, 1);
    assert_eq!(report.re_executions, 1);
}

/// A worker that never recovers still has its downtime counted (up to
/// the makespan), and availability never leaves `[0, 1]` even when the
/// repair would land long after the job finished.
#[test]
fn unrecovered_worker_downtime_is_clipped_to_makespan() {
    // Site 0's only worker dies at t=900 and never comes back; site 1
    // finishes the job alone.
    let trace = FaultTrace::parse("900 worker-crash 0 0\n").expect("valid");
    let report = GridSim::new(
        base_config(StrategyKind::Workqueue, 2, 11)
            .with_faults(FaultConfig::none().with_trace(trace)),
    )
    .run();
    assert_eq!(report.tasks_completed, 120);
    let down: f64 = report.per_site.iter().map(|s| s.worker_downtime_s).sum();
    let horizon = report.makespan_minutes * 60.0;
    assert!(
        (down - (horizon - 900.0)).abs() < 1e-6,
        "downtime {down} should cover crash→makespan ({})",
        horizon - 900.0
    );
    let wa = report.mean_worker_availability();
    assert!((0.0..1.0).contains(&wa), "availability {wa}");
}

/// Server outages lose cached files, forcing re-transfers.
///
/// Workqueue on a single site makes the comparison airtight: its task
/// order ignores storage contents, and an eviction-free capacity makes the
/// fault-free cache grow monotonically — so the wiped run's misses are a
/// strict superset of the fault-free run's.
#[test]
fn server_outage_loses_files_and_refetches() {
    let cfg = || {
        SimConfig::paper(small_workload(9, 120), StrategyKind::Workqueue)
            .with_sites(1)
            .with_capacity(20_000)
            .with_seed(9)
    };
    let no_faults = GridSim::new(cfg()).run();
    // Fail the only server mid-run, long after the cache warmed up.
    let trace = FaultTrace::parse("30000 server-fail 0\n31000 server-recover 0\n").expect("valid");
    let faulty = GridSim::new(cfg().with_faults(FaultConfig::none().with_trace(trace))).run();
    assert_eq!(faulty.tasks_completed, 120);
    assert_eq!(faulty.server_outages, 1);
    assert!(faulty.files_lost > 0, "warm cache must lose files");
    assert!(
        faulty.file_transfers > no_faults.file_transfers,
        "lost files must be re-fetched: {} vs {}",
        faulty.file_transfers,
        no_faults.file_transfers
    );
}
