//! # gridsched-bench — the experiment harness
//!
//! One binary per figure/table of the paper (see `src/bin/`), plus
//! criterion micro-benchmarks (see `benches/`). This library holds the
//! shared plumbing: CLI parsing, the paper's default experiment setup,
//! aligned-table printing and CSV emission.
//!
//! Every binary supports:
//!
//! * `--quick` — 2 topology replicates and a 1,500-task workload instead
//!   of 5 × 6,000 (for CI and smoke runs);
//! * `--out <dir>` — also write the series as CSV (default `results/`);
//! * `--check` — assert the paper's qualitative claims and exit non-zero
//!   if the reproduction lost the shape;
//! * `--seeds a,b,c` — override the topology seed list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gridsched_core::StrategyKind;
use gridsched_sim::{run_averaged, MetricsReport, SimConfig};
use gridsched_workload::coadd::CoaddConfig;
use gridsched_workload::Workload;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced workload and replicate count.
    pub quick: bool,
    /// Where to write CSV output (`None` disables).
    pub out_dir: Option<PathBuf>,
    /// Assert the paper's qualitative claims.
    pub check: bool,
    /// Topology seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            quick: false,
            out_dir: Some(PathBuf::from("results")),
            check: false,
            seeds: vec![0, 1, 2, 3, 4],
        }
    }
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    cli.quick = true;
                    cli.seeds = vec![0, 1];
                }
                "--check" => cli.check = true,
                "--no-out" => cli.out_dir = None,
                "--out" => {
                    let dir = args
                        .next()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                    cli.out_dir = Some(PathBuf::from(dir));
                }
                "--seeds" => {
                    let list = args.next().unwrap_or_else(|| usage("--seeds needs a list"));
                    cli.seeds = list
                        .split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad seed list")))
                        .collect();
                    if cli.seeds.is_empty() {
                        usage("empty seed list");
                    }
                }
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        cli
    }

    /// The Coadd workload for this run (scaled down under `--quick`).
    #[must_use]
    pub fn workload(&self) -> Arc<Workload> {
        let mut cfg = CoaddConfig::paper_6000();
        if self.quick {
            cfg.tasks = 1500;
        }
        Arc::new(cfg.generate())
    }

    /// The Coadd generator config for this run (for binaries that sweep
    /// workload parameters, e.g. file size).
    #[must_use]
    pub fn coadd_config(&self) -> CoaddConfig {
        let mut cfg = CoaddConfig::paper_6000();
        if self.quick {
            cfg.tasks = 1500;
        }
        cfg
    }
}

const USAGE: &str =
    "usage: <experiment> [--quick] [--check] [--out DIR | --no-out] [--seeds a,b,c]";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// The paper's six algorithms (§5.3), in figure-legend order.
#[must_use]
pub fn paper_strategies() -> Vec<StrategyKind> {
    StrategyKind::PAPER_SET.to_vec()
}

/// Runs `config` averaged over the CLI's topology seeds.
#[must_use]
pub fn run(cli: &Cli, config: &SimConfig) -> MetricsReport {
    run_averaged(config, &cli.seeds)
}

/// A printable/serialisable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed for our cells).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table and, if `out_dir` is set, writes `<name>.csv`.
    pub fn emit(&self, cli: &Cli, name: &str) {
        print!("{}", self.render());
        if let Some(dir) = &cli.out_dir {
            if let Err(e) = write_csv(dir, name, &self.to_csv()) {
                eprintln!("warning: could not write CSV {name}: {e}");
            }
        }
    }
}

/// Writes `contents` to `<dir>/<name>.csv`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(dir: &Path, name: &str, contents: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Check helper: asserts `cond` (with a message) when `--check` is on,
/// otherwise prints a PASS/FAIL line.
pub fn check(cli: &Cli, label: &str, cond: bool) {
    if cond {
        println!("CHECK PASS: {label}");
    } else if cli.check {
        eprintln!("CHECK FAIL: {label}");
        std::process::exit(1);
    } else {
        println!("CHECK FAIL (informational): {label}");
    }
}

/// Formats a float with `digits` decimals.
#[must_use]
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new("demo", &["x", "makespan"]);
        t.push_row(vec!["3000".into(), "26887".into()]);
        t.push_row(vec!["6000".into(), "26974".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("26887"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x,makespan"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn default_cli() {
        let cli = Cli::default();
        assert_eq!(cli.seeds.len(), 5);
        assert!(!cli.quick);
    }

    #[test]
    fn quick_workload_is_smaller() {
        let quick = Cli {
            quick: true,
            ..Cli::default()
        };
        assert_eq!(quick.workload().task_count(), 1500);
    }
}
