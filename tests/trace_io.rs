//! Workload trace round-trip through the filesystem, and feeding a trace
//! back into a simulation — the path a user with a *real* Coadd trace
//! would take.

use std::sync::Arc;

use gridsched::prelude::*;
use gridsched::workload::trace::{read_trace, write_trace};

#[test]
fn trace_file_round_trip_and_simulate() {
    let original = CoaddConfig::small(11).generate();

    let dir = std::env::temp_dir().join("gridsched-trace-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("coadd-small.trace");

    let file = std::fs::File::create(&path).expect("create trace");
    write_trace(&original, std::io::BufWriter::new(file)).expect("write trace");

    let file = std::fs::File::open(&path).expect("open trace");
    let reloaded = read_trace(std::io::BufReader::new(file)).expect("parse trace");
    assert_eq!(original, reloaded);

    // A reloaded trace drives a simulation exactly like the original.
    let run = |wl: Workload| {
        let config = SimConfig::paper(Arc::new(wl), StrategyKind::Rest).with_sites(3);
        GridSim::new(config).run()
    };
    assert_eq!(run(original), run(reloaded));

    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_trace_fails_cleanly() {
    let wl = CoaddConfig::small(12).generate();
    let mut buf = Vec::new();
    write_trace(&wl, &mut buf).expect("in-memory write");
    // Chop the declaration lines off.
    let cut = &buf[..40];
    let err = read_trace(cut).expect_err("must not parse");
    let msg = err.to_string();
    assert!(
        msg.contains("missing") || msg.contains("parse"),
        "got: {msg}"
    );
}
