//! Weighted undirected multigraph with typed nodes.
//!
//! Nodes are routers/gateways/hosts of the grid network; edges are physical
//! links carrying a bandwidth (bytes/second) and a latency (seconds). The
//! graph is an arena: nodes and edges are identified by dense integer ids
//! ([`NodeId`], [`EdgeId`]) so downstream crates (the flow-level network
//! simulator) can index per-link state with plain vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Dense identifier of a graph edge (a network link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The role a node plays in the grid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// WAN backbone router (tier 1).
    WanCore,
    /// Metropolitan-area router (tier 2).
    ManRouter,
    /// Gateway of one grid site / cluster (tier 3). Carries the site index.
    SiteGateway(u32),
    /// The global external file server holding every file.
    FileServer,
    /// The global scheduler host.
    Scheduler,
}

/// Physical properties of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bytes per second (shared by all flows crossing the link).
    pub bandwidth_bps: f64,
    /// One-way propagation latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Creates a link spec.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not strictly positive or latency is negative,
    /// or either is non-finite.
    #[must_use]
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive and finite: {bandwidth_bps}"
        );
        assert!(
            latency_s.is_finite() && latency_s >= 0.0,
            "latency must be non-negative and finite: {latency_s}"
        );
        LinkSpec {
            bandwidth_bps,
            latency_s,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    a: NodeId,
    b: NodeId,
    spec: LinkSpec,
}

/// A weighted undirected multigraph of network nodes and links.
///
/// # Example
///
/// ```
/// use gridsched_topology::{Graph, LinkSpec, NodeKind};
///
/// let mut g = Graph::new();
/// let core = g.add_node(NodeKind::WanCore);
/// let site = g.add_node(NodeKind::SiteGateway(0));
/// let e = g.add_edge(core, site, LinkSpec::new(1e6, 0.01));
/// assert_eq!(g.endpoints(e), (core, site));
/// assert_eq!(g.neighbors(core).count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    kinds: Vec<NodeKind>,
    edges: Vec<Edge>,
    /// adjacency[n] = list of (edge, other endpoint)
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node of the given kind and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.kinds.len()).expect("too many nodes"));
        self.kinds.push(kind);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist or if `a == b` (self-loops make
    /// no sense for physical links).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> EdgeId {
        assert!(a.index() < self.kinds.len(), "node {a} out of bounds");
        assert!(b.index() < self.kinds.len(), "node {b} out of bounds");
        assert_ne!(a, b, "self-loop links are not allowed");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        self.edges.push(Edge { a, b, spec });
        self.adjacency[a.index()].push((id, b));
        self.adjacency[b.index()].push((id, a));
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges (links).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[must_use]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// The two endpoints of an edge, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.a, edge.b)
    }

    /// The physical properties of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    #[must_use]
    pub fn link(&self, e: EdgeId) -> LinkSpec {
        self.edges[e.index()].spec
    }

    /// Iterates over `(edge, neighbor)` pairs incident to `n`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adjacency[n.index()].iter().copied()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// All link bandwidths indexed by [`EdgeId::index`] — the layout the
    /// flow-level network simulator wants.
    #[must_use]
    pub fn bandwidths(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.spec.bandwidth_bps).collect()
    }

    /// Finds the first node of a given kind, if any.
    #[must_use]
    pub fn find_kind(&self, kind: NodeKind) -> Option<NodeId> {
        self.kinds
            .iter()
            .position(|&k| k == kind)
            .map(|i| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::WanCore);
        let b = g.add_node(NodeKind::ManRouter);
        let c = g.add_node(NodeKind::SiteGateway(0));
        let e1 = g.add_edge(a, b, LinkSpec::new(1e9, 0.001));
        let e2 = g.add_edge(b, c, LinkSpec::new(1e8, 0.002));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.endpoints(e1), (a, b));
        assert_eq!(g.link(e2).latency_s, 0.002);
        assert_eq!(g.kind(c), NodeKind::SiteGateway(0));
        let nb: Vec<_> = g.neighbors(b).collect();
        assert_eq!(nb, vec![(e1, a), (e2, c)]);
    }

    #[test]
    fn multigraph_allowed() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::WanCore);
        let b = g.add_node(NodeKind::ManRouter);
        g.add_edge(a, b, LinkSpec::new(1.0, 0.0));
        g.add_edge(a, b, LinkSpec::new(2.0, 0.0));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(a).count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::WanCore);
        g.add_edge(a, a, LinkSpec::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkSpec::new(0.0, 0.0);
    }

    #[test]
    fn bandwidths_layout() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::WanCore);
        let b = g.add_node(NodeKind::ManRouter);
        let c = g.add_node(NodeKind::FileServer);
        g.add_edge(a, b, LinkSpec::new(10.0, 0.0));
        g.add_edge(b, c, LinkSpec::new(20.0, 0.0));
        assert_eq!(g.bandwidths(), vec![10.0, 20.0]);
    }

    #[test]
    fn find_kind_works() {
        let mut g = Graph::new();
        g.add_node(NodeKind::WanCore);
        let fs = g.add_node(NodeKind::FileServer);
        assert_eq!(g.find_kind(NodeKind::FileServer), Some(fs));
        assert_eq!(g.find_kind(NodeKind::Scheduler), None);
    }
}
