//! # gridsched-faults — fault injection & churn for the grid simulator
//!
//! The paper's system model assumes a perfectly reliable grid: every worker
//! and every data server lives forever. Real grids churn — workers crash
//! and rejoin, data servers go down and lose their cached replicas. This
//! crate supplies the *fault model* the simulator (`gridsched-sim`) drives
//! through the whole stack:
//!
//! * [`FaultConfig`] — the knobs of one run's fault environment: seeded
//!   exponential MTBF/MTTR processes per worker and per data server, plus
//!   an optional deterministic [`FaultTrace`] of scripted events;
//! * [`FaultTimeline`] — a per-entity alternating-renewal process
//!   (up for `Exp(MTBF)`, down for a Weibull repair of the configured mean
//!   and shape — shape 1 is the classic `Exp(MTTR)`, shapes < 1 are
//!   fat-tailed), each entity drawing from its own decorrelated RNG stream
//!   so event interleaving never perturbs another entity's timeline;
//! * [`FaultTrace`] / [`FaultEvent`] — scripted fault timelines with a
//!   line-oriented text format for the CLI's `--fault-trace`.
//!
//! Everything is deterministic given the master seed: the same
//! configuration always produces the same failure/recovery timeline.
//!
//! ## Example
//!
//! ```
//! use gridsched_faults::{Entity, FaultConfig, FaultTimeline};
//!
//! let faults = FaultConfig::none().with_worker_faults(3600.0, 600.0);
//! assert!(!faults.is_inert());
//!
//! // Two timelines for the same entity replay identically.
//! let mut a = FaultTimeline::new(7, Entity::Worker(3), 3600.0, 600.0);
//! let mut b = FaultTimeline::new(7, Entity::Worker(3), 3600.0, 600.0);
//! assert_eq!(a.time_to_failure(), b.time_to_failure());
//! assert_eq!(a.time_to_repair(), b.time_to_repair());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timeline;
pub mod trace;

pub use timeline::{Entity, FaultTimeline};
pub use trace::{FaultEvent, FaultKind, FaultTrace};

use serde::{Deserialize, Serialize};

/// The fault environment of one simulation run.
///
/// All rates are mean seconds of the corresponding exponential
/// distribution. `None` disables the respective stochastic process; a
/// config with no processes and no trace is *inert* and must reproduce the
/// faultless engine byte for byte (property-tested in `tests/`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between failures of each worker, seconds (`None` = workers
    /// never crash stochastically).
    pub worker_mtbf_s: Option<f64>,
    /// Mean time to repair of a crashed worker, seconds.
    pub worker_mttr_s: f64,
    /// Weibull shape of the worker repair distribution (1.0 = exponential,
    /// < 1.0 fat-tailed: many quick repairs, occasional very long ones).
    pub worker_mttr_shape: f64,
    /// Mean time between outages of each site's data server, seconds
    /// (`None` = servers never fail stochastically).
    pub server_mtbf_s: Option<f64>,
    /// Mean time to repair of a failed data server, seconds.
    pub server_mttr_s: f64,
    /// Weibull shape of the server repair distribution (1.0 = exponential).
    pub server_mttr_shape: f64,
    /// Mean time between faults of each network link, seconds (`None` =
    /// links never fault stochastically).
    pub link_mtbf_s: Option<f64>,
    /// Mean duration of a link fault window, seconds.
    pub link_mttr_s: f64,
    /// What a link fault *is*: `None` ⇒ a hard outage (the link goes down
    /// and crossing flows stall); `Some(f)` with `f ∈ (0, 1)` ⇒ a
    /// degraded-bandwidth window (the link stays up at `capacity × f`).
    pub link_degrade_factor: Option<f64>,
    /// Scripted fault events, applied in addition to the stochastic
    /// processes.
    pub trace: Option<FaultTrace>,
    /// Mean time between correlated crash *bursts*, seconds (`None` =
    /// independent crashes only). Each burst strikes one uniformly-drawn
    /// site and crashes up to [`burst_size`](FaultConfig::burst_size) of
    /// its live workers at once — the crash-storm scenario where static
    /// tuning loses. Requires worker faults (the burst victims repair
    /// through their own MTTR process).
    pub burst_rate_s: Option<f64>,
    /// Workers crashed per burst (meaningful only with
    /// [`burst_rate_s`](FaultConfig::burst_rate_s)).
    pub burst_size: u32,
}

impl FaultConfig {
    /// A configuration that injects nothing (inert).
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            worker_mtbf_s: None,
            worker_mttr_s: 0.0,
            worker_mttr_shape: 1.0,
            server_mtbf_s: None,
            server_mttr_s: 0.0,
            server_mttr_shape: 1.0,
            link_mtbf_s: None,
            link_mttr_s: 0.0,
            link_degrade_factor: None,
            trace: None,
            burst_rate_s: None,
            burst_size: 0,
        }
    }

    /// Enables worker churn: crashes every `Exp(mtbf_s)`, repairs after
    /// `Exp(mttr_s)`.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    #[must_use]
    pub fn with_worker_faults(mut self, mtbf_s: f64, mttr_s: f64) -> Self {
        assert!(
            mtbf_s > 0.0 && mtbf_s.is_finite(),
            "worker MTBF must be positive"
        );
        assert!(
            mttr_s > 0.0 && mttr_s.is_finite(),
            "worker MTTR must be positive"
        );
        self.worker_mtbf_s = Some(mtbf_s);
        self.worker_mttr_s = mttr_s;
        self
    }

    /// Enables data-server churn: outages every `Exp(mtbf_s)` with loss of
    /// all unpinned cached files, repairs after `Exp(mttr_s)`.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    #[must_use]
    pub fn with_server_faults(mut self, mtbf_s: f64, mttr_s: f64) -> Self {
        assert!(
            mtbf_s > 0.0 && mtbf_s.is_finite(),
            "server MTBF must be positive"
        );
        assert!(
            mttr_s > 0.0 && mttr_s.is_finite(),
            "server MTTR must be positive"
        );
        self.server_mtbf_s = Some(mtbf_s);
        self.server_mttr_s = mttr_s;
        self
    }

    /// Sets the Weibull shape of the worker repair distribution (1.0 keeps
    /// the exponential repairs byte-for-byte; the ROADMAP's fat-tailed
    /// follow-up uses shapes < 1).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not strictly positive and finite.
    #[must_use]
    pub fn with_worker_repair_shape(mut self, shape: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "worker repair shape must be positive"
        );
        self.worker_mttr_shape = shape;
        self
    }

    /// Sets the Weibull shape of the server repair distribution (1.0 =
    /// exponential).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not strictly positive and finite.
    #[must_use]
    pub fn with_server_repair_shape(mut self, shape: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "server repair shape must be positive"
        );
        self.server_mttr_shape = shape;
        self
    }

    /// Enables network-link churn: each link faults every `Exp(mtbf_s)`
    /// for an `Exp(mttr_s)` window. By default a fault is a hard outage
    /// (crossing flows stall at rate zero); see
    /// [`FaultConfig::with_link_degrade_factor`] for degraded-bandwidth
    /// windows instead.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    #[must_use]
    pub fn with_link_faults(mut self, mtbf_s: f64, mttr_s: f64) -> Self {
        assert!(
            mtbf_s > 0.0 && mtbf_s.is_finite(),
            "link MTBF must be positive"
        );
        assert!(
            mttr_s > 0.0 && mttr_s.is_finite(),
            "link MTTR must be positive"
        );
        self.link_mtbf_s = Some(mtbf_s);
        self.link_mttr_s = mttr_s;
        self
    }

    /// Makes link fault windows *degraded-bandwidth* windows (the link
    /// stays up at `capacity × factor`) instead of hard outages.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is strictly inside `(0, 1)` — `1` would be
    /// a no-op and `0` is an outage, spelled `--link-mtbf` without a
    /// degrade factor.
    #[must_use]
    pub fn with_link_degrade_factor(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0 && factor.is_finite(),
            "link degrade factor must be in (0, 1)"
        );
        self.link_degrade_factor = Some(factor);
        self
    }

    /// Attaches a scripted fault trace (replayed alongside any stochastic
    /// processes).
    #[must_use]
    pub fn with_trace(mut self, trace: FaultTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enables correlated site-scoped crash bursts: every `Exp(rate_s)` a
    /// uniformly-drawn site loses up to `size` live workers at once.
    /// Burst victims repair through the normal worker-MTTR process, so
    /// worker faults must also be enabled (the engine asserts this).
    /// Disabled bursts are byte-identical to the independent model.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_s` is strictly positive and finite and
    /// `size >= 1`.
    #[must_use]
    pub fn with_worker_bursts(mut self, rate_s: f64, size: u32) -> Self {
        assert!(
            rate_s > 0.0 && rate_s.is_finite(),
            "burst rate must be positive"
        );
        assert!(size >= 1, "burst size must be >= 1");
        self.burst_rate_s = Some(rate_s);
        self.burst_size = size;
        self
    }

    /// Whether this configuration injects no faults at all. An inert config
    /// must leave the simulation bit-identical to running without any fault
    /// config.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.worker_mtbf_s.is_none()
            && self.server_mtbf_s.is_none()
            && self.link_mtbf_s.is_none()
            && self.trace.as_ref().is_none_or(|t| t.events.is_empty())
    }

    /// One-line human summary (embedded in report config summaries).
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_inert() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        let shape = |k: f64| {
            if k == 1.0 {
                String::new()
            } else {
                format!(" repair-shape={k:.2}")
            }
        };
        if let Some(mtbf) = self.worker_mtbf_s {
            parts.push(format!(
                "worker mtbf={mtbf:.0}s mttr={:.0}s{}",
                self.worker_mttr_s,
                shape(self.worker_mttr_shape)
            ));
        }
        if let Some(mtbf) = self.server_mtbf_s {
            parts.push(format!(
                "server mtbf={mtbf:.0}s mttr={:.0}s{}",
                self.server_mttr_s,
                shape(self.server_mttr_shape)
            ));
        }
        if let Some(mtbf) = self.link_mtbf_s {
            let mode = match self.link_degrade_factor {
                Some(f) => format!(" degrade={f:.2}"),
                None => String::new(),
            };
            parts.push(format!(
                "link mtbf={mtbf:.0}s mttr={:.0}s{mode}",
                self.link_mttr_s
            ));
        }
        if let Some(rate) = self.burst_rate_s {
            parts.push(format!("bursts rate={rate:.0}s size={}", self.burst_size));
        }
        if let Some(t) = &self.trace {
            if !t.events.is_empty() {
                parts.push(format!("trace={} events", t.events.len()));
            }
        }
        parts.join("; ")
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        assert!(FaultConfig::none().is_inert());
        assert!(FaultConfig::default().is_inert());
        assert_eq!(FaultConfig::none().summary(), "none");
    }

    #[test]
    fn empty_trace_is_inert() {
        let cfg = FaultConfig::none().with_trace(FaultTrace::default());
        assert!(cfg.is_inert());
    }

    #[test]
    fn processes_are_not_inert() {
        let w = FaultConfig::none().with_worker_faults(3600.0, 600.0);
        assert!(!w.is_inert());
        assert!(w.summary().contains("worker mtbf=3600s"));
        let s = FaultConfig::none().with_server_faults(86400.0, 1800.0);
        assert!(!s.is_inert());
        assert!(s.summary().contains("server mtbf=86400s"));
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_rejected() {
        let _ = FaultConfig::none().with_worker_faults(0.0, 600.0);
    }

    #[test]
    fn repair_shapes_surface_in_summary() {
        let cfg = FaultConfig::none()
            .with_worker_faults(3600.0, 600.0)
            .with_worker_repair_shape(0.5);
        assert!(
            cfg.summary().contains("repair-shape=0.50"),
            "{}",
            cfg.summary()
        );
        // Shape 1.0 stays silent — it is the legacy exponential.
        let plain = FaultConfig::none().with_server_faults(7200.0, 900.0);
        assert!(!plain.summary().contains("repair-shape"));
    }

    #[test]
    #[should_panic(expected = "repair shape must be positive")]
    fn negative_shape_rejected() {
        let _ = FaultConfig::none().with_worker_repair_shape(-1.0);
    }

    #[test]
    fn bursts_surface_in_summary() {
        let cfg = FaultConfig::none()
            .with_worker_faults(3600.0, 600.0)
            .with_worker_bursts(1800.0, 4);
        assert!(!cfg.is_inert());
        assert!(
            cfg.summary().contains("bursts rate=1800s size=4"),
            "{}",
            cfg.summary()
        );
        // No bursts: no burst summary part, and none() stays inert.
        let plain = FaultConfig::none().with_worker_faults(3600.0, 600.0);
        assert!(!plain.summary().contains("bursts"));
    }

    #[test]
    fn link_faults_surface_in_summary() {
        let hard = FaultConfig::none().with_link_faults(7200.0, 300.0);
        assert!(!hard.is_inert());
        assert!(
            hard.summary().contains("link mtbf=7200s mttr=300s"),
            "{}",
            hard.summary()
        );
        assert!(!hard.summary().contains("degrade"));
        let soft = FaultConfig::none()
            .with_link_faults(7200.0, 300.0)
            .with_link_degrade_factor(0.25);
        assert!(
            soft.summary().contains("degrade=0.25"),
            "{}",
            soft.summary()
        );
    }

    #[test]
    #[should_panic(expected = "link MTBF must be positive")]
    fn zero_link_mtbf_rejected() {
        let _ = FaultConfig::none().with_link_faults(0.0, 300.0);
    }

    #[test]
    #[should_panic(expected = "degrade factor must be in (0, 1)")]
    fn degrade_factor_one_rejected() {
        let _ = FaultConfig::none().with_link_degrade_factor(1.0);
    }

    #[test]
    #[should_panic(expected = "burst rate must be positive")]
    fn zero_burst_rate_rejected() {
        let _ = FaultConfig::none().with_worker_bursts(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "burst size must be >= 1")]
    fn zero_burst_size_rejected() {
        let _ = FaultConfig::none().with_worker_bursts(1800.0, 0);
    }
}
