//! Prometheus text exposition of the instrument registry, and a std-only
//! `/metrics` + `/healthz` server.
//!
//! [`render_prometheus`] turns an instrument snapshot into the Prometheus
//! text format 0.0.4: counters gain the conventional `_total` suffix,
//! power-of-two histograms become cumulative `_bucket{le="…"}` series
//! (bucket `k` spans `[2^k, 2^(k+1))`, so its inclusive upper bound is
//! `2^(k+1)-1`; the saturation bucket folds into `+Inf`) plus `_sum` and
//! `_count`.
//!
//! [`MetricsServer`] serves the most recently published rendering from a
//! background thread over a plain `TcpListener`. The simulation (and its
//! `Rc`-based registry) stays single-threaded: the engine renders a
//! snapshot to a `String` and [`MetricsServer::publish`]es it through an
//! `Arc<Mutex<String>>`; the serving thread never touches live
//! instruments. This is deliberately the first brick of the future
//! `gridsched-server` control plane.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::instruments::{InstrumentSnapshot, InstrumentValue, BUCKETS};

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`), per the text exposition format.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps an instrument name to a Prometheus metric name: `gridsched_`
/// prefix, dots (and any other non-alphanumeric byte) to underscores.
#[must_use]
pub fn metric_name(instrument: &str) -> String {
    let mut out = String::with_capacity(instrument.len() + 10);
    out.push_str("gridsched_");
    for ch in instrument.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Appends one sample line: `name{k="v",…} value`. Label values are
/// escaped; integral values print without a fraction.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    if value.fract() == 0.0 && value.abs() < 9.007_199_254_740_992e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value}");
    }
}

/// Renders an instrument snapshot as Prometheus text format 0.0.4.
#[must_use]
pub fn render_prometheus(snapshots: &[InstrumentSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        let base = metric_name(snap.name);
        match &snap.value {
            InstrumentValue::Counter { value } => {
                let name = format!("{base}_total");
                let _ = writeln!(out, "# HELP {name} gridsched instrument {}", snap.name);
                let _ = writeln!(out, "# TYPE {name} counter");
                write_sample(&mut out, &name, &[], *value as f64);
            }
            InstrumentValue::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                let _ = writeln!(out, "# HELP {base} gridsched instrument {}", snap.name);
                let _ = writeln!(out, "# TYPE {base} histogram");
                let bucket_name = format!("{base}_bucket");
                // Cumulative counts; the last numeric bound is 2^32-1 and
                // the saturation bucket (k = BUCKETS-1) folds into +Inf.
                let highest = buckets[..BUCKETS - 1]
                    .iter()
                    .rposition(|&n| n > 0)
                    .unwrap_or(0);
                let mut cumulative = 0u64;
                for (k, &n) in buckets.iter().enumerate().take(highest + 1) {
                    cumulative += n;
                    let le = format!("{}", (2u64 << k) - 1);
                    write_sample(&mut out, &bucket_name, &[("le", &le)], cumulative as f64);
                }
                write_sample(&mut out, &bucket_name, &[("le", "+Inf")], *count as f64);
                write_sample(&mut out, &format!("{base}_sum"), &[], *sum as f64);
                write_sample(&mut out, &format!("{base}_count"), &[], *count as f64);
            }
        }
    }
    out
}

/// A background `/metrics` + `/healthz` server over the last published
/// rendering. Dropping the handle shuts the serving thread down.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// starts the serving thread.
    ///
    /// # Errors
    ///
    /// Returns the bind or spawn error.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let body = Arc::new(Mutex::new(String::from(
            "# gridsched run starting; no snapshot published yet\n",
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let body = Arc::clone(&body);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("gridsched-metrics".to_string())
                .spawn(move || serve_loop(&listener, &body, &stop))?
        };
        Ok(MetricsServer {
            addr: local,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the served `/metrics` body.
    pub fn publish(&self, rendered: String) {
        let mut guard = self
            .body
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = rendered;
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, body: &Mutex<String>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = stream {
            handle_conn(stream, body);
        }
    }
}

fn handle_conn(mut stream: TcpStream, body: &Mutex<String>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut len = 0usize;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .map(|p| p.split('?').next().unwrap_or(p).to_string());
    let (status, content_type, payload) = match path.as_deref() {
        Some("/metrics") => {
            let snapshot = body
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                snapshot,
            )
        }
        Some("/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    let _ = stream.write_all(payload.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn label_escaping() {
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd".to_string()
        );
    }

    #[test]
    fn counter_names_gain_total_suffix() {
        let t = Telemetry::enabled();
        t.counter("sched.wake.calls").add(42);
        let text = render_prometheus(&t.snapshot());
        assert!(text.contains("# TYPE gridsched_sched_wake_calls_total counter"));
        assert!(text.contains("\ngridsched_sched_wake_calls_total 42\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_le_labels() {
        let t = Telemetry::enabled();
        let h = t.histogram("scan.len");
        h.record(0); // bucket 0, le="1"
        h.record(1); // bucket 0
        h.record(2); // bucket 1, le="3"
        h.record(5); // bucket 2, le="7"
        let text = render_prometheus(&t.snapshot());
        assert!(text.contains("# TYPE gridsched_scan_len histogram"));
        assert!(text.contains("gridsched_scan_len_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("gridsched_scan_len_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("gridsched_scan_len_bucket{le=\"7\"} 4\n"));
        assert!(text.contains("gridsched_scan_len_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("gridsched_scan_len_sum 8\n"));
        assert!(text.contains("gridsched_scan_len_count 4\n"));
    }

    #[test]
    fn saturated_observations_fold_into_inf_bucket() {
        let t = Telemetry::enabled();
        t.histogram("big").record(u64::MAX);
        let text = render_prometheus(&t.snapshot());
        // The saturation bucket has no finite le bound of its own.
        assert!(text.contains("gridsched_big_bucket{le=\"+Inf\"} 1\n"));
        assert!(!text.contains("le=\"18446744073709551615\""));
    }

    #[test]
    fn write_sample_escapes_labels() {
        let mut out = String::new();
        write_sample(&mut out, "m", &[("strategy", "a\"b\\c")], 1.0);
        assert_eq!(out, "m{strategy=\"a\\\"b\\\\c\"} 1\n");
    }

    #[test]
    fn server_serves_metrics_healthz_and_404() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.publish("gridsched_up 1\n".to_string());

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("version=0.0.4"));
        assert!(metrics.ends_with("gridsched_up 1\n"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.publish("gridsched_up 2\n".to_string());
        assert!(get(addr, "/metrics").ends_with("gridsched_up 2\n"));
        drop(server);
        // The port is released after drop: a fresh bind to it succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
