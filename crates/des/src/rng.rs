//! Deterministic seed derivation for simulation components.
//!
//! Every run of the simulator is driven by a single master seed. Each
//! component (topology generator, workload generator, scheduler
//! randomization, worker-speed sampler, …) derives its own independent
//! stream with [`derive_seed`], so adding randomness to one component never
//! perturbs another — a property the experiment harness relies on when
//! comparing algorithms on *identical* workloads and topologies.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Well-known stream labels for the simulator's components.
///
/// Using an enum (instead of ad-hoc integers) keeps derivations collision-free
/// and self-documenting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Topology generation (Tiers-like generator).
    Topology,
    /// Workload generation (Coadd generator).
    Workload,
    /// Scheduler randomization (`ChooseTask(n)` sampling).
    Scheduler,
    /// Worker compute-speed sampling (Top500-like model).
    WorkerSpeeds,
    /// Proactive data-replication placement.
    Replication,
    /// Fault-injection timelines (worker/server MTBF/MTTR processes).
    Faults,
    /// Anything else; carries a caller-chosen sub-label.
    Custom(u64),
}

impl Stream {
    fn label(self) -> u64 {
        match self {
            Stream::Topology => 0x1,
            Stream::Workload => 0x2,
            Stream::Scheduler => 0x3,
            Stream::WorkerSpeeds => 0x4,
            Stream::Replication => 0x5,
            Stream::Faults => 0x6,
            Stream::Custom(x) => 0x1000_0000_0000_0000 ^ x,
        }
    }
}

/// SplitMix64 step — a strong 64-bit mixer, the standard tool for expanding
/// one seed into many decorrelated ones.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a decorrelated 64-bit seed for (`master_seed`, `stream`).
///
/// The same inputs always give the same output; distinct streams give
/// (effectively) independent outputs.
#[must_use]
pub fn derive_seed(master_seed: u64, stream: Stream) -> u64 {
    splitmix64(splitmix64(master_seed) ^ stream.label())
}

/// Convenience: a seeded [`StdRng`] for (`master_seed`, `stream`).
///
/// # Example
///
/// ```
/// use gridsched_des::rng::{rng_for, Stream};
/// use rand::Rng;
///
/// let mut a = rng_for(7, Stream::Scheduler);
/// let mut b = rng_for(7, Stream::Scheduler);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // reproducible
/// ```
#[must_use]
pub fn rng_for(master_seed: u64, stream: Stream) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master_seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        assert_eq!(
            derive_seed(42, Stream::Topology),
            derive_seed(42, Stream::Topology)
        );
    }

    #[test]
    fn streams_are_decorrelated() {
        let a = derive_seed(42, Stream::Topology);
        let b = derive_seed(42, Stream::Workload);
        let c = derive_seed(43, Stream::Topology);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn custom_streams_distinct() {
        let xs: Vec<u64> = (0..100)
            .map(|i| derive_seed(7, Stream::Custom(i)))
            .collect();
        let mut uniq = xs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len());
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut r1 = rng_for(1, Stream::WorkerSpeeds);
        let mut r2 = rng_for(1, Stream::WorkerSpeeds);
        let v1: Vec<f64> = (0..16).map(|_| r1.gen()).collect();
        let v2: Vec<f64> = (0..16).map(|_| r2.gen()).collect();
        assert_eq!(v1, v2);
    }
}
