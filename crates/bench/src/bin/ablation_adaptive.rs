//! Ablation — adaptive fault-tolerance: do the closed loops earn their
//! keep against hand-tuned static configurations?
//!
//! Three face-offs, one per controller:
//!
//! 1. **Adaptive replica throttle** (storage affinity, 4 workers/site —
//!    the Pareto-sweep setup of `ablation_baselines`): uncapped
//!    vs the hand-tuned `cap=1 site-budget=2` knee vs the closed loop,
//!    which is told *nothing* about caps and must land at (or beat) the
//!    knee on both speculative waste and makespan.
//! 2. **Churn-aware placement + circuit breakers** under a flaky-site
//!    storm (scripted recurring crash episodes at two sites over a mild
//!    uniform background): every static strategy runs open-loop, then
//!    the best of them re-runs with the placement loop. Crashes at a
//!    flaky site *predict more crashes there* — exactly the structure a
//!    breaker can learn — so the loop must beat the best static
//!    strategy while visibly tripping breakers.
//! 3. **Self-tuning Young–Daly**: a declared-MTBF `young-daly` oracle vs
//!    `young-daly-adaptive`, which estimates per-site MTBF from observed
//!    failure interarrivals and is never told the fault model. Gate:
//!    within 10% of the oracle's wasted + checkpoint-overhead compute.
//!
//! Results go to `BENCH_adaptive.json` (machine-readable; consumed by
//! CI) in the working directory; tables follow the usual `--out` rules.

use std::fmt::Write as _;
use std::sync::Arc;

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::{ControlConfig, ReplicaThrottle, StrategyKind};
use gridsched_sim::telemetry::InstrumentValue;
use gridsched_sim::{
    CheckpointConfig, FaultConfig, FaultEvent, FaultKind, FaultTrace, GridSim, MetricsReport,
    SimConfig, Telemetry,
};
use gridsched_workload::Workload;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let throttle = throttle_face(&cli, &workload);
    let placement = placement_face(&cli, &workload);
    let young_daly = young_daly_face(&cli, &workload);

    let json = to_json(&cli, &throttle, &placement, &young_daly);
    if let Err(e) = std::fs::write("BENCH_adaptive.json", &json) {
        eprintln!("warning: could not write BENCH_adaptive.json: {e}");
    } else {
        println!("wrote BENCH_adaptive.json");
    }

    run_checks(&cli, &throttle, &placement, &young_daly);
}

/// One measured point of the throttle face-off.
struct ThrottlePoint {
    label: String,
    makespan_min: f64,
    wasted_s: f64,
    replicas_cancelled: u64,
}

struct ThrottleFace {
    uncapped: ThrottlePoint,
    knee: ThrottlePoint,
    /// `cap=1` with no site budget — the knee restricted to the one
    /// actuator the controller actually has. The fair waste target:
    /// the hand-tuned knee's extra site budget is outside the loop's
    /// actuation space.
    cap_only: ThrottlePoint,
    adaptive: ThrottlePoint,
}

/// Face 1: the adaptive replica throttle against the hand-tuned knee.
fn throttle_face(cli: &Cli, workload: &Arc<Workload>) -> ThrottleFace {
    let base = |w: &Arc<Workload>| {
        SimConfig::paper(w.clone(), StrategyKind::StorageAffinity).with_workers_per_site(4)
    };
    let measure = |config: &SimConfig, label: &str| {
        let r = run(cli, config);
        ThrottlePoint {
            label: label.to_string(),
            makespan_min: r.makespan_minutes,
            wasted_s: r.wasted_compute_s,
            replicas_cancelled: r.replicas_cancelled,
        }
    };
    let uncapped = measure(&base(workload), "uncapped");
    let knee = measure(
        &base(workload).with_replica_throttle(
            ReplicaThrottle::none()
                .with_replica_cap(1)
                .with_site_budget(2),
        ),
        "cap=1 site-budget=2 (hand-tuned knee)",
    );
    let cap_only = measure(
        &base(workload).with_replica_throttle(ReplicaThrottle::none().with_replica_cap(1)),
        "cap=1 (cap actuator only)",
    );
    let adaptive = measure(
        &base(workload).with_control(ControlConfig::none().with_adaptive_throttle()),
        "adaptive (no caps declared)",
    );

    let mut table = Table::new(
        "Ablation: adaptive replica throttle vs hand-tuned knee (storage affinity, 4 workers/site)",
        &[
            "configuration",
            "makespan_min",
            "wasted_compute_h",
            "replicas_cancelled",
        ],
    );
    for p in [&uncapped, &knee, &cap_only, &adaptive] {
        table.push_row(vec![
            p.label.clone(),
            fmt(p.makespan_min, 0),
            fmt(p.wasted_s / 3600.0, 1),
            p.replicas_cancelled.to_string(),
        ]);
    }
    table.emit(cli, "ablation_adaptive_throttle");
    ThrottleFace {
        uncapped,
        knee,
        cap_only,
        adaptive,
    }
}

struct PlacementFace {
    /// (strategy label, makespan) for every open-loop strategy.
    statics: Vec<(String, f64)>,
    best_static: (String, f64),
    best_static_tasks_lost: u64,
    adaptive_makespan: f64,
    adaptive_tasks_lost: u64,
    breaker_opens: u64,
    breaker_half_opens: u64,
}

/// The churn environment of the placement face-off: a mild uniform
/// background of independent crashes everywhere, plus a scripted
/// flaky-site storm — two sites suffer recurring crash episodes (three
/// waves of all-worker crashes every three hours). Episodes are
/// exactly the failure structure a circuit breaker exploits: a crash
/// at a flaky site *predicts more crashes there within minutes*, so
/// parking the site and probing after the storm wins, while the
/// memoryless background never rewards parking.
fn storm_faults(workers_per_site: usize) -> FaultConfig {
    const FLAKY_SITES: [usize; 2] = [2, 7];
    const FIRST_EPISODE_S: f64 = 1_800.0;
    const EPISODE_EVERY_S: f64 = 10_800.0;
    const EPISODES: usize = 24; // covers ~72h of sim time
    const WAVES: usize = 3;
    const WAVE_EVERY_S: f64 = 420.0;
    const DOWN_FOR_S: f64 = 360.0;
    let mut events = Vec::new();
    for episode in 0..EPISODES {
        let t0 = FIRST_EPISODE_S + episode as f64 * EPISODE_EVERY_S;
        for &site in &FLAKY_SITES {
            for wave in 0..WAVES {
                for worker in 0..workers_per_site {
                    let at_s = t0 + wave as f64 * WAVE_EVERY_S + worker as f64 * 30.0;
                    events.push(FaultEvent {
                        at_s,
                        kind: FaultKind::WorkerCrash { site, worker },
                    });
                    events.push(FaultEvent {
                        at_s: at_s + DOWN_FOR_S,
                        kind: FaultKind::WorkerRecover { site, worker },
                    });
                }
            }
        }
    }
    FaultConfig::none()
        .with_worker_faults(57_600.0, 600.0)
        .with_trace(FaultTrace::new(events))
}

/// Face 2: churn-aware placement + breakers against every static strategy
/// under the flaky-site storm.
fn placement_face(cli: &Cli, workload: &Arc<Workload>) -> PlacementFace {
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
        StrategyKind::Sufferage,
    ];
    let make = |strategy: StrategyKind| {
        SimConfig::paper(workload.clone(), strategy)
            .with_workers_per_site(4)
            .with_faults(storm_faults(4))
    };
    let mut statics: Vec<(StrategyKind, MetricsReport)> = Vec::new();
    for strategy in strategies {
        statics.push((strategy, run(cli, &make(strategy))));
    }
    let (best_kind, best_report) = statics
        .iter()
        .min_by(|a, b| {
            a.1.makespan_minutes
                .partial_cmp(&b.1.makespan_minutes)
                .expect("makespans are finite")
        })
        .map(|(s, r)| (*s, r))
        .expect("non-empty strategy set");

    // The closed loop rides the *best* static strategy — the point is
    // that it must not give that strategy's makespan back while it
    // learns, parks and probes.
    let adaptive_config = make(best_kind).with_control(
        ControlConfig::none()
            .with_churn_placement()
            .with_tick_s(120.0),
    );
    let adaptive = run(cli, &adaptive_config);
    // One extra instrumented single-replicate run for the controller
    // counters (telemetry is provably inert, so this does not perturb
    // the measurement — it *is* the measurement, observed).
    let telemetry = Telemetry::enabled();
    let _ = GridSim::new(adaptive_config.clone())
        .with_telemetry(telemetry.clone())
        .run();
    let counter = |name: &str| {
        telemetry
            .snapshot()
            .into_iter()
            .find(|s| s.name == name)
            .map_or(0, |s| match s.value {
                InstrumentValue::Counter { value } => value,
                _ => 0,
            })
    };
    let breaker_opens = counter("control.breaker.opens");
    let breaker_half_opens = counter("control.breaker.half_opens");

    let mut table = Table::new(
        "Ablation: churn-aware placement + breakers under a flaky-site storm",
        &[
            "configuration",
            "makespan_min",
            "tasks_lost",
            "wasted_h",
            "worker_avail",
        ],
    );
    for (s, r) in &statics {
        table.push_row(vec![
            s.to_string(),
            fmt(r.makespan_minutes, 0),
            r.tasks_lost.to_string(),
            fmt(r.wasted_compute_s / 3600.0, 1),
            fmt(r.mean_worker_availability(), 4),
        ]);
    }
    table.push_row(vec![
        format!("{best_kind}+placement (adaptive)"),
        fmt(adaptive.makespan_minutes, 0),
        adaptive.tasks_lost.to_string(),
        fmt(adaptive.wasted_compute_s / 3600.0, 1),
        fmt(adaptive.mean_worker_availability(), 4),
    ]);
    table.emit(cli, "ablation_adaptive_placement");
    println!(
        "breakers: {breaker_opens} opened, {breaker_half_opens} half-open probes \
         (instrumented single replicate)"
    );

    PlacementFace {
        statics: statics
            .iter()
            .map(|(s, r)| (s.to_string(), r.makespan_minutes))
            .collect(),
        best_static: (best_kind.to_string(), best_report.makespan_minutes),
        best_static_tasks_lost: best_report.tasks_lost,
        adaptive_makespan: adaptive.makespan_minutes,
        adaptive_tasks_lost: adaptive.tasks_lost,
        breaker_opens,
        breaker_half_opens,
    }
}

struct YoungDalyPoint {
    makespan_min: f64,
    /// Re-executed compute plus checkpoint overhead — everything the run
    /// burned that was not first-attempt useful work.
    burned_s: f64,
    checkpoints_written: u64,
}

struct YoungDalyFace {
    oracle: YoungDalyPoint,
    adaptive: YoungDalyPoint,
}

/// Face 3: self-tuning Young–Daly against the declared-MTBF oracle.
fn young_daly_face(cli: &Cli, workload: &Arc<Workload>) -> YoungDalyFace {
    let faults = || FaultConfig::none().with_worker_faults(7_200.0, 1_200.0);
    let measure = |config: &SimConfig| {
        let r = run(cli, config);
        YoungDalyPoint {
            makespan_min: r.makespan_minutes,
            burned_s: r.wasted_compute_s + r.checkpoint_overhead_s,
            checkpoints_written: r.checkpoints_written,
        }
    };
    let oracle = measure(
        &SimConfig::paper(workload.clone(), StrategyKind::Rest2)
            .with_faults(faults())
            .with_checkpointing(CheckpointConfig::young_daly()),
    );
    let adaptive = measure(
        &SimConfig::paper(workload.clone(), StrategyKind::Rest2)
            .with_faults(faults())
            .with_checkpointing(CheckpointConfig::young_daly_adaptive())
            .with_control(
                ControlConfig::none()
                    .with_adaptive_checkpoint()
                    .with_tick_s(300.0),
            ),
    );

    let mut table = Table::new(
        "Ablation: self-tuning Young-Daly vs declared-MTBF oracle (rest.2, worker MTBF 7200s)",
        &[
            "configuration",
            "makespan_min",
            "burned_compute_h",
            "checkpoints",
        ],
    );
    for (label, p) in [
        ("young-daly (oracle, MTBF declared)", &oracle),
        ("young-daly-adaptive (MTBF estimated)", &adaptive),
    ] {
        table.push_row(vec![
            label.to_string(),
            fmt(p.makespan_min, 0),
            fmt(p.burned_s / 3600.0, 1),
            p.checkpoints_written.to_string(),
        ]);
    }
    table.emit(cli, "ablation_adaptive_young_daly");
    YoungDalyFace { oracle, adaptive }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else if num > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

fn run_checks(cli: &Cli, t: &ThrottleFace, p: &PlacementFace, yd: &YoungDalyFace) {
    // Face 1: the loop must land at (or beat) the hand-tuned knee —
    // waste within the dead band of the knee's, makespan at least as
    // good. (The cap-only row is context: the controller deliberately
    // probes above the pure-waste floor whenever the ratio sits below
    // the low water, trading bounded waste for makespan.)
    check(
        cli,
        "adaptive throttle cuts speculative waste at least 3x below uncapped",
        t.adaptive.wasted_s <= t.uncapped.wasted_s / 3.0,
    );
    check(
        cli,
        "adaptive throttle matches the hand-tuned knee's waste (within 10%)",
        t.adaptive.wasted_s <= t.knee.wasted_s * 1.10,
    );
    check(
        cli,
        "adaptive throttle beats the hand-tuned knee's makespan",
        t.adaptive.makespan_min < t.knee.makespan_min,
    );
    check(
        cli,
        "adaptive throttle's makespan is no worse than uncapped (within 5%)",
        t.adaptive.makespan_min <= t.uncapped.makespan_min * 1.05,
    );

    // Face 2: the placement loop on the best static strategy.
    let mean_static = p.statics.iter().map(|(_, m)| m).sum::<f64>() / p.statics.len() as f64;
    check(
        cli,
        "placement loop beats the best static strategy under the storm",
        p.adaptive_makespan < p.best_static.1,
    );
    check(
        cli,
        "placement loop loses fewer task attempts than the best static",
        p.adaptive_tasks_lost < p.best_static_tasks_lost,
    );
    check(
        cli,
        "placement loop beats the static field's mean makespan",
        p.adaptive_makespan < mean_static,
    );
    check(
        cli,
        "circuit breakers actually tripped under the storm",
        p.breaker_opens > 0,
    );

    // Face 3: the estimator must approach the declared-MTBF oracle.
    check(
        cli,
        "self-tuned young-daly burns within 10% of the oracle's compute",
        yd.adaptive.burned_s <= yd.oracle.burned_s * 1.10,
    );
    check(
        cli,
        "self-tuned young-daly actually writes checkpoints (no MTBF declared)",
        yd.adaptive.checkpoints_written > 0,
    );
}

fn to_json(cli: &Cli, t: &ThrottleFace, p: &PlacementFace, yd: &YoungDalyFace) -> String {
    let mut out = String::new();
    let point = |p: &ThrottlePoint| {
        format!(
            "{{\"label\": \"{}\", \"makespan_min\": {:.3}, \"wasted_h\": {:.4}, \
             \"replicas_cancelled\": {}}}",
            p.label,
            p.makespan_min,
            p.wasted_s / 3600.0,
            p.replicas_cancelled
        )
    };
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"gridsched.ablation_adaptive.v1\",");
    let _ = writeln!(out, "  \"quick\": {},", cli.quick);
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        cli.seeds
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"throttle\": {{");
    let _ = writeln!(out, "    \"uncapped\": {},", point(&t.uncapped));
    let _ = writeln!(out, "    \"hand_tuned_knee\": {},", point(&t.knee));
    let _ = writeln!(out, "    \"cap_only_knee\": {},", point(&t.cap_only));
    let _ = writeln!(out, "    \"adaptive\": {},", point(&t.adaptive));
    let _ = writeln!(
        out,
        "    \"adaptive_vs_knee_makespan\": {:.4},",
        ratio(t.adaptive.makespan_min, t.knee.makespan_min)
    );
    let _ = writeln!(
        out,
        "    \"adaptive_vs_knee_wasted\": {:.4},",
        ratio(t.adaptive.wasted_s, t.knee.wasted_s)
    );
    let _ = writeln!(
        out,
        "    \"waste_reduction_vs_uncapped\": {:.2},",
        ratio(t.uncapped.wasted_s, t.adaptive.wasted_s)
    );
    let knee_matched = t.adaptive.wasted_s <= t.knee.wasted_s * 1.10
        && t.adaptive.makespan_min <= t.knee.makespan_min * 1.10;
    let _ = writeln!(out, "    \"knee_matched\": {knee_matched}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"placement\": {{");
    let _ = writeln!(out, "    \"static\": [");
    for (i, (s, m)) in p.statics.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"strategy\": \"{s}\", \"makespan_min\": {m:.3}}}{}",
            if i + 1 < p.statics.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(
        out,
        "    \"best_static\": {{\"strategy\": \"{}\", \"makespan_min\": {:.3}, \
         \"tasks_lost\": {}}},",
        p.best_static.0, p.best_static.1, p.best_static_tasks_lost
    );
    let _ = writeln!(
        out,
        "    \"adaptive\": {{\"base\": \"{}\", \"makespan_min\": {:.3}, \
         \"tasks_lost\": {}}},",
        p.best_static.0, p.adaptive_makespan, p.adaptive_tasks_lost
    );
    let _ = writeln!(
        out,
        "    \"adaptive_vs_best_static\": {:.4},",
        ratio(p.adaptive_makespan, p.best_static.1)
    );
    let _ = writeln!(
        out,
        "    \"adaptive_beats_best_static\": {},",
        p.adaptive_makespan < p.best_static.1
    );
    let _ = writeln!(out, "    \"breaker_opens\": {},", p.breaker_opens);
    let _ = writeln!(out, "    \"breaker_half_opens\": {}", p.breaker_half_opens);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"young_daly\": {{");
    let _ = writeln!(
        out,
        "    \"oracle\": {{\"makespan_min\": {:.3}, \"burned_h\": {:.4}, \
         \"checkpoints\": {}}},",
        yd.oracle.makespan_min,
        yd.oracle.burned_s / 3600.0,
        yd.oracle.checkpoints_written
    );
    let _ = writeln!(
        out,
        "    \"adaptive\": {{\"makespan_min\": {:.3}, \"burned_h\": {:.4}, \
         \"checkpoints\": {}}},",
        yd.adaptive.makespan_min,
        yd.adaptive.burned_s / 3600.0,
        yd.adaptive.checkpoints_written
    );
    let _ = writeln!(
        out,
        "    \"adaptive_vs_oracle_burned\": {:.4}",
        ratio(yd.adaptive.burned_s, yd.oracle.burned_s)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}
