//! `ChooseTask(n)` — deterministic or randomized final selection (§4.3).
//!
//! The scheduler greedily weighing tasks for whichever worker asks *first*
//! can make sub-optimal matches (the worker that asked a moment later might
//! have been the better host). To soften this, the paper keeps the best `n`
//! tasks by weight and samples one **with probability proportional to its
//! weight**:
//!
//! > `P_t = CalculateWeight(t) / Σ_{k∈T_n} CalculateWeight(k)`
//!
//! `n = 1` is the deterministic argmax (`rest`, `combined`); `n = 2` gives
//! the paper's randomized variants (`rest.2`, `combined.2`).

use rand::Rng;

use gridsched_workload::TaskId;

/// Final task selection among weighted candidates.
///
/// # Example
///
/// ```
/// use gridsched_core::ChooseTask;
/// use gridsched_workload::TaskId;
/// use rand::SeedableRng;
///
/// let chooser = ChooseTask::new(2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let weights = vec![(TaskId(0), 1.0), (TaskId(1), 3.0), (TaskId(2), 0.5)];
/// let picked = chooser.pick(&weights, &mut rng).unwrap();
/// assert!(picked == TaskId(0) || picked == TaskId(1)); // top-2 only
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChooseTask {
    n: usize,
}

impl ChooseTask {
    /// Creates a `ChooseTask(n)` selector.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "ChooseTask(n) needs n >= 1");
        ChooseTask { n }
    }

    /// The `n` parameter.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this selector is deterministic (`n == 1`).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.n == 1
    }

    /// Picks a task among `weights`. Returns `None` if the slice is empty.
    ///
    /// Selection rules:
    /// 1. Keep the `n` tasks with the largest weights (ties broken by lower
    ///    task id, matching the deterministic iteration order of the basic
    ///    algorithm).
    /// 2. If any kept weight is `+∞` (zero-transfer tasks under the `rest`
    ///    and `combined` metrics), sample uniformly among the infinite ones.
    /// 3. Otherwise sample proportionally to weight. If all kept weights
    ///    are zero (e.g. a cold cache under `overlap`), sample uniformly
    ///    among the kept tasks.
    pub fn pick<R: Rng + ?Sized>(&self, weights: &[(TaskId, f64)], rng: &mut R) -> Option<TaskId> {
        if weights.is_empty() {
            return None;
        }
        // Top-n selection. n is 1 or 2 in the paper; a linear scan keeping a
        // small sorted buffer is O(T·n).
        let mut top: Vec<(TaskId, f64)> = Vec::with_capacity(self.n + 1);
        for &(t, w) in weights {
            debug_assert!(!w.is_nan(), "NaN weight for task {t}");
            let pos = top
                .iter()
                .position(|&(bt, bw)| w > bw || (w == bw && t < bt))
                .unwrap_or(top.len());
            top.insert(pos, (t, w));
            top.truncate(self.n);
        }
        if top.len() == 1 {
            return Some(top[0].0);
        }
        let infinite: Vec<TaskId> = top
            .iter()
            .filter(|(_, w)| w.is_infinite())
            .map(|&(t, _)| t)
            .collect();
        if !infinite.is_empty() {
            return Some(infinite[rng.gen_range(0..infinite.len())]);
        }
        let total: f64 = top.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return Some(top[rng.gen_range(0..top.len())].0);
        }
        let mut x: f64 = rng.gen_range(0.0..total);
        for &(t, w) in &top {
            if x < w {
                return Some(t);
            }
            x -= w;
        }
        Some(top.last().expect("non-empty top").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn n1_is_argmax() {
        let c = ChooseTask::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let w = vec![(t(0), 1.0), (t(1), 5.0), (t(2), 3.0)];
        for _ in 0..10 {
            assert_eq!(c.pick(&w, &mut rng), Some(t(1)));
        }
        assert!(c.is_deterministic());
    }

    #[test]
    fn argmax_ties_break_by_id() {
        let c = ChooseTask::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let w = vec![(t(2), 5.0), (t(1), 5.0), (t(0), 1.0)];
        assert_eq!(c.pick(&w, &mut rng), Some(t(1)));
    }

    #[test]
    fn empty_is_none() {
        let c = ChooseTask::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(c.pick(&[], &mut rng), None);
    }

    #[test]
    fn n2_samples_proportionally() {
        let c = ChooseTask::new(2);
        let mut rng = StdRng::seed_from_u64(42);
        let w = vec![(t(0), 9.0), (t(1), 1.0), (t(2), 0.0)];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            let picked = c.pick(&w, &mut rng).unwrap();
            counts[picked.index()] += 1;
        }
        assert_eq!(counts[2], 0, "task 2 is not in the top 2");
        let frac0 = counts[0] as f64 / 10_000.0;
        assert!((frac0 - 0.9).abs() < 0.02, "P(task 0) ≈ 0.9, got {frac0}");
    }

    #[test]
    fn infinite_weights_win() {
        let c = ChooseTask::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let w = vec![(t(0), f64::INFINITY), (t(1), 100.0)];
        for _ in 0..20 {
            assert_eq!(c.pick(&w, &mut rng), Some(t(0)));
        }
    }

    #[test]
    fn two_infinite_weights_split_uniformly() {
        let c = ChooseTask::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let w = vec![(t(0), f64::INFINITY), (t(1), f64::INFINITY), (t(2), 5.0)];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[c.pick(&w, &mut rng).unwrap().index()] += 1;
        }
        assert_eq!(counts[2], 0);
        let frac0 = counts[0] as f64 / 10_000.0;
        assert!((frac0 - 0.5).abs() < 0.03, "uniform split, got {frac0}");
    }

    #[test]
    fn all_zero_weights_uniform_among_top_n() {
        let c = ChooseTask::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let w = vec![(t(0), 0.0), (t(1), 0.0), (t(2), 0.0)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(c.pick(&w, &mut rng).unwrap());
        }
        // Top-2 by tie-break are tasks 0 and 1.
        assert_eq!(
            seen,
            [t(0), t(1)].into_iter().collect(),
            "uniform among the kept two"
        );
    }

    #[test]
    fn n_larger_than_candidates() {
        let c = ChooseTask::new(8);
        let mut rng = StdRng::seed_from_u64(4);
        let w = vec![(t(0), 1.0), (t(1), 2.0)];
        let picked = c.pick(&w, &mut rng).unwrap();
        assert!(picked == t(0) || picked == t(1));
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_n_panics() {
        let _ = ChooseTask::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_weights() -> impl Strategy<Value = Vec<(TaskId, f64)>> {
        proptest::collection::vec(0.0f64..100.0, 1..40).prop_map(|ws| {
            ws.into_iter()
                .enumerate()
                .map(|(i, w)| (TaskId(i as u32), w))
                .collect()
        })
    }

    proptest! {
        /// The pick is always one of the candidates.
        #[test]
        fn pick_is_a_candidate(weights in arb_weights(), n in 1usize..6, seed in 0u64..16) {
            let chooser = ChooseTask::new(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = chooser.pick(&weights, &mut rng).expect("non-empty");
            prop_assert!(weights.iter().any(|&(t, _)| t == picked));
        }

        /// n = 1 always picks the max weight (lowest id on ties).
        #[test]
        fn deterministic_pick_is_argmax(weights in arb_weights(), seed in 0u64..16) {
            let chooser = ChooseTask::new(1);
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = chooser.pick(&weights, &mut rng).expect("non-empty");
            let best = weights
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
                .expect("non-empty");
            prop_assert_eq!(picked, best.0);
        }

        /// The pick always lies inside the top-n by weight: its weight is at
        /// least the n-th largest.
        #[test]
        fn pick_within_top_n(weights in arb_weights(), n in 1usize..6, seed in 0u64..16) {
            let chooser = ChooseTask::new(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let picked = chooser.pick(&weights, &mut rng).expect("non-empty");
            let picked_w = weights.iter().find(|&&(t, _)| t == picked).unwrap().1;
            let mut sorted: Vec<f64> = weights.iter().map(|&(_, w)| w).collect();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let threshold = sorted[n.min(sorted.len()) - 1];
            prop_assert!(picked_w >= threshold);
        }
    }
}
