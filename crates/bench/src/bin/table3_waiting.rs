//! Table 3 — per-request waiting/transfer time of `rest` vs workers/site.
//!
//! The paper reports, for one site, the average waiting time a batch
//! request spends in the data server's queue, the average time to transfer
//! the missing files, and the number of file transfers — for 2, 4, 6 and 8
//! workers per site. The load-bearing observation is the **tension**
//! between two factors: more workers → more contention at the serialising
//! data server (waiting up), but also more sharing (transfers and
//! per-batch transfer time down). We report the average over all sites
//! plus the single worst site (closest to the paper's hand-picked site).

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let worker_counts: &[usize] = if cli.quick { &[2, 6] } else { &[2, 4, 6, 8] };

    let mut table = Table::new(
        "Table 3: rest metric, per-request averages vs workers per site",
        &[
            "workers",
            "wait_h(all sites)",
            "xfer_h(all sites)",
            "transfers/site",
            "wait_h(worst site)",
            "xfer_h(worst site)",
        ],
    );
    let mut rows = Vec::new();
    for &w in worker_counts {
        let config =
            SimConfig::paper(workload.clone(), StrategyKind::Rest).with_workers_per_site(w);
        let r = run(&cli, &config);
        let worst = r
            .per_site
            .iter()
            .max_by(|a, b| {
                a.avg_waiting_hours()
                    .partial_cmp(&b.avg_waiting_hours())
                    .expect("finite")
            })
            .expect("at least one site");
        table.push_row(vec![
            w.to_string(),
            fmt(r.avg_waiting_hours(), 3),
            fmt(r.avg_transfer_hours(), 3),
            fmt(r.avg_transfers_per_site(), 1),
            fmt(worst.avg_waiting_hours(), 3),
            fmt(worst.avg_transfer_hours(), 3),
        ]);
        rows.push((w, r.avg_waiting_hours(), r.avg_transfer_hours()));
    }
    table.emit(&cli, "table3_waiting_vs_workers");

    let first = rows.first().expect("non-empty sweep");
    let last = rows.last().expect("non-empty sweep");
    check(
        &cli,
        "waiting time grows with contention (more workers per site)",
        last.1 > first.1,
    );
    check(
        &cli,
        "per-request transfer time does not grow with more workers (sharing)",
        last.2 <= first.2 * 1.25,
    );
}
