//! # gridsched-des — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation (DES) kernel used by the
//! grid simulator in `gridsched-sim`. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — totally-ordered simulation timestamps
//!   (seconds, `f64` under the hood, NaN-free by construction),
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   stable FIFO ordering for simultaneous events,
//! * [`Schedule`] — a thin driver that owns the queue and the clock and
//!   enforces time monotonicity,
//! * [`rng`] — seed-derivation helpers so every simulation component gets an
//!   independent, reproducible random stream from one master seed.
//!
//! The kernel replaces the role SimGrid plays in the paper *"New
//! Worker-Centric Scheduling Strategies for Data-Intensive Grid
//! Applications"* (MIDDLEWARE 2007): it is the substrate on which the
//! flow-level network model and the grid application model execute.
//!
//! ## Example
//!
//! ```
//! use gridsched_des::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_secs(2.0), "second");
//! let h = q.push(SimTime::from_secs(1.0), "first");
//! q.push(SimTime::from_secs(3.0), "third");
//! q.cancel(h);
//! let (t, ev) = q.pop().expect("queue is non-empty");
//! assert_eq!(ev, "second");
//! assert_eq!(t, SimTime::from_secs(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod schedule;
pub mod time;

pub use queue::{EventHandle, EventQueue};
pub use schedule::Schedule;
pub use time::{SimDuration, SimTime};
