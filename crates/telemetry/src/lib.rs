//! # gridsched-telemetry — deterministic observability for the simulator
//!
//! Counters, histograms, lifecycle spans and a sim-time probe sampler,
//! designed around one hard requirement: **telemetry must be provably
//! inert**. Recording an instrument draws no randomness, schedules no
//! event and allocates nothing on the hot path when disabled — a run with
//! telemetry fully on produces a byte-identical `MetricsReport` to a run
//! with it off (property-tested in `tests/scheduler_equivalence.rs` of the
//! workspace root).
//!
//! The design that makes this cheap:
//!
//! * every instrument handle ([`Counter`], [`Histogram`]) is an
//!   `Option<Rc<…>>` — the disabled state is `None`, so a hot-path record
//!   is a single branch on a niche-optimised option;
//! * handles are distributed *down* the stack (scheduler strategies, the
//!   network solver, the engine) from one shared [`Telemetry`] facade, so
//!   the instrumented layers never know whether anyone is listening;
//! * `Rc`, not `Arc`: a simulation (including its boxed scheduler) lives
//!   on one thread; only the plain-data configuration crosses threads.
//!
//! Three views of a run:
//!
//! * the [`Registry`] of named instruments (hot-path cost counters — rank
//!   repairs, pending-log replays, solver recomputes, wake fan-outs,
//!   throttle admits/parks/releases);
//! * the [`Tracer`] of per-entity spans (task lifecycle phases on worker
//!   tracks, fault/outage windows), exportable as Chrome Trace Event
//!   Format JSON (loadable in Perfetto / `chrome://tracing`);
//! * the [`ProbeSample`] time series (per-site queue depth, worker states,
//!   in-flight flows, link occupancy), exportable as compact JSONL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod digest;
pub mod expose;
mod instruments;
pub mod json;
mod probe;
mod trace;

pub use analyze::{BlameReport, ParsedEvent, PathSegment, TaskBlame};
pub use digest::{diff_digests, DigestFold, DigestStream, Divergence, WindowDigest};
pub use expose::{render_prometheus, MetricsServer};
pub use instruments::{Counter, Histogram, InstrumentSnapshot, InstrumentValue, Registry};
pub use probe::{ProbeSample, SiteProbe};
pub use trace::{SpanPhase, TraceEvent, Track};

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// The shared telemetry facade: one per simulation run.
///
/// Cheap to clone (an `Rc` handle); [`Telemetry::disabled`] is a `None`
/// that makes every recording call a no-op branch. All accessors are
/// `&self` (interior mutability) so instrumented layers can record through
/// shared handles.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    registry: Registry,
    tracer: trace::Tracer,
    probes: RefCell<Vec<ProbeSample>>,
}

impl Telemetry {
    /// An enabled collector: instruments, spans and probes are recorded.
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Rc::new(Inner::default())),
        }
    }

    /// The inert collector: every recording call is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this collector records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A named counter (deduplicated by name: the same name always yields
    /// the same underlying cell). Disabled collectors return an inert
    /// handle.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::disabled, |i| i.registry.counter(name))
    }

    /// A named fixed-bucket (power-of-two) histogram, deduplicated by
    /// name. Disabled collectors return an inert handle.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::disabled, |i| i.registry.histogram(name))
    }

    /// Opens a span on `track` at simulation time `ts_s` (seconds).
    pub fn span_begin(&self, track: Track, name: &'static str, ts_s: f64) {
        if let Some(i) = &self.inner {
            i.tracer.begin(track, name, ts_s, None);
        }
    }

    /// Opens a span attributed to `task` (emitted as `args.task`, which
    /// the forensics analyzer uses to group attempts by task).
    pub fn span_begin_for_task(&self, track: Track, name: &'static str, ts_s: f64, task: u64) {
        if let Some(i) = &self.inner {
            i.tracer.begin(track, name, ts_s, Some(task));
        }
    }

    /// Closes the innermost open span named `name` on `track`.
    pub fn span_end(&self, track: Track, name: &'static str, ts_s: f64) {
        if let Some(i) = &self.inner {
            i.tracer.end(track, name, ts_s);
        }
    }

    /// Records an instantaneous event on `track`.
    pub fn instant(&self, track: Track, name: &'static str, ts_s: f64) {
        if let Some(i) = &self.inner {
            i.tracer.instant(track, name, ts_s, None);
        }
    }

    /// Records an instantaneous event attributed to `task`.
    pub fn instant_for_task(&self, track: Track, name: &'static str, ts_s: f64, task: u64) {
        if let Some(i) = &self.inner {
            i.tracer.instant(track, name, ts_s, Some(task));
        }
    }

    /// Appends one probe sample to the time series.
    pub fn record_probe(&self, sample: ProbeSample) {
        if let Some(i) = &self.inner {
            i.probes.borrow_mut().push(sample);
        }
    }

    /// Snapshot of every named instrument, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<InstrumentSnapshot> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.snapshot())
    }

    /// All recorded trace events, in emission order.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.tracer.events())
    }

    /// The recorded probe time series, in emission order.
    #[must_use]
    pub fn probes(&self) -> Vec<ProbeSample> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.probes.borrow().clone())
    }

    /// Renders the run as a Chrome Trace Event Format JSON document
    /// (`{"traceEvents": […]}`): lifecycle/fault spans as `B`/`E` duration
    /// events, probe series as `C` counter events, plus process-name
    /// metadata so Perfetto labels the tracks.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        };
        for (pid, pname) in [
            (trace::PID_WORKERS, "workers"),
            (trace::PID_SERVERS, "data-servers"),
            (trace::PID_PROBES, "probes"),
        ] {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            );
        }
        for e in self.trace_events() {
            sep(&mut out);
            e.write_chrome_json(&mut out);
        }
        for p in self.probes() {
            let ts_us = (p.t_s * 1e6).round() as u64;
            for (tid, site) in p.sites.iter().enumerate() {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"site{tid}\",\"cat\":\"probe\",\"ph\":\"C\",\
                     \"ts\":{ts_us},\"pid\":{},\"tid\":{tid},\"args\":{{\
                     \"queue\":{},\"busy\":{},\"parked\":{},\"dead\":{},\"files\":{}}}}}",
                    trace::PID_PROBES,
                    site.queue_depth,
                    site.busy_workers,
                    site.parked_workers,
                    site.dead_workers,
                    site.server_files,
                );
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"network\",\"cat\":\"probe\",\"ph\":\"C\",\
                 \"ts\":{ts_us},\"pid\":{},\"tid\":9999,\"args\":{{\
                 \"flows\":{},\"links_busy\":{}}}}}",
                trace::PID_PROBES,
                p.in_flight_flows,
                p.links_busy,
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the run as a compact JSONL stream: one `instrument` line
    /// per named instrument, then one `probe` line per sample.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            s.write_jsonl_line(&mut out);
        }
        for p in self.probes() {
            p.write_jsonl_line(&mut out);
        }
        out
    }

    /// The top `n` instruments by activity (counter value, or histogram
    /// observation count), descending — the "hottest instruments" view.
    #[must_use]
    pub fn hottest(&self, n: usize) -> Vec<InstrumentSnapshot> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| b.activity().cmp(&a.activity()).then(a.name.cmp(b.name)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("x");
        c.incr();
        c.add(5);
        let h = t.histogram("y");
        h.record(3);
        t.span_begin(Track::worker(0), "compute", 1.0);
        t.span_end(Track::worker(0), "compute", 2.0);
        t.record_probe(ProbeSample::default());
        assert!(t.snapshot().is_empty());
        assert!(t.trace_events().is_empty());
        assert!(t.probes().is_empty());
    }

    #[test]
    fn counters_dedupe_by_name() {
        let t = Telemetry::enabled();
        let a = t.counter("hits");
        let b = t.counter("hits");
        a.add(2);
        b.incr();
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "hits");
        assert_eq!(snap[0].activity(), 3);
    }

    #[test]
    fn chrome_trace_has_document_shape() {
        let t = Telemetry::enabled();
        t.span_begin(Track::worker(3), "compute", 0.5);
        t.span_end(Track::worker(3), "compute", 1.5);
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn hottest_ranks_by_activity() {
        let t = Telemetry::enabled();
        t.counter("cold").incr();
        t.counter("hot").add(100);
        t.histogram("warm").record(9);
        t.histogram("warm").record(9);
        let top = t.hottest(2);
        assert_eq!(top[0].name, "hot");
        assert_eq!(top[1].name, "warm");
    }

    #[test]
    fn jsonl_lines_are_one_object_each() {
        let t = Telemetry::enabled();
        t.counter("n").add(7);
        t.record_probe(ProbeSample {
            t_s: 12.0,
            ..ProbeSample::default()
        });
        let out = t.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
        }
    }
}
