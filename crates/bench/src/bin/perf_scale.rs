//! `perf_scale` — the hot-path scaling baseline.
//!
//! Sweeps the worker count across decades (10² → 10⁵ by default) over the
//! paper's six algorithms with the production `incremental` scheduler
//! path, measuring **wall time** and **simulation events per second**, and
//! additionally runs the paper-complexity `naive` path at a comparison
//! point to quantify the speed-up of the incremental indexes.
//!
//! Results go to `BENCH_scale.json` (machine-readable, one file every
//! future PR can regress against) and to stdout as a table.
//!
//! ```text
//! perf_scale [--smoke] [--check] [--out FILE] [--max-workers N] [--seed N]
//! ```
//!
//! * `--smoke` — tiny sweep (10²/4·10² workers) for CI;
//! * `--check` — exit non-zero unless every run completed and the
//!   incremental path is ≥ 5× faster than naive at the comparison point;
//! * `--max-workers N` — truncate the sweep (e.g. `--max-workers 10000`);
//! * `--out FILE` — where to write the JSON (default `BENCH_scale.json`).
//!
//! The workload scales with the grid: `tasks = 2 × workers` over a
//! thinned Coadd strip (≈12 files/task) so the sweep stays scheduler- and
//! transfer-bound instead of drowning in per-task flow events, and the
//! storage capacity covers the file universe (cache-churn costs are
//! covered by `fig4_capacity` / the eviction tests).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gridsched_bench::Table;
use gridsched_core::{EvalMode, StrategyKind};
use gridsched_sim::{GridSim, SimConfig};
use gridsched_workload::coadd::CoaddConfig;
use gridsched_workload::Workload;

const SITES: usize = 10;

struct Run {
    workers: usize,
    strategy: StrategyKind,
    mode: EvalMode,
    tasks: usize,
    wall_s: f64,
    events: u64,
    events_per_s: f64,
    makespan_min: f64,
    completed: u64,
}

struct Args {
    smoke: bool,
    check: bool,
    out: PathBuf,
    max_workers: Option<usize>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        out: PathBuf::from("BENCH_scale.json"),
        max_workers: None,
        seed: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--out" => {
                args.out = PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")))
            }
            "--max-workers" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--max-workers needs a number"));
                args.max_workers = Some(v.parse().unwrap_or_else(|_| usage("bad --max-workers")));
            }
            "--seed" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--seed needs a number"));
                args.seed = v.parse().unwrap_or_else(|_| usage("bad --seed"));
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: perf_scale [--smoke] [--check] [--out FILE] \
         [--max-workers N] [--seed N]"
    );
    std::process::exit(2);
}

/// A thinned Coadd strip: same spatial-sharing structure, ~12 files/task.
fn scale_workload(tasks: u32, seed: u64) -> Arc<Workload> {
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = tasks;
    cfg.seed = seed;
    cfg.window_min = 4;
    cfg.window_max = 8;
    cfg.layers_mean = 3.0;
    cfg.layers_std = 0.5;
    cfg.layers_min = 2;
    cfg.layers_max = 4;
    Arc::new(cfg.generate())
}

fn run_once(
    workload: &Arc<Workload>,
    workers: usize,
    strategy: StrategyKind,
    mode: EvalMode,
    seed: u64,
) -> Run {
    let config = SimConfig::paper(Arc::clone(workload), strategy)
        .with_sites(SITES)
        .with_workers_per_site((workers / SITES).max(1))
        .with_capacity(workload.file_count().max(1))
        .with_seed(seed)
        .with_eval_mode(mode);
    let started = Instant::now();
    let report = GridSim::new(config).run();
    let wall_s = started.elapsed().as_secs_f64();
    Run {
        workers,
        strategy,
        mode,
        tasks: workload.task_count(),
        wall_s,
        events: report.events_dispatched,
        events_per_s: report.events_dispatched as f64 / wall_s.max(1e-9),
        makespan_min: report.makespan_minutes,
        completed: report.tasks_completed,
    }
}

fn main() {
    let args = parse_args();
    let sweep: Vec<usize> = if args.smoke {
        vec![100, 400]
    } else {
        vec![100, 1_000, 10_000, 100_000]
    }
    .into_iter()
    .filter(|&w| args.max_workers.is_none_or(|m| w <= m))
    .collect();
    if sweep.is_empty() {
        usage("--max-workers filtered out every sweep point");
    }
    // The naive-vs-incremental comparison point: the largest sweep scale at
    // which the O(T·I)-per-decision path is still tolerable to run.
    let compare_at = if args.smoke {
        *sweep.last().expect("non-empty")
    } else {
        *sweep
            .iter()
            .filter(|&&w| w <= 10_000)
            .max()
            .expect("non-empty")
    };

    let mut runs: Vec<Run> = Vec::new();
    let mut table = Table::new(
        "perf_scale: wall time per full simulation (incremental path)",
        &[
            "workers",
            "tasks",
            "algorithm",
            "mode",
            "wall_s",
            "events",
            "events/s",
        ],
    );
    for &workers in &sweep {
        let workload = scale_workload((workers * 2).max(200) as u32, args.seed);
        for strategy in StrategyKind::PAPER_SET {
            let run = run_once(
                &workload,
                workers,
                strategy,
                EvalMode::Incremental,
                args.seed,
            );
            eprintln!(
                "  {:>6} workers  {:<16} {:>8.2}s  {:>10} events",
                workers,
                strategy.to_string(),
                run.wall_s,
                run.events
            );
            push_row(&mut table, &run);
            runs.push(run);
        }
        // The comparison runs ride on the same workload instance.
        if workers == compare_at {
            for strategy in [StrategyKind::Rest, StrategyKind::Combined2] {
                let run = run_once(&workload, workers, strategy, EvalMode::Naive, args.seed);
                eprintln!(
                    "  {:>6} workers  {:<16} {:>8.2}s  (naive path)",
                    workers,
                    strategy.to_string(),
                    run.wall_s
                );
                push_row(&mut table, &run);
                runs.push(run);
            }
        }
    }
    print!("{}", table.render());

    // Speed-ups at the comparison point.
    let mut speedups: Vec<(StrategyKind, f64, f64, f64)> = Vec::new();
    for strategy in [StrategyKind::Rest, StrategyKind::Combined2] {
        let wall = |mode: EvalMode| {
            runs.iter()
                .find(|r| r.workers == compare_at && r.strategy == strategy && r.mode == mode)
                .map(|r| r.wall_s)
        };
        if let (Some(naive), Some(inc)) = (wall(EvalMode::Naive), wall(EvalMode::Incremental)) {
            let speedup = naive / inc.max(1e-9);
            println!(
                "speedup @ {compare_at} workers ({strategy}): naive {naive:.2}s / \
                 incremental {inc:.2}s = {speedup:.1}x"
            );
            speedups.push((strategy, naive, inc, speedup));
        }
    }

    let json = to_json(&runs, &speedups, &sweep, compare_at, args.seed);
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("error: could not write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());

    if args.check {
        let mut ok = true;
        for r in &runs {
            if r.completed != r.tasks as u64 {
                eprintln!(
                    "CHECK FAIL: {} @ {} workers completed {}/{} tasks",
                    r.strategy, r.workers, r.completed, r.tasks
                );
                ok = false;
            }
        }
        if args.smoke {
            // The smoke sweep is too small for the asymptotics to show,
            // and millisecond-scale wall-clock ratios flake on loaded CI
            // runners — only assert the comparison *ran* and both paths
            // simulated the same event count (same decisions).
            for &(strategy, _, _, _) in &speedups {
                let events = |mode: EvalMode| {
                    runs.iter()
                        .find(|r| {
                            r.workers == compare_at && r.strategy == strategy && r.mode == mode
                        })
                        .map(|r| r.events)
                };
                if events(EvalMode::Naive) == events(EvalMode::Incremental) {
                    println!("CHECK PASS: {strategy} naive/incremental event counts match");
                } else {
                    eprintln!("CHECK FAIL: {strategy} naive/incremental event counts differ");
                    ok = false;
                }
            }
            if speedups.is_empty() {
                eprintln!("CHECK FAIL: naive comparison did not run");
                ok = false;
            }
        } else {
            for &(strategy, _, _, speedup) in &speedups {
                if speedup < 5.0 {
                    eprintln!("CHECK FAIL: {strategy} speedup {speedup:.1}x < 5x");
                    ok = false;
                } else {
                    println!("CHECK PASS: {strategy} incremental ≥ 5x naive");
                }
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "CHECK PASS: all {} runs completed their workload",
            runs.len()
        );
    }
}

fn push_row(table: &mut Table, run: &Run) {
    table.push_row(vec![
        run.workers.to_string(),
        run.tasks.to_string(),
        run.strategy.to_string(),
        run.mode.to_string(),
        format!("{:.3}", run.wall_s),
        run.events.to_string(),
        format!("{:.0}", run.events_per_s),
    ]);
}

fn to_json(
    runs: &[Run],
    speedups: &[(StrategyKind, f64, f64, f64)],
    sweep: &[usize],
    compare_at: usize,
    seed: u64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_scale\",");
    let _ = writeln!(out, "  \"sites\": {SITES},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"worker_sweep\": [{}],",
        sweep
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"naive_comparison_at\": {compare_at},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"tasks\": {}, \"strategy\": \"{}\", \"mode\": \"{}\", \
             \"wall_s\": {:.6}, \"events\": {}, \"events_per_s\": {:.1}, \
             \"makespan_min\": {:.3}, \"tasks_completed\": {}}}{comma}",
            r.workers,
            r.tasks,
            r.strategy,
            r.mode,
            r.wall_s,
            r.events,
            r.events_per_s,
            r.makespan_min,
            r.completed,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedups\": [");
    for (i, &(strategy, naive, inc, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{strategy}\", \"workers\": {compare_at}, \
             \"naive_wall_s\": {naive:.6}, \"incremental_wall_s\": {inc:.6}, \
             \"speedup\": {speedup:.2}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
