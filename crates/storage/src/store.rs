//! Capacity-bounded site storage with pinning and reference tracking.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use gridsched_workload::FileId;

use crate::fileset::FileSet;
use crate::policy::EvictionPolicy;

/// Counters describing a store's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Files inserted (network arrivals or replication pushes).
    pub insertions: u64,
    /// Files evicted by the replacement policy.
    pub evictions: u64,
    /// Inserts that had to exceed capacity because every resident file was
    /// pinned.
    pub overflow_inserts: u64,
    /// Highest number of resident files ever observed.
    pub max_resident: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Current position in the eviction order.
    key: (u64, u64),
    /// Number of active pins (batch requests / executing tasks).
    pins: u32,
    /// Use count while resident (for LFU).
    freq: u64,
    /// Insertion tick (for FIFO and LFU tie-breaks).
    inserted: u64,
}

/// The local storage of one site's data server.
///
/// Holds up to `capacity` equally-sized files; evicts per
/// [`EvictionPolicy`] when full, never evicting **pinned** files; tracks
/// `r_i` — the number of past task references of each file at this site —
/// which survives eviction (it is scheduler bookkeeping, not cache state).
///
/// # Example
///
/// ```
/// use gridsched_storage::{EvictionPolicy, SiteStore};
/// use gridsched_workload::FileId;
///
/// let mut store = SiteStore::new(2, EvictionPolicy::Lru);
/// store.insert(FileId(0));
/// store.insert(FileId(1));
/// store.touch(FileId(0));               // 0 is now more recent than 1
/// let evicted = store.insert(FileId(2)); // evicts 1
/// assert_eq!(evicted, vec![FileId(1)]);
/// assert!(store.contains(FileId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SiteStore {
    capacity: usize,
    policy: EvictionPolicy,
    entries: HashMap<FileId, Entry>,
    /// Dense residency bitset mirroring `entries` — the hot-path membership
    /// structure (`entries` keeps the per-file eviction metadata).
    resident: FileSet,
    order: BTreeSet<((u64, u64), FileId)>,
    refs: HashMap<FileId, u32>,
    tick: u64,
    stats: StoreStats,
}

impl SiteStore {
    /// Creates an empty store holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity > 0, "storage capacity must be positive");
        SiteStore {
            capacity,
            policy,
            entries: HashMap::new(),
            resident: FileSet::new(),
            order: BTreeSet::new(),
            refs: HashMap::new(),
            tick: 0,
            stats: StoreStats::default(),
        }
    }

    /// The configured capacity in files.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy.
    #[must_use]
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Number of resident files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no files are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Whether `file` is resident (one bitset probe).
    #[must_use]
    pub fn contains(&self, file: FileId) -> bool {
        self.resident.contains(file)
    }

    /// The paper's **overlap cardinality** `|F_t|`: how many of `files` are
    /// resident.
    #[must_use]
    pub fn overlap(&self, files: &[FileId]) -> usize {
        files.iter().filter(|f| self.contains(**f)).count()
    }

    /// The files from `files` that are *not* resident (the batch request a
    /// data server sends to the external file server).
    #[must_use]
    pub fn missing(&self, files: &[FileId]) -> Vec<FileId> {
        files
            .iter()
            .copied()
            .filter(|f| !self.contains(*f))
            .collect()
    }

    /// `r_i` — past task references of `file` at this site (0 if never
    /// referenced; survives eviction).
    #[must_use]
    pub fn ref_count(&self, file: FileId) -> u32 {
        self.refs.get(&file).copied().unwrap_or(0)
    }

    /// Sum of `r_i` over the *resident* subset of `files` — `ref_t` in the
    /// paper's combined metric.
    #[must_use]
    pub fn overlap_ref_sum(&self, files: &[FileId]) -> u64 {
        files
            .iter()
            .filter(|f| self.contains(**f))
            .map(|f| u64::from(self.ref_count(*f)))
            .sum()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn order_key(&self, policy_tick: u64, freq: u64, inserted: u64) -> (u64, u64) {
        match self.policy {
            EvictionPolicy::Lru => (policy_tick, 0),
            EvictionPolicy::Fifo => (inserted, 0),
            EvictionPolicy::Lfu => (freq, inserted),
        }
    }

    /// Inserts `file`, evicting per policy if the store is full. Returns the
    /// evicted files (empty if there was room or the file was already
    /// resident).
    ///
    /// If every resident file is pinned, the store *overflows* (the insert
    /// succeeds beyond capacity and is counted in
    /// [`StoreStats::overflow_inserts`]); the data server cannot drop files
    /// an executing task still needs.
    pub fn insert(&mut self, file: FileId) -> Vec<FileId> {
        if self.contains(file) {
            self.touch(file);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.entries.len() >= self.capacity {
            match self.evict_one() {
                Some(f) => evicted.push(f),
                None => {
                    self.stats.overflow_inserts += 1;
                    break;
                }
            }
        }
        let tick = self.next_tick();
        let key = self.order_key(tick, 0, tick);
        self.entries.insert(
            file,
            Entry {
                key,
                pins: 0,
                freq: 0,
                inserted: tick,
            },
        );
        self.resident.insert(file);
        self.order.insert((key, file));
        self.stats.insertions += 1;
        self.stats.max_resident = self.stats.max_resident.max(self.entries.len());
        evicted
    }

    /// Evicts the policy's best victim among unpinned files. Returns `None`
    /// if everything is pinned.
    fn evict_one(&mut self) -> Option<FileId> {
        let victim = self
            .order
            .iter()
            .find(|(_, f)| self.entries[f].pins == 0)
            .map(|&(key, f)| (key, f))?;
        self.order.remove(&victim);
        self.entries.remove(&victim.1);
        self.resident.remove(victim.1);
        self.stats.evictions += 1;
        Some(victim.1)
    }

    /// Marks `file` as used now (updates LRU recency / LFU frequency). No-op
    /// for non-resident files.
    pub fn touch(&mut self, file: FileId) {
        let tick = self.next_tick();
        let policy = self.policy;
        let Some(entry) = self.entries.get_mut(&file) else {
            return;
        };
        entry.freq += 1;
        let new_key = match policy {
            EvictionPolicy::Lru => (tick, 0),
            EvictionPolicy::Fifo => entry.key, // insertion order never changes
            EvictionPolicy::Lfu => (entry.freq, entry.inserted),
        };
        if new_key != entry.key {
            let old = (entry.key, file);
            entry.key = new_key;
            self.order.remove(&old);
            self.order.insert((new_key, file));
        }
    }

    /// Records that a task at this site referenced `file` (increments `r_i`)
    /// and touches it.
    pub fn record_task_reference(&mut self, file: FileId) {
        *self.refs.entry(file).or_insert(0) += 1;
        self.touch(file);
    }

    /// Pins `file` against eviction. Pins nest (two batch requests may pin
    /// the same file).
    ///
    /// # Panics
    ///
    /// Panics if `file` is not resident — the caller must insert before
    /// pinning.
    pub fn pin(&mut self, file: FileId) {
        let entry = self
            .entries
            .get_mut(&file)
            .unwrap_or_else(|| panic!("pin: file {file} not resident"));
        entry.pins += 1;
    }

    /// Releases one pin on `file`.
    ///
    /// # Panics
    ///
    /// Panics if `file` is not resident or not pinned.
    pub fn unpin(&mut self, file: FileId) {
        let entry = self
            .entries
            .get_mut(&file)
            .unwrap_or_else(|| panic!("unpin: file {file} not resident"));
        assert!(entry.pins > 0, "unpin: file {file} not pinned");
        entry.pins -= 1;
    }

    /// Number of currently pinned files.
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        self.entries.values().filter(|e| e.pins > 0).count()
    }

    /// A data-server outage: every **unpinned** resident file is lost.
    ///
    /// Pinned files survive — they are held in memory by executions in
    /// progress, not only on the failed server's disk. Reference counts
    /// (`r_i`) survive too: they are scheduler bookkeeping, not cache
    /// state. Lost files are *not* counted as policy evictions in
    /// [`StoreStats`] (the caller accounts them separately).
    ///
    /// Returns the lost files in ascending id order (deterministic, so
    /// downstream scheduler notifications are reproducible).
    pub fn fail(&mut self) -> Vec<FileId> {
        let mut lost: Vec<FileId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .map(|(&f, _)| f)
            .collect();
        lost.sort_unstable();
        for &f in &lost {
            let entry = self.entries.remove(&f).expect("collected above");
            self.resident.remove(f);
            self.order.remove(&(entry.key, f));
        }
        lost
    }

    /// Iterates over resident files in unspecified order.
    pub fn resident(&self) -> impl Iterator<Item = FileId> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = SiteStore::new(10, EvictionPolicy::Lru);
        assert!(s.insert(f(1)).is_empty());
        assert!(s.contains(f(1)));
        assert!(!s.contains(f(2)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.overlap(&[f(1), f(2), f(3)]), 1);
        assert_eq!(s.missing(&[f(1), f(2)]), vec![f(2)]);
    }

    #[test]
    fn reinsert_is_touch_not_duplicate() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.insert(f(1)); // refresh 1
        let ev = s.insert(f(3));
        assert_eq!(ev, vec![f(2)], "2 is now least recent");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = SiteStore::new(3, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.insert(f(3));
        s.touch(f(1));
        let ev = s.insert(f(4));
        assert_eq!(ev, vec![f(2)]);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut s = SiteStore::new(3, EvictionPolicy::Fifo);
        s.insert(f(1));
        s.insert(f(2));
        s.insert(f(3));
        s.touch(f(1));
        s.touch(f(1));
        let ev = s.insert(f(4));
        assert_eq!(
            ev,
            vec![f(1)],
            "FIFO evicts oldest insert regardless of use"
        );
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut s = SiteStore::new(3, EvictionPolicy::Lfu);
        s.insert(f(1));
        s.insert(f(2));
        s.insert(f(3));
        s.touch(f(1));
        s.touch(f(1));
        s.touch(f(2));
        let ev = s.insert(f(4));
        assert_eq!(ev, vec![f(3)], "3 has freq 0");
    }

    #[test]
    fn lfu_ties_break_by_age() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lfu);
        s.insert(f(1));
        s.insert(f(2));
        let ev = s.insert(f(3));
        assert_eq!(ev, vec![f(1)], "equal freq → oldest goes");
    }

    #[test]
    fn pinned_files_survive() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.pin(f(1));
        let ev = s.insert(f(3));
        assert_eq!(ev, vec![f(2)], "pinned 1 must not be evicted");
        assert!(s.contains(f(1)));
    }

    #[test]
    fn all_pinned_overflows() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.pin(f(1));
        s.pin(f(2));
        let ev = s.insert(f(3));
        assert!(ev.is_empty());
        assert_eq!(s.len(), 3, "overflow beyond capacity");
        assert_eq!(s.stats().overflow_inserts, 1);
        // After unpinning, the next insert shrinks back.
        s.unpin(f(1));
        s.unpin(f(2));
        let ev = s.insert(f(4));
        assert_eq!(ev.len(), 2, "evicts down to capacity");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pins_nest() {
        let mut s = SiteStore::new(1, EvictionPolicy::Lru);
        s.insert(f(1));
        s.pin(f(1));
        s.pin(f(1));
        s.unpin(f(1));
        // still pinned once
        let ev = s.insert(f(2));
        assert!(ev.is_empty());
        assert_eq!(s.len(), 2);
        s.unpin(f(1));
        assert_eq!(s.pinned_count(), 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn pin_missing_panics() {
        let mut s = SiteStore::new(1, EvictionPolicy::Lru);
        s.pin(f(1));
    }

    #[test]
    #[should_panic(expected = "not pinned")]
    fn unpin_unpinned_panics() {
        let mut s = SiteStore::new(1, EvictionPolicy::Lru);
        s.insert(f(1));
        s.unpin(f(1));
    }

    #[test]
    fn reference_counts_survive_eviction() {
        let mut s = SiteStore::new(1, EvictionPolicy::Lru);
        s.insert(f(1));
        s.record_task_reference(f(1));
        s.record_task_reference(f(1));
        assert_eq!(s.ref_count(f(1)), 2);
        s.insert(f(2)); // evicts 1
        assert!(!s.contains(f(1)));
        assert_eq!(s.ref_count(f(1)), 2, "r_i survives eviction");
    }

    #[test]
    fn overlap_ref_sum_counts_only_resident() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.record_task_reference(f(1));
        s.record_task_reference(f(2));
        s.record_task_reference(f(2));
        s.insert(f(3)); // evicts 1
        assert_eq!(
            s.overlap_ref_sum(&[f(1), f(2), f(3)]),
            2,
            "only resident 2 counts"
        );
    }

    #[test]
    fn stats_track_behaviour() {
        let mut s = SiteStore::new(2, EvictionPolicy::Lru);
        s.insert(f(1));
        s.insert(f(2));
        s.insert(f(3));
        let st = s.stats();
        assert_eq!(st.insertions, 3);
        assert_eq!(st.evictions, 1);
        assert_eq!(st.max_resident, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SiteStore::new(0, EvictionPolicy::Lru);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u32),
        Touch(u32),
        Reference(u32),
        PinCycle(u32),
    }

    fn arb_ops() -> impl Strategy<Value = (usize, EvictionPolicy, Vec<Op>)> {
        let op = prop_oneof![
            (0u32..50).prop_map(Op::Insert),
            (0u32..50).prop_map(Op::Touch),
            (0u32..50).prop_map(Op::Reference),
            (0u32..50).prop_map(Op::PinCycle),
        ];
        (
            1usize..20,
            prop_oneof![
                Just(EvictionPolicy::Lru),
                Just(EvictionPolicy::Fifo),
                Just(EvictionPolicy::Lfu)
            ],
            proptest::collection::vec(op, 0..200),
        )
    }

    proptest! {
        #[test]
        fn capacity_respected_without_pins((cap, policy, ops) in arb_ops()) {
            let mut s = SiteStore::new(cap, policy);
            for op in ops {
                match op {
                    Op::Insert(x) => { s.insert(FileId(x)); }
                    Op::Touch(x) => s.touch(FileId(x)),
                    Op::Reference(x) => s.record_task_reference(FileId(x)),
                    Op::PinCycle(x) => {
                        if s.contains(FileId(x)) {
                            s.pin(FileId(x));
                            s.unpin(FileId(x));
                        }
                    }
                }
                // No pins held across ops → never exceeds capacity.
                prop_assert!(s.len() <= cap, "len {} > cap {}", s.len(), cap);
                prop_assert_eq!(s.pinned_count(), 0);
            }
        }

        #[test]
        fn order_set_matches_entries((cap, policy, ops) in arb_ops()) {
            let mut s = SiteStore::new(cap, policy);
            for op in ops {
                match op {
                    Op::Insert(x) => { s.insert(FileId(x)); }
                    Op::Touch(x) => s.touch(FileId(x)),
                    Op::Reference(x) => s.record_task_reference(FileId(x)),
                    Op::PinCycle(_) => {}
                }
            }
            let resident: std::collections::BTreeSet<_> = s.resident().collect();
            prop_assert_eq!(resident.len(), s.len());
            for f in resident {
                prop_assert!(s.contains(f));
            }
            // The residency bitset mirrors the metadata map exactly.
            for x in 0..50u32 {
                let f = FileId(x);
                prop_assert_eq!(s.contains(f), s.entries.contains_key(&f));
            }
        }
    }
}
