//! Max–min fair bandwidth allocation by progressive filling.
//!
//! Given link capacities and the set of links each flow crosses, the
//! progressive-filling algorithm raises all flow rates together until a link
//! saturates, freezes the flows crossing it, and repeats. The result is the
//! unique max–min fair allocation: no flow's rate can be increased without
//! decreasing the rate of a flow that already has an equal or smaller rate.
//!
//! This is the allocation model SimGrid's fluid network engine uses (up to
//! SimGrid's optional RTT weighting, which the paper does not rely on).

/// Computes max–min fair rates.
///
/// * `capacities[l]` — capacity of link `l` (must be positive and finite).
/// * `flow_routes[f]` — the links flow `f` crosses. A flow with an **empty
///   route** shares no link and gets `f64::INFINITY` (used for co-located
///   endpoints).
///
/// Returns one rate per flow.
///
/// # Panics
///
/// Panics if a route references a link `>= capacities.len()` or a capacity
/// is not positive/finite.
///
/// # Complexity
///
/// `O(R · (F + L))` where `R ≤ L` is the number of filling rounds — at least
/// one link saturates per round.
#[must_use]
pub fn max_min_rates(capacities: &[f64], flow_routes: &[Vec<usize>]) -> Vec<f64> {
    for &c in capacities {
        assert!(c.is_finite() && c > 0.0, "capacity must be positive: {c}");
    }
    let n_links = capacities.len();
    let n_flows = flow_routes.len();
    let mut rates = vec![0.0_f64; n_flows];
    let mut saturated = vec![false; n_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Active flow count per link.
    let mut active = vec![0usize; n_links];
    for route in flow_routes {
        for &l in route {
            assert!(l < n_links, "route references unknown link {l}");
            active[l] += 1;
        }
    }
    for (f, route) in flow_routes.iter().enumerate() {
        if route.is_empty() {
            rates[f] = f64::INFINITY;
            saturated[f] = true;
        }
    }

    loop {
        // Find the tightest link among links carrying unsaturated flows.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..n_links {
            if active[l] == 0 {
                continue;
            }
            let share = remaining[l] / active[l] as f64;
            match best {
                Some((s, _)) if share >= s => {}
                _ => best = Some((share, l)),
            }
        }
        let Some((share, bottleneck)) = best else {
            break; // no unsaturated flows left
        };
        // Freeze every unsaturated flow crossing the bottleneck at
        // `current + share`... with progressive filling all unsaturated flows
        // have the same accumulated rate, tracked implicitly: we add `share`
        // to each unsaturated flow's rate and subtract it on every link they
        // cross, then freeze the bottleneck's flows.
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] || route.is_empty() {
                continue;
            }
            rates[f] += share;
            for &l in route {
                remaining[l] -= share;
            }
        }
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] {
                continue;
            }
            if route.contains(&bottleneck) {
                saturated[f] = true;
                for &l in route {
                    active[l] -= 1;
                }
            }
        }
        // Numerical hygiene: clamp tiny negatives from float error.
        remaining[bottleneck] = remaining[bottleneck].max(0.0);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_flow_gets_full_link() {
        let r = max_min_rates(&[10.0], &[vec![0]]);
        assert!((r[0] - 10.0).abs() < EPS);
    }

    #[test]
    fn two_flows_share_equally() {
        let r = max_min_rates(&[10.0], &[vec![0], vec![0]]);
        assert!((r[0] - 5.0).abs() < EPS);
        assert!((r[1] - 5.0).abs() < EPS);
    }

    #[test]
    fn empty_route_is_infinite() {
        let r = max_min_rates(&[10.0], &[vec![], vec![0]]);
        assert!(r[0].is_infinite());
        assert!((r[1] - 10.0).abs() < EPS);
    }

    #[test]
    fn classic_three_flow_example() {
        // Links: A (cap 10), B (cap 10).
        // f0 crosses A and B, f1 crosses A, f2 crosses B.
        // Max–min: all rates 5.
        let r = max_min_rates(&[10.0, 10.0], &[vec![0, 1], vec![0], vec![1]]);
        for &x in &r {
            assert!((x - 5.0).abs() < EPS, "rates {r:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck() {
        // Link A cap 2 carries f0; link B cap 10 carries f0 and f1.
        // f0 limited to 2 by A; f1 then gets the rest of B = 8.
        let r = max_min_rates(&[2.0, 10.0], &[vec![0, 1], vec![1]]);
        assert!((r[0] - 2.0).abs() < EPS);
        assert!((r[1] - 8.0).abs() < EPS);
    }

    #[test]
    fn no_flows() {
        let r = max_min_rates(&[1.0, 2.0], &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn unused_links_ignored() {
        let r = max_min_rates(&[1.0, 100.0], &[vec![0]]);
        assert!((r[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn many_flows_one_link() {
        let routes: Vec<Vec<usize>> = (0..100).map(|_| vec![0]).collect();
        let r = max_min_rates(&[50.0], &routes);
        for &x in &r {
            assert!((x - 0.5).abs() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_route_panics() {
        let _ = max_min_rates(&[1.0], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }

    /// Invariant check used by both unit and property tests: the allocation
    /// never oversubscribes a link and every finite-rate flow has at least
    /// one saturated link on its route (Pareto optimality / bottleneck
    /// property).
    pub(crate) fn assert_max_min_invariants(
        capacities: &[f64],
        routes: &[Vec<usize>],
        rates: &[f64],
    ) {
        let tol = 1e-6;
        // 1. Feasibility.
        let mut load = vec![0.0; capacities.len()];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                load[l] += rates[f];
            }
        }
        for (l, &cap) in capacities.iter().enumerate() {
            assert!(
                load[l] <= cap * (1.0 + tol) + tol,
                "link {l} oversubscribed: load={} cap={}",
                load[l],
                cap
            );
        }
        // 2. Bottleneck property: every flow has a saturated link on its
        //    route where it has a maximal rate among that link's flows.
        for (f, route) in routes.iter().enumerate() {
            if route.is_empty() {
                assert!(rates[f].is_infinite());
                continue;
            }
            let has_bottleneck = route.iter().any(|&l| {
                let saturated = load[l] >= capacities[l] * (1.0 - tol) - tol;
                let maximal = routes
                    .iter()
                    .enumerate()
                    .filter(|(_, r2)| r2.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] + tol);
                saturated && maximal
            });
            assert!(
                has_bottleneck,
                "flow {f} (rate {}) has no bottleneck link",
                rates[f]
            );
        }
    }

    #[test]
    fn invariants_on_examples() {
        let cases: Vec<(Vec<f64>, Vec<Vec<usize>>)> = vec![
            (vec![10.0], vec![vec![0], vec![0], vec![0]]),
            (vec![10.0, 10.0], vec![vec![0, 1], vec![0], vec![1]]),
            (vec![2.0, 10.0], vec![vec![0, 1], vec![1]]),
            (
                vec![5.0, 7.0, 3.0],
                vec![vec![0, 1, 2], vec![0], vec![1], vec![2], vec![0, 2]],
            ),
        ];
        for (caps, routes) in cases {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::assert_max_min_invariants;
    use super::*;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        // 1..8 links with capacities 0.5..100, 0..12 flows crossing random
        // non-empty subsets.
        (1usize..8).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(0.5f64..100.0, n_links);
            let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>());
            let flows = proptest::collection::vec(route, 0..12);
            (caps, flows)
        })
    }

    proptest! {
        #[test]
        fn max_min_invariants_hold((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }

        #[test]
        fn rates_positive((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            for (f, r) in rates.iter().enumerate() {
                prop_assert!(*r > 0.0, "flow {} got non-positive rate {}", f, r);
            }
        }

        #[test]
        fn deterministic((caps, routes) in arb_case()) {
            let a = max_min_rates(&caps, &routes);
            let b = max_min_rates(&caps, &routes);
            prop_assert_eq!(a, b);
        }
    }
}
