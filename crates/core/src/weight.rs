//! `CalculateWeight()` — the paper's three task-weight metrics (§4.2).
//!
//! For a requesting worker with site storage `store` and a pending task `t`
//! with input set `files(t)`:
//!
//! * **Overlap** — `|F_t|`, the overlap cardinality: how many of the task's
//!   files are already in the worker's local storage. The primary metric of
//!   prior task-centric work; maximises the chance of reuse.
//! * **Rest** — `1 / (|t| − |F_t|)`: the inverse of the number of files
//!   that would still have to be transferred. When *no* files are missing
//!   the weight is `+∞` — such a task is strictly preferred, which is the
//!   metric's intent (zero transfers).
//! * **Combined** — `ref_t / totalRef + rest_t / totalRest` where
//!   `ref_t = Σ_{i∈F_t} r_i` sums the site's past references of the
//!   overlapping files, and `totalRef` / `totalRest` normalise each term
//!   over all pending tasks. (The paper's typesetting garbles the second
//!   fraction; normalising `rest_t` by `totalRest` is the reading under
//!   which both terms are dimensionless shares that sum to 1 across the
//!   task queue, and larger-is-better is preserved.)
//!
//! Weight evaluation over the whole queue is `O(T·I)` — the complexity the
//! paper quotes in §4.4 (`T` pending tasks, `I` worst-case files per task).
//! The [`crate::index`] module provides an incrementally-maintained `O(T)`
//! path plus bucketed priority indexes with `O(log T)` amortized picks; all
//! paths are property-tested to agree bit for bit.
//!
//! To make that bit-identity possible, the `combined` metric's `totalRest`
//! normaliser is accumulated in a **canonical order**: per missing-file
//! count (ascending), as `count(m) × rest(m)` — see
//! [`total_rest_from_counts`]. Floating-point addition is not associative,
//! so a per-task accumulation order would be unreproducible from the
//! incremental per-level counters; grouping by the (small-integer) missing
//! count gives every evaluation path the same well-defined sum.

use serde::{Deserialize, Serialize};
use std::fmt;

use gridsched_storage::SiteStore;
use gridsched_workload::{TaskId, Workload};

use crate::pool::TaskPool;

/// Which `CalculateWeight()` variant the worker-centric scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightMetric {
    /// Overlap cardinality `|F_t|`.
    Overlap,
    /// Inverse missing-file count `1/(|t|−|F_t|)`.
    Rest,
    /// Normalised past-references plus normalised rest.
    Combined,
}

impl fmt::Display for WeightMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WeightMetric::Overlap => "overlap",
            WeightMetric::Rest => "rest",
            WeightMetric::Combined => "combined",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for WeightMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "overlap" => Ok(WeightMetric::Overlap),
            "rest" => Ok(WeightMetric::Rest),
            "combined" => Ok(WeightMetric::Combined),
            other => Err(format!("unknown metric `{other}` (overlap|rest|combined)")),
        }
    }
}

/// The `rest` weight given the missing-file count.
#[inline]
#[must_use]
pub fn rest_weight(missing: usize) -> f64 {
    if missing == 0 {
        f64::INFINITY
    } else {
        1.0 / missing as f64
    }
}

/// The `combined` metric's queue-wide `totalRest` normaliser, accumulated
/// in the canonical order every evaluation path shares: ascending missing
/// count `m`, adding `count(m) × rest(m)` per occupied level.
///
/// The `m`-th yielded item is the number of pending tasks missing exactly
/// `m` files. Any task with `m = 0` (infinite rest) makes the total
/// infinite, exactly as a per-task accumulation would.
///
/// This is the **single** implementation of the canonical order — every
/// evaluation path (naive scan, indexed scan, `TaskRank` pick) must feed
/// its per-level counts through here so the byte-identity contract lives
/// in one place.
#[must_use]
pub fn total_rest_from_counts<I: IntoIterator<Item = u32>>(counts: I) -> f64 {
    let mut total = 0.0f64;
    for (m, c) in counts.into_iter().enumerate() {
        if c > 0 {
            total += f64::from(c) * rest_weight(m);
        }
    }
    total
}

/// Combines the per-task `ref` and `rest` values into the `combined`
/// weight, given the queue-wide totals.
#[inline]
#[must_use]
pub fn combined_weight(ref_t: u64, rest_t: f64, total_ref: u64, total_rest: f64) -> f64 {
    if rest_t.is_infinite() {
        return f64::INFINITY;
    }
    let ref_term = if total_ref > 0 {
        ref_t as f64 / total_ref as f64
    } else {
        0.0
    };
    let rest_term = if total_rest.is_finite() && total_rest > 0.0 {
        rest_t / total_rest
    } else {
        // Some other task has zero missing files (infinite rest); finite
        // tasks' normalised share is vanishingly small.
        0.0
    };
    ref_term + rest_term
}

/// Evaluates `CalculateWeight()` for every pending task against `store`,
/// by direct file probing — the paper's `O(T·I)` algorithm.
///
/// Returns `(task, weight)` pairs in ascending task-id order. Weights are
/// non-negative; `+∞` marks zero-transfer tasks under `Rest`/`Combined`.
#[must_use]
pub fn weigh_all_naive(
    metric: WeightMetric,
    workload: &Workload,
    pool: &TaskPool,
    store: &SiteStore,
) -> Vec<(TaskId, f64)> {
    match metric {
        WeightMetric::Overlap => pool
            .iter()
            .map(|t| {
                let files = workload.task(t).files();
                (t, store.overlap(files) as f64)
            })
            .collect(),
        WeightMetric::Rest => pool
            .iter()
            .map(|t| {
                let files = workload.task(t).files();
                let missing = files.len() - store.overlap(files);
                (t, rest_weight(missing))
            })
            .collect(),
        WeightMetric::Combined => {
            // Pass 1: per-task ref and missing count, plus the queue-wide
            // totals (`totalRest` in the canonical grouped order).
            let mut per_task: Vec<(TaskId, u64, usize)> = Vec::with_capacity(pool.len());
            let mut total_ref: u64 = 0;
            let mut missing_counts: Vec<u32> = Vec::new();
            for t in pool.iter() {
                let files = workload.task(t).files();
                let overlap = store.overlap(files);
                let missing = files.len() - overlap;
                let ref_t = store.overlap_ref_sum(files);
                total_ref += ref_t;
                if missing >= missing_counts.len() {
                    missing_counts.resize(missing + 1, 0);
                }
                missing_counts[missing] += 1;
                per_task.push((t, ref_t, missing));
            }
            let total_rest = total_rest_from_counts(missing_counts.iter().copied());
            // Pass 2: combine.
            per_task
                .into_iter()
                .map(|(t, ref_t, missing)| {
                    let rest_t = rest_weight(missing);
                    (t, combined_weight(ref_t, rest_t, total_ref, total_rest))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::{FileId, TaskSpec};

    fn wl() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2), FileId(3)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(4)], 0.0),
            ],
            5,
            1.0,
            "w",
        )
    }

    fn store_with(files: &[u32]) -> SiteStore {
        let mut s = SiteStore::new(100, EvictionPolicy::Lru);
        for &f in files {
            s.insert(FileId(f));
        }
        s
    }

    #[test]
    fn metric_parsing() {
        assert_eq!("rest".parse::<WeightMetric>().unwrap(), WeightMetric::Rest);
        assert_eq!(WeightMetric::Combined.to_string(), "combined");
        assert!("best".parse::<WeightMetric>().is_err());
    }

    #[test]
    fn overlap_counts_resident() {
        let store = store_with(&[1, 2]);
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Overlap, &wl(), &pool, &store);
        assert_eq!(
            w,
            vec![(TaskId(0), 1.0), (TaskId(1), 2.0), (TaskId(2), 0.0)]
        );
    }

    #[test]
    fn rest_is_inverse_missing() {
        let store = store_with(&[1, 2]);
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Rest, &wl(), &pool, &store);
        assert_eq!(w[0], (TaskId(0), 1.0)); // 1 missing
        assert_eq!(w[1], (TaskId(1), 1.0)); // 1 missing
        assert_eq!(w[2], (TaskId(2), 1.0)); // 1 missing
    }

    #[test]
    fn rest_zero_missing_is_infinite() {
        let store = store_with(&[0, 1]);
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Rest, &wl(), &pool, &store);
        assert!(w[0].1.is_infinite());
    }

    #[test]
    fn combined_prefers_referenced_files() {
        let mut store = store_with(&[1, 3]);
        store.record_task_reference(FileId(3));
        store.record_task_reference(FileId(3));
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Combined, &wl(), &pool, &store);
        // Task 1 overlaps {1,3} with refs 0+2=2; task 0 overlaps {1} refs 0.
        // Both have 1 missing (task 0) vs 1 missing (task 1: files 2 missing
        // — wait: task1 files {1,2,3}, resident {1,3} → 1 missing).
        // rest equal → ref term decides: task 1 wins.
        assert!(w[1].1 > w[0].1, "weights: {w:?}");
        assert!(w[1].1 > w[2].1);
    }

    #[test]
    fn combined_terms_are_normalised() {
        let store = store_with(&[0]);
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Combined, &wl(), &pool, &store);
        // No references anywhere → pure normalised rest; the three rest
        // values are 1/1, 1/3, 1/1 → total 7/3.
        let expect = [
            1.0 / (7.0 / 3.0),
            (1.0 / 3.0) / (7.0 / 3.0),
            1.0 / (7.0 / 3.0),
        ];
        for (i, (_, weight)) in w.iter().enumerate() {
            assert!((weight - expect[i]).abs() < 1e-12, "task {i}: {weight}");
        }
    }

    #[test]
    fn total_rest_grouping_matches_expectation() {
        // counts: two tasks missing 1, one missing 3 → 2·1 + 1/3.
        let total = total_rest_from_counts([0, 2, 0, 1]);
        assert!((total - (2.0 + 1.0 / 3.0)).abs() < 1e-15);
        // A zero-missing task makes the total infinite.
        assert!(total_rest_from_counts([1, 2]).is_infinite());
        assert_eq!(total_rest_from_counts([0u32; 0]), 0.0);
    }

    #[test]
    fn combined_handles_infinite_rest_queue() {
        let store = store_with(&[0, 1]); // task 0 fully resident
        let pool = TaskPool::full(3);
        let w = weigh_all_naive(WeightMetric::Combined, &wl(), &pool, &store);
        assert!(w[0].1.is_infinite());
        assert!(w[1].1.is_finite());
        assert!(!w[1].1.is_nan() && !w[2].1.is_nan());
    }

    #[test]
    fn skips_non_pending_tasks() {
        let store = store_with(&[]);
        let mut pool = TaskPool::full(3);
        pool.remove(TaskId(1));
        let w = weigh_all_naive(WeightMetric::Overlap, &wl(), &pool, &store);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, TaskId(0));
        assert_eq!(w[1].0, TaskId(2));
    }
}
