//! The global scheduler's pending-task pool.
//!
//! Supports O(1) membership tests, O(1) removal, and iteration in a stable
//! deterministic order (ascending task id) — the order the paper's
//! pseudo-code ("for each task t in taskQueue") is assumed to visit tasks
//! in.

use gridsched_workload::TaskId;

/// A set of pending task ids with O(1) removal and ordered iteration.
///
/// # Example
///
/// ```
/// use gridsched_core::TaskPool;
/// use gridsched_workload::TaskId;
///
/// let mut pool = TaskPool::full(3);
/// assert_eq!(pool.len(), 3);
/// assert!(pool.remove(TaskId(1)));
/// let left: Vec<_> = pool.iter().collect();
/// assert_eq!(left, vec![TaskId(0), TaskId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct TaskPool {
    /// pending[t] — whether task t is still pending.
    pending: Vec<bool>,
    len: usize,
}

impl TaskPool {
    /// A pool containing every task `0..n`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        TaskPool {
            pending: vec![true; n],
            len: n,
        }
    }

    /// An empty pool sized for `n` tasks.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        TaskPool {
            pending: vec![false; n],
            len: 0,
        }
    }

    /// Number of pending tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tasks are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `task` is pending.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn contains(&self, task: TaskId) -> bool {
        self.pending[task.index()]
    }

    /// Removes `task`. Returns whether it was pending.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn remove(&mut self, task: TaskId) -> bool {
        let slot = &mut self.pending[task.index()];
        let was = *slot;
        if was {
            *slot = false;
            self.len -= 1;
        }
        was
    }

    /// Re-adds `task` (used when a failed assignment is rolled back).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn insert(&mut self, task: TaskId) -> bool {
        let slot = &mut self.pending[task.index()];
        let was = *slot;
        if !was {
            *slot = true;
            self.len += 1;
        }
        !was
    }

    /// Iterates over pending tasks in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| TaskId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_remove() {
        let mut p = TaskPool::full(5);
        assert_eq!(p.len(), 5);
        assert!(p.contains(TaskId(3)));
        assert!(p.remove(TaskId(3)));
        assert!(!p.remove(TaskId(3)), "double remove");
        assert!(!p.contains(TaskId(3)));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn insert_restores() {
        let mut p = TaskPool::full(2);
        p.remove(TaskId(0));
        assert!(p.insert(TaskId(0)));
        assert!(!p.insert(TaskId(0)), "double insert");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn iteration_is_ordered() {
        let mut p = TaskPool::full(6);
        p.remove(TaskId(0));
        p.remove(TaskId(4));
        let ids: Vec<u32> = p.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 5]);
    }

    #[test]
    fn empty_pool() {
        let p = TaskPool::empty(4);
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
    }
}
