//! Site-storage micro-benchmarks: insert/evict churn, overlap queries and
//! the reference-sum used by the `combined` metric, per replacement
//! policy, at the paper's default capacity (6,000 files).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridsched_storage::{EvictionPolicy, SiteStore};
use gridsched_workload::FileId;

fn bench_insert_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_insert_churn");
    for policy in EvictionPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter_with_setup(
                    || {
                        let mut store = SiteStore::new(6000, policy);
                        for i in 0..6000 {
                            store.insert(FileId(i));
                        }
                        (store, StdRng::seed_from_u64(1))
                    },
                    |(mut store, mut rng)| {
                        for _ in 0..1000 {
                            let f = FileId(rng.gen_range(0..60_000));
                            std::hint::black_box(store.insert(f));
                        }
                        store
                    },
                )
            },
        );
    }
    group.finish();
}

fn bench_overlap_queries(c: &mut Criterion) {
    let mut store = SiteStore::new(6000, EvictionPolicy::Lru);
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..6000 {
        store.insert(FileId(i));
        if i % 3 == 0 {
            store.record_task_reference(FileId(i));
        }
    }
    // A typical Coadd task reads ~78 files; half resident.
    let task_files: Vec<FileId> = (0..78).map(|_| FileId(rng.gen_range(0..12_000))).collect();
    c.bench_function("store_overlap_78files", |b| {
        b.iter(|| std::hint::black_box(store.overlap(&task_files)))
    });
    c.bench_function("store_overlap_ref_sum_78files", |b| {
        b.iter(|| std::hint::black_box(store.overlap_ref_sum(&task_files)))
    });
    c.bench_function("store_missing_78files", |b| {
        b.iter(|| std::hint::black_box(store.missing(&task_files)))
    });
}

criterion_group!(benches, bench_insert_churn, bench_overlap_queries);
criterion_main!(benches);
