//! Sampling strategies and combinators.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values (no shrinking in this stub).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced value.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from the value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A boxed, type-erased strategy (element type of [`Union`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!`).
#[must_use]
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// The whole-domain strategy of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_and_map() {
        let mut rng = test_rng("strategy::ranges_and_map");
        let s = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!([10, 20, 30, 40].contains(&v));
        }
    }

    #[test]
    fn flat_map_depends_on_outer() {
        let mut rng = test_rng("strategy::flat_map");
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_hits_all_options() {
        let mut rng = test_rng("strategy::union");
        let s = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = test_rng("strategy::tuples");
        let s = (0u8..2, 10u8..12, 0.0f64..1.0, Just(7u8));
        for _ in 0..50 {
            let (a, b, c, d) = s.sample(&mut rng);
            assert!(a < 2 && (10..12).contains(&b) && (0.0..1.0).contains(&c) && d == 7);
        }
    }
}
