//! Telemetry tour: what the observability layer sees in a churny run.
//!
//! Runs one small Coadd workload under worker churn with fixed-interval
//! checkpointing, telemetry fully live (instruments, lifecycle spans,
//! periodic probes), then prints the five hottest instruments, the span
//! traffic per track family, and a compact probe digest — the same data
//! `gridsched simulate --trace-out/--metrics-out/--probe-interval` writes
//! to disk.
//!
//! ```sh
//! cargo run --release --example telemetry_tour
//! ```

use std::sync::Arc;

use gridsched::prelude::*;
use gridsched::telemetry::InstrumentValue;

fn main() {
    let mut coadd = CoaddConfig::paper_6000();
    coadd.tasks = 600; // keep the example under a few seconds
    let workload = Arc::new(coadd.generate());

    let config = SimConfig::paper(workload, StrategyKind::Combined2)
        .with_sites(5)
        .with_seed(0)
        .with_faults(FaultConfig::none().with_worker_faults(7_200.0, 1_200.0))
        .with_checkpointing(CheckpointConfig::fixed(1_800.0))
        .with_probe_interval(3_600.0);

    // Inject the collector instead of configuring file outputs: the same
    // `Telemetry` handle the engine records into stays inspectable here.
    let telemetry = Telemetry::enabled();
    let report = GridSim::new(config).with_telemetry(telemetry.clone()).run();

    println!(
        "ran {} tasks in {:.0} simulated minutes ({} events)\n",
        report.tasks_completed, report.makespan_minutes, report.events_dispatched
    );

    println!("top 5 hottest instruments:");
    for snap in telemetry.hottest(5) {
        match snap.value {
            InstrumentValue::Counter { value } => {
                println!("  {:<36} counter    {value:>10}", snap.name);
            }
            InstrumentValue::Histogram {
                count, sum, max, ..
            } => {
                println!(
                    "  {:<36} histogram  {count:>10} obs  mean {:.1}  max {max}",
                    snap.name,
                    sum as f64 / (count as f64).max(1.0)
                );
            }
        }
    }

    let events = telemetry.trace_events();
    let spans = events
        .iter()
        .filter(|e| e.phase == gridsched::telemetry::SpanPhase::Begin)
        .count();
    let worker_tracks = events
        .iter()
        .filter(|e| e.track.pid == 1)
        .map(|e| e.track.tid)
        .collect::<std::collections::HashSet<_>>()
        .len();
    println!("\nspans opened: {spans} across {worker_tracks} worker tracks");

    let probes = telemetry.probes();
    let busiest = probes
        .iter()
        .max_by_key(|p| p.in_flight_flows)
        .expect("probe interval set, so samples exist");
    println!(
        "probes: {} samples; busiest instant t={:.0}s with {} in-flight flows \
         ({}/{} links busy)",
        probes.len(),
        busiest.t_s,
        busiest.in_flight_flows,
        busiest.links_busy,
        busiest.links_total
    );

    println!(
        "\nthe same run via the CLI writes Perfetto-loadable traces:\n  \
         gridsched simulate --strategy combined.2 --sites 5 --mtbf 7200 --mttr 1200 \
         --checkpoint-interval 1800 \\\n    --trace-out trace.json --metrics-out \
         metrics.jsonl --probe-interval 3600"
    );
}
