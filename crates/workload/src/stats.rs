//! Workload statistics: Table 2 and the Figures 1/3 reference CDF.
//!
//! The paper characterises Coadd by (a) files-per-task min/max/mean
//! (Table 2) and (b) the cumulative distribution of per-file reference
//! counts, plotted with a *decreasing* x-axis: the y-value at `x = k` is the
//! percentage of files referenced by **at least** `k` tasks ("roughly 85% of
//! files are accessed by 6 or more tasks").

use serde::{Deserialize, Serialize};

use crate::types::Workload;

/// Summary statistics of a [`Workload`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Total number of distinct files (Table 2: 53,390 for scaled Coadd).
    pub total_files: usize,
    /// Maximum files needed by a task (Table 2: 101).
    pub max_files_per_task: usize,
    /// Minimum files needed by a task (Table 2: 36).
    pub min_files_per_task: usize,
    /// Mean files needed by a task (Table 2: 78.4327).
    pub mean_files_per_task: f64,
    /// Histogram: `ref_histogram[k]` = number of files referenced by exactly
    /// `k` tasks (index 0 unused — every file is referenced at least once in
    /// a well-formed workload, but we keep it for defensive reporting).
    pub ref_histogram: Vec<usize>,
}

impl WorkloadStats {
    /// Computes statistics for `workload`.
    #[must_use]
    pub fn compute(workload: &Workload) -> Self {
        let counts = workload.reference_counts();
        let max_refs = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max_refs + 1];
        for &c in &counts {
            hist[c as usize] += 1;
        }
        let per_task: Vec<usize> = workload.tasks().iter().map(|t| t.file_count()).collect();
        let sum: usize = per_task.iter().sum();
        WorkloadStats {
            tasks: workload.task_count(),
            total_files: workload.file_count(),
            max_files_per_task: per_task.iter().copied().max().unwrap_or(0),
            min_files_per_task: per_task.iter().copied().min().unwrap_or(0),
            mean_files_per_task: sum as f64 / per_task.len() as f64,
            ref_histogram: hist,
        }
    }

    /// Percentage (0–100) of files referenced by **at least** `k` tasks —
    /// one point of the Figure 1/3 CDF.
    #[must_use]
    pub fn pct_files_with_at_least(&self, k: usize) -> f64 {
        if self.total_files == 0 {
            return 0.0;
        }
        let at_least: usize = self.ref_histogram.iter().skip(k).sum();
        at_least as f64 / self.total_files as f64 * 100.0
    }

    /// The full decreasing-x CDF as `(k, pct_files_with_at_least(k))` pairs
    /// for `k = 1 ..= max_refs` — exactly the series plotted in Figures 1
    /// and 3.
    #[must_use]
    pub fn reference_cdf(&self) -> Vec<(usize, f64)> {
        (1..self.ref_histogram.len())
            .map(|k| (k, self.pct_files_with_at_least(k)))
            .collect()
    }

    /// The highest reference count observed.
    #[must_use]
    pub fn max_references(&self) -> usize {
        self.ref_histogram.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use crate::types::{FileId, TaskId, TaskSpec, Workload};

    fn wl() -> Workload {
        // Files: 0 referenced by 3 tasks, 1 by 2, 2 by 1.
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(1), vec![FileId(0), FileId(1)], 0.0),
                TaskSpec::new(TaskId(2), vec![FileId(0), FileId(2)], 0.0),
            ],
            3,
            1.0,
            "t",
        )
    }

    #[test]
    fn table2_style_stats() {
        let s = wl().stats();
        assert_eq!(s.tasks, 3);
        assert_eq!(s.total_files, 3);
        assert_eq!(s.min_files_per_task, 2);
        assert_eq!(s.max_files_per_task, 2);
        assert!((s.mean_files_per_task - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_and_cdf() {
        let s = wl().stats();
        // refs: file0=3, file1=2, file2=1 → hist[1]=1, hist[2]=1, hist[3]=1
        assert_eq!(s.ref_histogram, vec![0, 1, 1, 1]);
        assert!((s.pct_files_with_at_least(1) - 100.0).abs() < 1e-9);
        assert!((s.pct_files_with_at_least(2) - 66.666).abs() < 0.01);
        assert!((s.pct_files_with_at_least(3) - 33.333).abs() < 0.01);
        assert_eq!(s.pct_files_with_at_least(4), 0.0);
        let cdf = s.reference_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 1);
        assert_eq!(s.max_references(), 3);
    }

    #[test]
    fn cdf_is_monotone_decreasing() {
        let s = wl().stats();
        let cdf = s.reference_cdf();
        for w in cdf.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
