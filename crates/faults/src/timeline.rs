//! Per-entity stochastic failure/recovery timelines.
//!
//! Each worker and each data server gets its **own** RNG stream, derived
//! from the master seed and the entity's identity. This keeps timelines
//! decorrelated and — crucially — makes the fault schedule independent of
//! event interleaving: the k-th failure of worker 7 happens at the same
//! simulated time no matter what the other entities did in between, so a
//! run is reproducible from `(seed, FaultConfig)` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridsched_des::rng::{derive_seed, Stream};
use gridsched_des::SimDuration;

/// A fault-prone entity of the simulated grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A worker, by flat index (`site * workers_per_site + index`).
    Worker(usize),
    /// A site's data server, by site index.
    Server(usize),
}

impl Entity {
    /// A collision-free 64-bit tag for seed derivation.
    fn tag(self) -> u64 {
        match self {
            Entity::Worker(i) => 0x1_0000_0000 | i as u64,
            Entity::Server(s) => 0x2_0000_0000 | s as u64,
        }
    }
}

/// An alternating-renewal fault process: up for `Exp(MTBF)`, down for
/// `Exp(MTTR)`.
///
/// The engine asks for the next inter-event time lazily ([`
/// FaultTimeline::time_to_failure`] while up, [`FaultTimeline::time_to_repair`]
/// while down); the sequence of draws is fixed by the seed and entity.
#[derive(Debug)]
pub struct FaultTimeline {
    rng: StdRng,
    mtbf_s: f64,
    mttr_s: f64,
}

impl FaultTimeline {
    /// Creates the timeline of `entity` under `master_seed` with the given
    /// mean up/down times (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    #[must_use]
    pub fn new(master_seed: u64, entity: Entity, mtbf_s: f64, mttr_s: f64) -> Self {
        assert!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive");
        assert!(mttr_s > 0.0 && mttr_s.is_finite(), "MTTR must be positive");
        let base = derive_seed(master_seed, Stream::Faults);
        let seed = derive_seed(base ^ entity.tag(), Stream::Faults);
        FaultTimeline {
            rng: StdRng::seed_from_u64(seed),
            mtbf_s,
            mttr_s,
        }
    }

    fn exponential(&mut self, mean_s: f64) -> SimDuration {
        // Inverse-CDF sampling; u ∈ [0, 1) keeps ln(1-u) finite.
        let u: f64 = self.rng.gen();
        SimDuration::from_secs(-mean_s * (1.0 - u).ln())
    }

    /// Time from now (an up transition) until the next failure.
    #[must_use]
    pub fn time_to_failure(&mut self) -> SimDuration {
        self.exponential(self.mtbf_s)
    }

    /// Time from now (a failure) until the repair completes.
    #[must_use]
    pub fn time_to_repair(&mut self) -> SimDuration {
        self.exponential(self.mttr_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_entity() {
        let draws = |entity| {
            let mut tl = FaultTimeline::new(42, entity, 3600.0, 600.0);
            (0..8)
                .map(|_| (tl.time_to_failure(), tl.time_to_repair()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(Entity::Worker(0)), draws(Entity::Worker(0)));
        assert_ne!(draws(Entity::Worker(0)), draws(Entity::Worker(1)));
        assert_ne!(draws(Entity::Worker(0)), draws(Entity::Server(0)));
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = FaultTimeline::new(1, Entity::Server(2), 1000.0, 100.0);
        let mut b = FaultTimeline::new(2, Entity::Server(2), 1000.0, 100.0);
        assert_ne!(a.time_to_failure(), b.time_to_failure());
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut tl = FaultTimeline::new(0, Entity::Worker(0), 500.0, 50.0);
        let n = 4000;
        let sum: f64 = (0..n).map(|_| tl.time_to_failure().as_secs()).sum();
        let mean = sum / f64::from(n);
        assert!(
            (mean - 500.0).abs() < 50.0,
            "sample mean {mean} far from 500"
        );
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let mut tl = FaultTimeline::new(9, Entity::Worker(5), 10.0, 1.0);
        for _ in 0..1000 {
            let d = tl.time_to_failure().as_secs();
            assert!(d.is_finite() && d >= 0.0);
        }
    }
}
