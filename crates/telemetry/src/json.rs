//! A minimal JSON reader for the forensics tooling.
//!
//! The workspace vendors no JSON library — every emitter hand-writes its
//! output — so the analyzer ([`crate::analyze`]) and the digest bisector
//! ([`crate::digest`]) hand-read it with this small recursive-descent
//! parser. It supports the full JSON grammar we emit: objects, arrays,
//! strings with escapes, numbers, booleans and null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; all our integers fit exactly).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` on other variants / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences included).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let slice = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        slice
            .parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{slice}' at byte {start}"))
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\u{7}");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{7}"));
    }

    #[test]
    fn u64_integer_exactness() {
        let v = parse("1500000").unwrap();
        assert_eq!(v.as_u64(), Some(1_500_000));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
