//! Acceptance tests for the run-forensics and determinism-digest layers.
//!
//! Forensics contract: the per-task blame decomposition tiles each
//! execution exactly (components sum to the span), and the critical path
//! is a chain of disjoint recorded segments, so its length lower-bounds
//! the makespan. Digest contract: the windowed event-stream digest is a
//! pure function of the simulated schedule — byte-identical across every
//! scheduler evaluation path and across repeated runs, and divergent
//! (with a pinpointed first window/ordinal) the moment the schedule
//! actually differs.

use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("gridsched-forensics-{}-{tag}", std::process::id()))
        .to_str()
        .expect("utf-8 temp path")
        .to_string()
}

const ALL_STRATEGIES: [StrategyKind; 8] = [
    StrategyKind::StorageAffinity,
    StrategyKind::Overlap,
    StrategyKind::Rest,
    StrategyKind::Combined,
    StrategyKind::Rest2,
    StrategyKind::Combined2,
    StrategyKind::Workqueue,
    StrategyKind::Sufferage,
];

fn small_workload(seed: u64, tasks: u32) -> Arc<Workload> {
    let mut cfg = CoaddConfig::small(seed);
    cfg.tasks = tasks;
    Arc::new(cfg.generate())
}

/// Runs one traced simulation and analyzes the recording.
fn blame_for(config: &SimConfig, tag: &str) -> (MetricsReport, BlameReport) {
    let trace_path = temp_path(tag);
    let report = GridSim::new(config.clone().with_trace_out(&trace_path))
        .with_telemetry(Telemetry::enabled())
        .run();
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let _ = std::fs::remove_file(&trace_path);
    let blame = BlameReport::from_chrome_trace(&text).expect("trace parses");
    (report, blame)
}

/// Blame components must sum to each task's span (exact tiling), every
/// workload task must appear, and the critical path must be a non-empty
/// chain of segments that lower-bounds the makespan.
#[test]
fn blame_tiles_spans_and_critical_path_bounds_makespan() {
    for (i, strategy) in [
        StrategyKind::StorageAffinity,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Sufferage,
    ]
    .into_iter()
    .enumerate()
    {
        let config = SimConfig::paper(small_workload(1, 100), strategy)
            .with_sites(3)
            .with_capacity(500)
            .with_seed(1);
        let (report, blame) = blame_for(&config, &format!("blame-{i}.json"));
        assert_eq!(blame.tasks.len(), 100, "{strategy}");
        assert_eq!(
            blame.tasks.iter().filter(|t| t.completed).count(),
            100,
            "{strategy}"
        );
        for task in &blame.tasks {
            let sum = task.queue_wait_us
                + task.staging_us
                + task.restore_us
                + task.compute_us
                + task.checkpoint_us
                + task.re_executed_us;
            assert_eq!(
                sum, task.span_us,
                "{strategy}: task {} blame does not tile its span",
                task.task
            );
        }
        let makespan_us = (report.makespan_minutes * 60.0 * 1e6).round() as u64;
        let path = blame.critical_path_us();
        assert!(path > 0, "{strategy}: empty critical path");
        assert!(
            path <= makespan_us + blame.critical_path.len() as u64,
            "{strategy}: critical path {path} µs exceeds makespan {makespan_us} µs \
             (tolerance one µs of rounding per segment)"
        );
        // Segments are chained backwards from the makespan and must not
        // overlap in time.
        for pair in blame.critical_path.windows(2) {
            assert!(
                pair[0].end_us <= pair[1].start_us,
                "{strategy}: critical-path segments overlap"
            );
        }
    }
}

/// Under churn + checkpointing, lost attempts surface as re-executed
/// work, and restored attempts as restore time — and the tiling identity
/// still holds for every task.
#[test]
fn blame_accounts_for_reexecution_under_churn() {
    let config = SimConfig::paper(small_workload(3, 80), StrategyKind::Combined2)
        .with_sites(3)
        .with_capacity(400)
        .with_seed(2)
        .with_faults(
            FaultConfig::none()
                .with_worker_faults(3_000.0, 400.0)
                .with_server_faults(25_000.0, 700.0),
        )
        .with_checkpointing(CheckpointConfig::fixed(300.0));
    let (report, blame) = blame_for(&config, "blame-churn.json");
    assert!(
        report.re_executions > 0,
        "config produced no churn; tighten it"
    );
    for task in &blame.tasks {
        let sum = task.queue_wait_us
            + task.staging_us
            + task.restore_us
            + task.compute_us
            + task.checkpoint_us
            + task.re_executed_us;
        assert_eq!(sum, task.span_us, "task {} does not tile", task.task);
    }
    let reexecuted: u64 = blame.tasks.iter().map(|t| t.re_executed_us).sum();
    assert!(
        reexecuted > 0,
        "re-executions happened but no blame landed on re_executed"
    );
}

/// Two runs of the same config produce byte-identical digest files; a
/// seed change diverges, and the bisector names a first window whose
/// ordinal range contains the divergence.
#[test]
fn digest_identity_and_divergence() {
    let base = SimConfig::paper(small_workload(1, 100), StrategyKind::Rest2)
        .with_sites(3)
        .with_capacity(500)
        .with_seed(1)
        .with_digest_window(600.0);
    let paths: Vec<String> = (0..3)
        .map(|i| temp_path(&format!("dig-{i}.jsonl")))
        .collect();
    let _ = GridSim::new(base.clone().with_digest_out(&paths[0])).run();
    let _ = GridSim::new(base.clone().with_digest_out(&paths[1])).run();
    let _ = GridSim::new(base.clone().with_seed(9).with_digest_out(&paths[2])).run();
    let bytes: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| std::fs::read(p).expect("digest written"))
        .collect();
    assert_eq!(
        bytes[0], bytes[1],
        "same config+seed must digest identically"
    );
    assert_ne!(bytes[0], bytes[2], "seed change must perturb the digest");
    let parse = |b: &[u8]| {
        DigestStream::parse_jsonl(std::str::from_utf8(b).unwrap()).expect("digest parses")
    };
    let (a, b, c) = (parse(&bytes[0]), parse(&bytes[1]), parse(&bytes[2]));
    assert!(diff_digests(&a, &b).unwrap().is_none());
    let div = diff_digests(&a, &c)
        .unwrap()
        .expect("bisector must report the divergence");
    assert!(div.ordinal_lo <= div.ordinal_hi);
    assert!(
        div.ordinal_hi < a.events.max(c.events),
        "divergent ordinal range must point into the stream"
    );
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

proptest! {
    // Whole-simulation cases are expensive; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The digest acceptance matrix: for a random grid shape and seed,
    /// all 8 strategies × all 3 evaluation paths produce a digest file
    /// that is byte-identical between `Incremental`, `Indexed` and
    /// `Naive` — the digest witnesses the schedule, and the schedule is
    /// eval-mode invariant.
    #[test]
    fn digests_identical_across_eval_modes(
        sites in 2usize..5,
        capacity in 200usize..800,
        seed in 0u64..3,
    ) {
        let workload = small_workload(seed, 60);
        for strategy in ALL_STRATEGIES {
            let base = SimConfig::paper(Arc::clone(&workload), strategy)
                .with_sites(sites)
                .with_capacity(capacity)
                .with_seed(seed)
                .with_digest_window(900.0);
            let mut digests = Vec::new();
            for (i, mode) in [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive]
                .into_iter()
                .enumerate()
            {
                let path = temp_path(&format!("mode-{i}.jsonl"));
                let _ = GridSim::new(
                    base.clone().with_eval_mode(mode).with_digest_out(&path),
                )
                .run();
                digests.push(std::fs::read(&path).expect("digest written"));
                let _ = std::fs::remove_file(&path);
            }
            prop_assert_eq!(
                &digests[0], &digests[1],
                "incremental vs indexed digest ({})", strategy
            );
            prop_assert_eq!(
                &digests[0], &digests[2],
                "incremental vs naive digest ({})", strategy
            );
        }
    }
}
