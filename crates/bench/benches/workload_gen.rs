//! Workload- and topology-generation benchmarks (the per-replicate setup
//! cost of every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gridsched_topology::{generate, TiersConfig};
use gridsched_workload::coadd::CoaddConfig;

fn bench_coadd(c: &mut Criterion) {
    let mut group = c.benchmark_group("coadd_generate");
    group.sample_size(10);
    for &tasks in &[1500u32, 6000] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            let mut cfg = CoaddConfig::paper_6000();
            cfg.tasks = tasks;
            b.iter(|| std::hint::black_box(cfg.generate()))
        });
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("tiers_generate_90sites", |b| {
        b.iter(|| std::hint::black_box(generate(&TiersConfig::paper(0))))
    });
}

criterion_group!(benches, bench_coadd, bench_topology);
criterion_main!(benches);
