//! Core workload types: files, tasks and Bag-of-Tasks jobs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of an input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Dense identifier of a task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl FileId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task of a Bag-of-Tasks job: the input files it reads and its compute
/// cost.
///
/// Invariant: `files` is sorted and duplicate-free (enforced by
/// [`TaskSpec::new`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// The task's id (its index in the owning [`Workload`]).
    pub id: TaskId,
    files: Vec<FileId>,
    /// Compute cost in floating-point operations.
    pub flops: f64,
}

impl TaskSpec {
    /// Creates a task, normalising its file list (sorted, deduped).
    ///
    /// # Panics
    ///
    /// Panics if `files` is empty (a data-intensive task reads at least one
    /// file) or `flops` is negative/NaN.
    #[must_use]
    pub fn new(id: TaskId, mut files: Vec<FileId>, flops: f64) -> Self {
        assert!(!files.is_empty(), "task {id} has no input files");
        assert!(flops >= 0.0 && flops.is_finite(), "bad flops: {flops}");
        files.sort_unstable();
        files.dedup();
        TaskSpec { id, files, flops }
    }

    /// The input files, sorted and duplicate-free. `|t|` in the paper's
    /// notation is `self.files().len()`.
    #[must_use]
    pub fn files(&self) -> &[FileId] {
        &self.files
    }

    /// Number of input files (`|t|`).
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// A Bag-of-Tasks job: independent tasks over a universe of equally-sized
/// files (the paper's system-model assumption 8; "the number of bytes is
/// what matters").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    tasks: Vec<TaskSpec>,
    num_files: u32,
    /// Size of every file, in bytes (default experiments: 25 MB).
    pub file_size_bytes: f64,
    /// Human-readable provenance (generator + parameters).
    pub label: String,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any task references a file `>= num_files`, tasks are empty,
    /// task ids are not dense `0..n`, or `file_size_bytes` is not positive.
    #[must_use]
    pub fn new(
        tasks: Vec<TaskSpec>,
        num_files: u32,
        file_size_bytes: f64,
        label: impl Into<String>,
    ) -> Self {
        assert!(!tasks.is_empty(), "workload has no tasks");
        assert!(
            file_size_bytes > 0.0 && file_size_bytes.is_finite(),
            "bad file size"
        );
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id.index(), i, "task ids must be dense 0..n");
            for f in t.files() {
                assert!(f.0 < num_files, "task {} references unknown file {f}", t.id);
            }
        }
        Workload {
            tasks,
            num_files,
            file_size_bytes,
            label: label.into(),
        }
    }

    /// All tasks, indexed by [`TaskId::index`].
    #[must_use]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Looks up a task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.index()]
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of distinct files in the universe.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.num_files as usize
    }

    /// Truncates to the first `n` tasks (the paper uses "only the first
    /// 6,000 tasks of Coadd"), dropping files no surviving task references
    /// and re-densifying file ids.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the task count.
    #[must_use]
    pub fn take_prefix(&self, n: usize) -> Workload {
        assert!(n > 0 && n <= self.tasks.len(), "bad prefix length {n}");
        let mut used = vec![false; self.num_files as usize];
        for t in &self.tasks[..n] {
            for f in t.files() {
                used[f.index()] = true;
            }
        }
        let mut remap = vec![u32::MAX; self.num_files as usize];
        let mut next = 0u32;
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = next;
                next += 1;
            }
        }
        let tasks = self.tasks[..n]
            .iter()
            .map(|t| {
                TaskSpec::new(
                    t.id,
                    t.files().iter().map(|f| FileId(remap[f.index()])).collect(),
                    t.flops,
                )
            })
            .collect();
        Workload::new(
            tasks,
            next,
            self.file_size_bytes,
            format!("{} (first {n} tasks)", self.label),
        )
    }

    /// Computes summary statistics (Table 2 / Figure 3 of the paper).
    #[must_use]
    pub fn stats(&self) -> crate::stats::WorkloadStats {
        crate::stats::WorkloadStats::compute(self)
    }

    /// Per-file reference counts: `counts[f]` = number of tasks reading
    /// file `f`.
    #[must_use]
    pub fn reference_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_files as usize];
        for t in &self.tasks {
            for f in t.files() {
                counts[f.index()] += 1;
            }
        }
        counts
    }

    /// Total bytes a cold site would need to fetch to run every task once
    /// with a perfectly warm cache afterwards (i.e. `file_count ×
    /// file_size`).
    #[must_use]
    pub fn total_file_bytes(&self) -> f64 {
        self.num_files as f64 * self.file_size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload::new(
            vec![
                TaskSpec::new(TaskId(0), vec![FileId(0), FileId(1)], 1e9),
                TaskSpec::new(TaskId(1), vec![FileId(1), FileId(2)], 2e9),
            ],
            3,
            25e6,
            "tiny",
        )
    }

    #[test]
    fn task_normalises_files() {
        let t = TaskSpec::new(TaskId(0), vec![FileId(3), FileId(1), FileId(3)], 0.0);
        assert_eq!(t.files(), &[FileId(1), FileId(3)]);
        assert_eq!(t.file_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no input files")]
    fn empty_task_panics() {
        let _ = TaskSpec::new(TaskId(0), vec![], 1.0);
    }

    #[test]
    fn workload_accessors() {
        let wl = tiny();
        assert_eq!(wl.task_count(), 2);
        assert_eq!(wl.file_count(), 3);
        assert_eq!(wl.task(TaskId(1)).file_count(), 2);
        assert_eq!(wl.reference_counts(), vec![1, 2, 1]);
        assert_eq!(wl.total_file_bytes(), 75e6);
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn out_of_range_file_panics() {
        let _ = Workload::new(
            vec![TaskSpec::new(TaskId(0), vec![FileId(5)], 1.0)],
            3,
            1.0,
            "bad",
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let _ = Workload::new(
            vec![TaskSpec::new(TaskId(7), vec![FileId(0)], 1.0)],
            1,
            1.0,
            "bad",
        );
    }

    #[test]
    fn prefix_remaps_files_densely() {
        let wl = tiny();
        let p = wl.take_prefix(1);
        assert_eq!(p.task_count(), 1);
        assert_eq!(p.file_count(), 2); // file 2 dropped
        assert_eq!(p.task(TaskId(0)).files(), &[FileId(0), FileId(1)]);
    }

    #[test]
    fn prefix_full_length_is_identity_shape() {
        let wl = tiny();
        let p = wl.take_prefix(2);
        assert_eq!(p.task_count(), 2);
        assert_eq!(p.file_count(), 3);
    }
}
