//! # gridsched-checkpoint — checkpoint/restart for the grid simulator
//!
//! PR 1's fault subsystem made the grid churn; a crashed worker's task was
//! handed back to the scheduler with its progress zeroed, so storage
//! affinity (which pre-assigns everything) lost the most work to
//! re-execution. This crate supplies the *checkpoint model* the simulator
//! threads through the stack:
//!
//! * [`CheckpointPolicy`] — when to checkpoint: never, every fixed
//!   `--checkpoint-interval` seconds, or at the adaptive Young/Daly
//!   optimum `sqrt(2 · MTBF · C)` derived from the fault model;
//! * [`CheckpointConfig`] — the knobs of one run's checkpoint environment
//!   (policy + image size);
//! * [`ImageTracker`] — which site's data server holds each task's latest
//!   image (the per-site byte/loss accounting lives in
//!   `gridsched_storage::ImageVault`).
//!
//! The engine writes images to the worker's site data server with real
//! transfer cost through the flow-level network, and the images die with
//! that server: a data-server outage loses every image it held, so a task
//! whose only checkpoint sat on the failed server restarts from scratch.
//!
//! An inert config ([`CheckpointPolicy::None`]) must leave the simulation
//! byte-identical to the PR 1 churn engine; `tests/checkpoint_restart.rs`
//! property-tests this.
//!
//! ## Example
//!
//! ```
//! use gridsched_checkpoint::{CheckpointConfig, CheckpointPolicy};
//!
//! let ckpt = CheckpointConfig::fixed(600.0);
//! assert!(!ckpt.is_inert());
//! assert_eq!(ckpt.interval_s(None, 2.0), Some(600.0));
//!
//! // Young/Daly: sqrt(2 * MTBF * C) with C the estimated write cost.
//! let yd = CheckpointConfig::young_daly();
//! let t = yd.interval_s(Some(3600.0), 2.0).unwrap();
//! assert!((t - (2.0 * 3600.0 * 2.0f64).sqrt()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use gridsched_workload::TaskId;

/// When a running task checkpoints its progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Never checkpoint (the PR 1 engine, byte for byte).
    None,
    /// Checkpoint every `interval_s` seconds of compute.
    Fixed {
        /// Seconds of compute between consecutive checkpoints.
        interval_s: f64,
    },
    /// The Young/Daly first-order optimum: checkpoint every
    /// `sqrt(2 · MTBF · C)` seconds, where `C` is the estimated cost of
    /// writing one image (derived per site from its access-link bandwidth)
    /// and MTBF comes from the fault model's worker churn process.
    YoungDaly,
    /// Self-tuning Young/Daly: same formula, but the MTBF is *estimated
    /// online* from the observed per-site failure interarrival process by
    /// the control plane (`gridsched_core::control`) — no declared MTBF
    /// needed, so it also works under fault traces and correlated bursts
    /// whose effective MTBF the declared figure misses. Until the first
    /// failures are observed the interval is unbounded (no checkpoints: a
    /// grid that has never failed has nothing to protect against yet).
    YoungDalyAdaptive,
}

/// The checkpoint environment of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// When to checkpoint.
    pub policy: CheckpointPolicy,
    /// Size of one checkpoint image in bytes (written to — and restored
    /// from — a site data server over the flow-level network).
    pub size_bytes: f64,
}

/// Default checkpoint image size: 25 MB, one paper-sized file.
pub const DEFAULT_IMAGE_BYTES: f64 = 25e6;

impl CheckpointConfig {
    /// A configuration that never checkpoints (inert).
    #[must_use]
    pub fn none() -> Self {
        CheckpointConfig {
            policy: CheckpointPolicy::None,
            size_bytes: DEFAULT_IMAGE_BYTES,
        }
    }

    /// Fixed-interval checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not strictly positive and finite.
    #[must_use]
    pub fn fixed(interval_s: f64) -> Self {
        assert!(
            interval_s > 0.0 && interval_s.is_finite(),
            "checkpoint interval must be positive"
        );
        CheckpointConfig {
            policy: CheckpointPolicy::Fixed { interval_s },
            size_bytes: DEFAULT_IMAGE_BYTES,
        }
    }

    /// Young/Daly adaptive checkpointing (requires a worker MTBF in the
    /// fault model).
    #[must_use]
    pub fn young_daly() -> Self {
        CheckpointConfig {
            policy: CheckpointPolicy::YoungDaly,
            size_bytes: DEFAULT_IMAGE_BYTES,
        }
    }

    /// Self-tuning Young/Daly checkpointing: the MTBF is estimated online
    /// by the control plane instead of declared, so no fault-model MTBF is
    /// required. The engine requires the adaptive-checkpoint control loop
    /// to be enabled alongside this policy (otherwise nothing would ever
    /// set an interval).
    #[must_use]
    pub fn young_daly_adaptive() -> Self {
        CheckpointConfig {
            policy: CheckpointPolicy::YoungDalyAdaptive,
            size_bytes: DEFAULT_IMAGE_BYTES,
        }
    }

    /// Overrides the checkpoint image size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not strictly positive and finite.
    #[must_use]
    pub fn with_size_bytes(mut self, bytes: f64) -> Self {
        assert!(
            bytes > 0.0 && bytes.is_finite(),
            "checkpoint image size must be positive"
        );
        self.size_bytes = bytes;
        self
    }

    /// Whether this configuration never checkpoints. An inert config must
    /// leave the simulation bit-identical to running without any
    /// checkpoint config.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        matches!(self.policy, CheckpointPolicy::None)
    }

    /// The checkpoint interval in seconds for a site whose estimated image
    /// write cost is `write_cost_s`, or `None` when the policy is
    /// [`CheckpointPolicy::None`].
    ///
    /// # Panics
    ///
    /// Panics if the policy is Young/Daly and `worker_mtbf_s` is `None` —
    /// the adaptive interval is derived from the fault model, so it needs
    /// one (CLI validation rejects this combination up front).
    #[must_use]
    pub fn interval_s(&self, worker_mtbf_s: Option<f64>, write_cost_s: f64) -> Option<f64> {
        match self.policy {
            CheckpointPolicy::None => None,
            CheckpointPolicy::Fixed { interval_s } => Some(interval_s),
            CheckpointPolicy::YoungDaly => {
                let mtbf = worker_mtbf_s
                    .expect("young-daly checkpointing needs a worker MTBF (fault model)");
                Some(young_daly_interval(mtbf, write_cost_s))
            }
            // Bootstrap: unbounded until the control plane has observed
            // failures and re-derives the interval at tick time. The
            // declared MTBF, even if present, is deliberately not peeked.
            CheckpointPolicy::YoungDalyAdaptive => Some(f64::INFINITY),
        }
    }

    /// One-line human summary (embedded in report config summaries).
    #[must_use]
    pub fn summary(&self) -> String {
        match self.policy {
            CheckpointPolicy::None => "none".to_string(),
            CheckpointPolicy::Fixed { interval_s } => {
                format!(
                    "fixed interval={interval_s:.0}s image={:.0}MB",
                    self.size_bytes / 1e6
                )
            }
            CheckpointPolicy::YoungDaly => {
                format!("young-daly image={:.0}MB", self.size_bytes / 1e6)
            }
            CheckpointPolicy::YoungDalyAdaptive => {
                format!("young-daly-adaptive image={:.0}MB", self.size_bytes / 1e6)
            }
        }
    }
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig::none()
    }
}

/// The Young/Daly first-order optimal checkpoint interval
/// `sqrt(2 · MTBF · C)` (seconds).
///
/// # Panics
///
/// Panics if either argument is not strictly positive and finite.
#[must_use]
pub fn young_daly_interval(mtbf_s: f64, write_cost_s: f64) -> f64 {
    assert!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive");
    assert!(
        write_cost_s > 0.0 && write_cost_s.is_finite(),
        "checkpoint cost must be positive"
    );
    (2.0 * mtbf_s * write_cost_s).sqrt()
}

/// Which site's data server holds each task's latest checkpoint image.
///
/// Only the newest image of a task is kept (a fresher image supersedes the
/// old one wherever it lived), and images only ever *improve*: a
/// lower-progress image — e.g. from a storage-affinity replica lagging
/// behind the primary — never replaces a higher-progress one.
#[derive(Debug, Clone, Default)]
pub struct ImageTracker {
    latest: HashMap<TaskId, usize>,
}

impl ImageTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        ImageTracker::default()
    }

    /// The site holding `task`'s latest image, if any.
    #[must_use]
    pub fn site_of(&self, task: TaskId) -> Option<usize> {
        self.latest.get(&task).copied()
    }

    /// Records that `task`'s latest image now lives at `site`, returning
    /// the site of the superseded image if it lived elsewhere (the caller
    /// drops it from that site's vault).
    pub fn record(&mut self, task: TaskId, site: usize) -> Option<usize> {
        match self.latest.insert(task, site) {
            Some(old) if old != site => Some(old),
            _ => None,
        }
    }

    /// Forgets `task`'s image (task completed or image dropped).
    pub fn forget(&mut self, task: TaskId) {
        self.latest.remove(&task);
    }

    /// Drops every image held at `site` (its data server failed),
    /// returning the orphaned tasks.
    pub fn drop_site(&mut self, site: usize) -> Vec<TaskId> {
        let mut lost: Vec<TaskId> = self
            .latest
            .iter()
            .filter(|(_, &s)| s == site)
            .map(|(&t, _)| t)
            .collect();
        lost.sort_unstable_by_key(|t| t.index());
        for t in &lost {
            self.latest.remove(t);
        }
        lost
    }

    /// Number of tracked images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether no images are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        assert!(CheckpointConfig::none().is_inert());
        assert!(CheckpointConfig::default().is_inert());
        assert_eq!(CheckpointConfig::none().summary(), "none");
        assert_eq!(CheckpointConfig::none().interval_s(Some(1000.0), 1.0), None);
    }

    #[test]
    fn fixed_interval_ignores_fault_model() {
        let c = CheckpointConfig::fixed(450.0);
        assert!(!c.is_inert());
        assert_eq!(c.interval_s(None, 99.0), Some(450.0));
        assert!(c.summary().contains("interval=450s"));
    }

    #[test]
    fn young_daly_matches_formula() {
        let c = CheckpointConfig::young_daly().with_size_bytes(50e6);
        let t = c.interval_s(Some(7200.0), 4.0).unwrap();
        assert!((t - (2.0f64 * 7200.0 * 4.0).sqrt()).abs() < 1e-9);
        assert!(c.summary().contains("young-daly image=50MB"));
    }

    #[test]
    #[should_panic(expected = "needs a worker MTBF")]
    fn young_daly_without_mtbf_panics() {
        let _ = CheckpointConfig::young_daly().interval_s(None, 1.0);
    }

    #[test]
    fn adaptive_young_daly_bootstraps_unbounded_without_mtbf() {
        let c = CheckpointConfig::young_daly_adaptive();
        assert!(!c.is_inert());
        // No MTBF needed — and even a declared one is not peeked.
        assert_eq!(c.interval_s(None, 2.0), Some(f64::INFINITY));
        assert_eq!(c.interval_s(Some(3600.0), 2.0), Some(f64::INFINITY));
        assert!(c.summary().contains("young-daly-adaptive image=25MB"));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = CheckpointConfig::fixed(0.0);
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        let _ = CheckpointConfig::fixed(10.0).with_size_bytes(0.0);
    }

    #[test]
    fn tracker_supersedes_and_drops() {
        let mut tr = ImageTracker::new();
        assert!(tr.is_empty());
        assert_eq!(tr.record(TaskId(1), 0), None);
        // Re-recording at the same site is not a supersession elsewhere.
        assert_eq!(tr.record(TaskId(1), 0), None);
        // Moving to a new site reports the old site for vault cleanup.
        assert_eq!(tr.record(TaskId(1), 2), Some(0));
        assert_eq!(tr.site_of(TaskId(1)), Some(2));

        tr.record(TaskId(2), 2);
        tr.record(TaskId(3), 1);
        let lost = tr.drop_site(2);
        assert_eq!(lost, vec![TaskId(1), TaskId(2)]);
        assert_eq!(tr.site_of(TaskId(1)), None);
        assert_eq!(tr.site_of(TaskId(3)), Some(1));
        assert_eq!(tr.len(), 1);

        tr.forget(TaskId(3));
        assert!(tr.is_empty());
    }
}
