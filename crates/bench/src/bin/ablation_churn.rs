//! Ablation — graceful degradation under churn.
//!
//! A new experiment axis the paper could not explore: how do the six
//! compared algorithms degrade when the grid churns? Sweeps worker MTBF
//! from "no faults" down to aggressive churn (with MTTR fixed at MTBF/6)
//! plus a data-server churn level, and reports makespan inflation,
//! re-execution volume, wasted compute and availability per strategy.
//!
//! The interesting question is *relative* degradation: task-centric
//! storage affinity pre-assigns everything and must re-absorb orphaned
//! work through its replication channel, while worker-centric strategies
//! requeue and reschedule at the next idle request — late binding should
//! degrade more gracefully.

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::{FaultConfig, SimConfig};

/// Worker MTBF levels swept (seconds); `None` is the fault-free baseline.
const MTBF_LEVELS: [Option<f64>; 4] = [None, Some(86_400.0), Some(21_600.0), Some(7_200.0)];

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let mut table = Table::new(
        "Ablation: churn sweep (worker MTBF, MTTR = MTBF/6; server MTBF = 4x worker)",
        &[
            "algorithm",
            "mtbf_s",
            "makespan_min",
            "slowdown",
            "tasks_lost",
            "re_exec",
            "wasted_h",
            "worker_avail",
            "server_avail",
        ],
    );

    let mut baseline = Vec::new();
    let mut worst = Vec::new();
    for strategy in paper_strategies() {
        for mtbf in MTBF_LEVELS {
            let mut config = SimConfig::paper(workload.clone(), strategy);
            if let Some(mtbf_s) = mtbf {
                config = config.with_faults(
                    FaultConfig::none()
                        .with_worker_faults(mtbf_s, mtbf_s / 6.0)
                        .with_server_faults(4.0 * mtbf_s, mtbf_s / 6.0),
                );
            }
            let r = run(&cli, &config);
            let base = baseline
                .iter()
                .find(|(s, _)| *s == strategy)
                .map(|(_, m): &(StrategyKind, f64)| *m);
            let slowdown = base.map_or(1.0, |b| r.makespan_minutes / b);
            table.push_row(vec![
                strategy.to_string(),
                mtbf.map_or_else(|| "inf".to_string(), |m| fmt(m, 0)),
                fmt(r.makespan_minutes, 0),
                fmt(slowdown, 3),
                r.tasks_lost.to_string(),
                r.re_executions.to_string(),
                fmt(r.wasted_compute_s / 3600.0, 1),
                fmt(r.mean_worker_availability(), 4),
                fmt(r.mean_server_availability(), 4),
            ]);
            match mtbf {
                None => {
                    assert_eq!(r.tasks_lost, 0, "fault-free baseline must not lose tasks");
                    baseline.push((strategy, r.makespan_minutes));
                }
                Some(mtbf_s) if mtbf_s < 10_000.0 => worst.push((strategy, r)),
                Some(_) => {}
            }
        }
    }
    table.emit(&cli, "ablation_churn");

    let tasks = workload.task_count() as u64;
    check(
        &cli,
        "every strategy completes the whole job at the highest churn level",
        worst.iter().all(|(_, r)| r.tasks_completed == tasks),
    );
    check(
        &cli,
        "aggressive churn actually injects faults (crashes and lost tasks)",
        worst
            .iter()
            .all(|(_, r)| r.worker_crashes > 0 && r.tasks_lost > 0),
    );
    check(
        &cli,
        "re-execution accounting consistent (re_exec >= tasks_lost)",
        worst.iter().all(|(_, r)| r.re_executions >= r.tasks_lost),
    );
    check(
        &cli,
        "churn shows up in availability (< 100% workers up)",
        worst
            .iter()
            .all(|(_, r)| r.mean_worker_availability() < 1.0),
    );
}
