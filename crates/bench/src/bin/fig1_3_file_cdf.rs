//! Figures 1 and 3 — Coadd file-access CDF.
//!
//! Figure 1: full Coadd (44,000 tasks); Figure 3: the scaled 6,000-task
//! workload. The y value at `x = k` is the percentage of files referenced
//! by **at least** `k` tasks (decreasing x-axis in the paper). The paper's
//! headline readings: Fig. 1 — "roughly 90% of files are accessed by 6 or
//! more tasks"; Fig. 3 — "roughly 85%".

use gridsched_bench::{check, fmt, Cli, Table};
use gridsched_workload::coadd::CoaddConfig;

fn cdf_table(cli: &Cli, name: &str, title: &str, cfg: &CoaddConfig) -> f64 {
    let wl = cfg.generate();
    let stats = wl.stats();
    let mut table = Table::new(title, &["min_references", "pct_files"]);
    for (k, pct) in stats.reference_cdf() {
        table.push_row(vec![k.to_string(), fmt(pct, 2)]);
    }
    table.emit(cli, name);
    stats.pct_files_with_at_least(6)
}

fn main() {
    let cli = Cli::parse();

    let mut full = CoaddConfig::paper_full();
    if cli.quick {
        // Scale the full workload down proportionally under --quick.
        full.tasks = 11_000;
    }
    let pct6_full = cdf_table(
        &cli,
        "fig1_file_cdf_full",
        "Figure 1: file access CDF, full Coadd",
        &full,
    );

    let mut scaled = CoaddConfig::paper_6000();
    if cli.quick {
        scaled.tasks = 1500;
    }
    let pct6_scaled = cdf_table(
        &cli,
        "fig3_file_cdf_6000",
        "Figure 3: file access CDF, scaled Coadd",
        &scaled,
    );

    println!();
    println!("paper Fig.1: ~90% of files accessed by >=6 tasks; measured {pct6_full:.1}%");
    println!("paper Fig.3: ~85% of files accessed by >=6 tasks; measured {pct6_scaled:.1}%");
    check(
        &cli,
        "Fig.1: most files (75-97%) referenced by >=6 tasks",
        (75.0..=97.0).contains(&pct6_full),
    );
    check(
        &cli,
        "Fig.3: most files (75-97%) referenced by >=6 tasks",
        (75.0..=97.0).contains(&pct6_scaled),
    );
}
