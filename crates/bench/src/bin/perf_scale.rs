//! `perf_scale` — the hot-path scaling baseline.
//!
//! Sweeps the worker count across decades (10² → 10⁵ by default) over the
//! paper's six algorithms with the production `incremental` scheduler
//! path, measuring **wall time** and **simulation events per second**, and
//! additionally runs the paper-complexity `naive` path at a comparison
//! point to quantify the speed-up of the incremental indexes.
//!
//! Two further sections target the known large-grid pathologies:
//!
//! * a **throttled storage-affinity** run at every sweep point
//!   (`--replica-cap`/`--site-replica-budget` semantics; cap 4, site
//!   budget 256 — chosen so the 10²–10³ makespans stay within the
//!   seed-to-seed noise of uncapped) — the replica-storm mitigation whose
//!   10⁵-worker tail this file regresses against;
//! * a **sites × workers sweep** at a fixed worker count (S ∈ 5…160),
//!   exposing any `O(S)` per-decision term (sufferage best-two refresh,
//!   per-site rank maintenance) that the fixed-10-sites sweep cannot see —
//!   since the sparse-propagation work landed, wall time must stay ~flat
//!   in S, and `--check` rejects super-linear growth.
//!
//! Configurations the worker sweep already measured are **not re-run** for
//! the sites sweep (the S = 10 points reuse the worker-sweep rows), and
//! `--check` rejects duplicate `(workers, sites, strategy, mode,
//! throttle)` keys in the emitted JSON.
//!
//! Results go to `BENCH_scale.json` (machine-readable, one file every
//! future PR can regress against) and to stdout as a table.
//!
//! ```text
//! perf_scale [--smoke] [--check] [--out FILE] [--max-workers N] [--seed N]
//! ```
//!
//! * `--smoke` — tiny sweep (10²/4·10² workers) for CI;
//! * `--check` — exit non-zero unless every run completed, the incremental
//!   path is ≥ 5× faster than naive at the comparison point, (at the
//!   full 10⁵ scale) the throttled storage-affinity run dispatches ≤ 1/10
//!   of the uncapped run's events, no duplicate run key was emitted, no
//!   sites-sweep strategy shows super-linear wall-time growth in S, the
//!   traced re-run dispatches bit-identical events (telemetry inertness),
//!   repeat runs fold byte-identical windowed event digests (dispatch
//!   *order* determinism, not just the count),
//!   the instrumented complexity sweep confirms repairs-per-pick stays
//!   flat in S and solver touched-flows track concurrency, and the total
//!   disabled-telemetry wall time stays within budget of the previous
//!   `BENCH_scale.json` (3% full, 1.5× smoke — CI runners are noisy);
//! * `--max-workers N` — truncate the sweep (e.g. `--max-workers 10000`);
//! * `--out FILE` — where to write the JSON (default `BENCH_scale.json`).
//!
//! The workload scales with the grid: `tasks = 2 × workers` over a
//! thinned Coadd strip (≈12 files/task) so the sweep stays scheduler- and
//! transfer-bound instead of drowning in per-task flow events, and the
//! storage capacity covers the file universe (cache-churn costs are
//! covered by `fig4_capacity` / the eviction tests).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gridsched_bench::Table;
use gridsched_core::{EvalMode, ReplicaThrottle, StrategyKind};
use gridsched_sim::telemetry::InstrumentValue;
use gridsched_sim::{GridSim, SimConfig, Telemetry};
use gridsched_workload::coadd::CoaddConfig;
use gridsched_workload::Workload;

const SITES: usize = 10;
/// The throttled storage-affinity configuration the bench tracks.
const THROTTLE_CAP: u32 = 4;
const THROTTLE_SITE_BUDGET: u32 = 256;

fn bench_throttle() -> ReplicaThrottle {
    ReplicaThrottle::none()
        .with_replica_cap(THROTTLE_CAP)
        .with_site_budget(THROTTLE_SITE_BUDGET)
}

struct Run {
    workers: usize,
    sites: usize,
    strategy: StrategyKind,
    mode: EvalMode,
    /// Replica-throttle label (`"none"` for unthrottled runs).
    throttle: String,
    tasks: usize,
    wall_s: f64,
    events: u64,
    events_per_s: f64,
    makespan_min: f64,
    completed: u64,
}

struct Args {
    smoke: bool,
    check: bool,
    out: PathBuf,
    max_workers: Option<usize>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        out: PathBuf::from("BENCH_scale.json"),
        max_workers: None,
        seed: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--out" => {
                args.out = PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")))
            }
            "--max-workers" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--max-workers needs a number"));
                args.max_workers = Some(v.parse().unwrap_or_else(|_| usage("bad --max-workers")));
            }
            "--seed" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--seed needs a number"));
                args.seed = v.parse().unwrap_or_else(|_| usage("bad --seed"));
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: perf_scale [--smoke] [--check] [--out FILE] \
         [--max-workers N] [--seed N]"
    );
    std::process::exit(2);
}

/// A thinned Coadd strip: same spatial-sharing structure, ~12 files/task.
fn scale_workload(tasks: u32, seed: u64) -> Arc<Workload> {
    let mut cfg = CoaddConfig::paper_6000();
    cfg.tasks = tasks;
    cfg.seed = seed;
    cfg.window_min = 4;
    cfg.window_max = 8;
    cfg.layers_mean = 3.0;
    cfg.layers_std = 0.5;
    cfg.layers_min = 2;
    cfg.layers_max = 4;
    Arc::new(cfg.generate())
}

fn build_config(
    workload: &Arc<Workload>,
    workers: usize,
    sites: usize,
    strategy: StrategyKind,
    mode: EvalMode,
    throttle: Option<ReplicaThrottle>,
    seed: u64,
) -> SimConfig {
    let mut config = SimConfig::paper(Arc::clone(workload), strategy);
    // The paper topology has 9 MANs × 10 sites; the top of the sites sweep
    // (S = 160) needs a wider grid. Widening changes the generated link
    // draws, so it is applied only where unavoidable — every S ≤ 90 row
    // keeps the paper topology and stays bit-comparable across PRs.
    if sites > config.topology.site_count() {
        config.topology.sites_per_man = sites.div_ceil(config.topology.mans);
    }
    let mut config = config
        .with_sites(sites)
        .with_workers_per_site((workers / sites).max(1))
        .with_capacity(workload.file_count().max(1))
        .with_seed(seed)
        .with_eval_mode(mode);
    if let Some(throttle) = throttle {
        config = config.with_replica_throttle(throttle);
    }
    config
}

fn run_once(
    workload: &Arc<Workload>,
    workers: usize,
    sites: usize,
    strategy: StrategyKind,
    mode: EvalMode,
    throttle: Option<ReplicaThrottle>,
    seed: u64,
) -> Run {
    let config = build_config(workload, workers, sites, strategy, mode, throttle, seed);
    let started = Instant::now();
    let report = GridSim::new(config).run();
    let wall_s = started.elapsed().as_secs_f64();
    Run {
        workers,
        sites,
        strategy,
        mode,
        throttle: throttle.map_or_else(|| "none".to_string(), |t| t.summary()),
        tasks: workload.task_count(),
        wall_s,
        events: report.events_dispatched,
        events_per_s: report.events_dispatched as f64 / wall_s.max(1e-9),
        makespan_min: report.makespan_minutes,
        completed: report.tasks_completed,
    }
}

fn main() {
    let args = parse_args();
    let sweep: Vec<usize> = if args.smoke {
        vec![100, 400]
    } else {
        vec![100, 1_000, 10_000, 100_000]
    }
    .into_iter()
    .filter(|&w| args.max_workers.is_none_or(|m| w <= m))
    .collect();
    if sweep.is_empty() {
        usage("--max-workers filtered out every sweep point");
    }
    // The naive-vs-incremental comparison point: the largest sweep scale at
    // which the O(T·I)-per-decision path is still tolerable to run.
    let compare_at = if args.smoke {
        *sweep.last().expect("non-empty")
    } else {
        *sweep
            .iter()
            .filter(|&&w| w <= 10_000)
            .max()
            .expect("non-empty")
    };
    // The sites × workers sweep: fixed worker count, varying site count.
    let (sites_sweep_workers, sites_sweep): (usize, Vec<usize>) = if args.smoke {
        (400, vec![2, 5, 10])
    } else {
        (10_000, vec![5, 10, 20, 40, 80, 160])
    };
    let sites_sweep_workers = args
        .max_workers
        .map_or(sites_sweep_workers, |m| sites_sweep_workers.min(m));

    let mut runs: Vec<Run> = Vec::new();
    let mut table = Table::new(
        "perf_scale: wall time per full simulation (incremental path)",
        &[
            "workers",
            "sites",
            "tasks",
            "algorithm",
            "mode",
            "throttle",
            "wall_s",
            "events",
            "events/s",
        ],
    );
    for &workers in &sweep {
        let workload = scale_workload((workers * 2).max(200) as u32, args.seed);
        for strategy in StrategyKind::PAPER_SET {
            let run = run_once(
                &workload,
                workers,
                SITES,
                strategy,
                EvalMode::Incremental,
                None,
                args.seed,
            );
            eprintln!(
                "  {:>6} workers  {:<16} {:>8.2}s  {:>10} events",
                workers,
                strategy.to_string(),
                run.wall_s,
                run.events
            );
            push_row(&mut table, &run);
            runs.push(run);
        }
        // The replica-throttle variant of storage affinity at every scale:
        // the small grids prove the cap stays within noise of uncapped,
        // the large ones show the storm tail cut.
        let run = run_once(
            &workload,
            workers,
            SITES,
            StrategyKind::StorageAffinity,
            EvalMode::Incremental,
            Some(bench_throttle()),
            args.seed,
        );
        eprintln!(
            "  {:>6} workers  {:<16} {:>8.2}s  {:>10} events  (throttled {})",
            workers, "storage-affinity", run.wall_s, run.events, run.throttle
        );
        push_row(&mut table, &run);
        runs.push(run);
        // The comparison runs ride on the same workload instance.
        if workers == compare_at {
            for strategy in [StrategyKind::Rest, StrategyKind::Combined2] {
                let run = run_once(
                    &workload,
                    workers,
                    SITES,
                    strategy,
                    EvalMode::Naive,
                    None,
                    args.seed,
                );
                eprintln!(
                    "  {:>6} workers  {:<16} {:>8.2}s  (naive path)",
                    workers,
                    strategy.to_string(),
                    run.wall_s
                );
                push_row(&mut table, &run);
                runs.push(run);
            }
        }
    }

    // Sites × workers: the per-decision cost used to carry O(S) terms
    // (sufferage best-two refresh, per-site rank membership broadcasts)
    // that a fixed site count cannot expose; the sparse-propagation path
    // must keep wall time ~flat here. Storage affinity runs throttled —
    // the point is the O(S) scaling, not yet another storm measurement.
    // Configurations the worker sweep already measured (the S = 10 points)
    // reuse that measurement instead of re-running: the sweep reader joins
    // on the (workers, sites, strategy, mode, throttle) key, which `--check`
    // keeps unique.
    let sites_workload = scale_workload((sites_sweep_workers * 2).max(200) as u32, args.seed);
    for &sites in &sites_sweep {
        for (strategy, throttle) in [
            (StrategyKind::StorageAffinity, Some(bench_throttle())),
            (StrategyKind::Combined2, None),
            (StrategyKind::Sufferage, None),
        ] {
            let throttle_label =
                throttle.map_or_else(|| "none".to_string(), |t: ReplicaThrottle| t.summary());
            if runs.iter().any(|r| {
                run_key(r)
                    == (
                        sites_sweep_workers,
                        sites,
                        strategy,
                        EvalMode::Incremental,
                        throttle_label.clone(),
                    )
            }) {
                eprintln!(
                    "  {:>6} workers  {:<16} (reusing worker-sweep row, {} sites)",
                    sites_sweep_workers,
                    strategy.to_string(),
                    sites
                );
                continue;
            }
            let run = run_once(
                &sites_workload,
                sites_sweep_workers,
                sites,
                strategy,
                EvalMode::Incremental,
                throttle,
                args.seed,
            );
            eprintln!(
                "  {:>6} workers  {:<16} {:>8.2}s  {:>10} events  ({} sites)",
                sites_sweep_workers,
                strategy.to_string(),
                run.wall_s,
                run.events,
                sites
            );
            push_row(&mut table, &run);
            runs.push(run);
        }
    }
    print!("{}", table.render());

    // Speed-ups at the comparison point.
    let mut speedups: Vec<(StrategyKind, f64, f64, f64)> = Vec::new();
    for strategy in [StrategyKind::Rest, StrategyKind::Combined2] {
        let wall = |mode: EvalMode| {
            runs.iter()
                .find(|r| {
                    r.workers == compare_at
                        && r.sites == SITES
                        && r.strategy == strategy
                        && r.mode == mode
                        && r.throttle == "none"
                })
                .map(|r| r.wall_s)
        };
        if let (Some(naive), Some(inc)) = (wall(EvalMode::Naive), wall(EvalMode::Incremental)) {
            let speedup = naive / inc.max(1e-9);
            println!(
                "speedup @ {compare_at} workers ({strategy}): naive {naive:.2}s / \
                 incremental {inc:.2}s = {speedup:.1}x"
            );
            speedups.push((strategy, naive, inc, speedup));
        }
    }

    // Storm mitigation at the largest scale where both variants ran.
    let storm = runs
        .iter()
        .filter(|r| {
            r.strategy == StrategyKind::StorageAffinity && r.sites == SITES && r.throttle == "none"
        })
        .map(|r| r.workers)
        .max()
        .and_then(|w| {
            let events = |throttled: bool| {
                runs.iter()
                    .find(|r| {
                        r.workers == w
                            && r.sites == SITES
                            && r.strategy == StrategyKind::StorageAffinity
                            && (r.throttle != "none") == throttled
                    })
                    .map(|r| (r.events, r.wall_s, r.makespan_min))
            };
            Some((w, events(false)?, events(true)?))
        });
    if let Some((w, (ue, uw, um), (te, tw, tm))) = storm {
        println!(
            "replica throttle @ {w} workers: events {ue} -> {te} ({:.1}x), wall \
             {uw:.2}s -> {tw:.2}s, makespan {um:.0} -> {tm:.0} min",
            ue as f64 / te.max(1) as f64
        );
    }

    // ── Instrumented complexity sweep ───────────────────────────────────
    // Re-runs combined2 at every site count with telemetry live and reads
    // the hot-path instruments back. Instrument values count *decisions*,
    // not time, so they are bit-deterministic for a given seed and `--check`
    // can assert the complexity claims exactly, immune to machine noise:
    //
    //   * ranked picks repair O(1) stale entries per pick, independent of
    //     S (the sparse-propagation claim from the per-site update work);
    //   * the max–min solver visits exactly the concurrent flows per
    //     recompute, so its per-recompute maximum dominates the sampled
    //     in-flight peak — work tracks concurrency, not flow history.
    //
    // The worker count is modest: the claims are about per-decision ratios,
    // which do not need the 10⁴-worker timing scale.
    let complexity_workers = if args.smoke { 400 } else { 2_000 };
    let complexity_workload = scale_workload((complexity_workers * 2).max(200) as u32, args.seed);
    let mut complexity: Vec<ComplexityPoint> = Vec::new();
    for &sites in &sites_sweep {
        let config = build_config(
            &complexity_workload,
            complexity_workers,
            sites,
            StrategyKind::Combined2,
            EvalMode::Incremental,
            None,
            args.seed,
        )
        .with_probe_interval(600.0);
        let telemetry = Telemetry::enabled();
        let report = GridSim::new(config).with_telemetry(telemetry.clone()).run();
        let mut picks = 0;
        let mut repairs = 0;
        let mut recomputes = 0;
        let mut touched = (0u64, 0u64, 0u64); // (count, sum, max)
        for snap in telemetry.snapshot() {
            match (snap.name, &snap.value) {
                ("scheduler.rank.picks", InstrumentValue::Counter { value }) => picks = *value,
                ("scheduler.rank.repairs", InstrumentValue::Counter { value }) => repairs = *value,
                ("net.solver.recomputes", InstrumentValue::Counter { value }) => {
                    recomputes = *value;
                }
                (
                    "net.solver.touched_flows",
                    InstrumentValue::Histogram {
                        count, sum, max, ..
                    },
                ) => touched = (*count, *sum, *max),
                _ => {}
            }
        }
        let probe_max_flows = telemetry
            .probes()
            .iter()
            .map(|p| p.in_flight_flows)
            .max()
            .unwrap_or(0);
        let point = ComplexityPoint {
            sites,
            events: report.events_dispatched,
            picks,
            repairs,
            recomputes,
            touched_count: touched.0,
            touched_sum: touched.1,
            touched_max: touched.2,
            probe_max_flows,
        };
        eprintln!(
            "  complexity @ {complexity_workers} workers / {sites:>3} sites: \
             {:.3} repairs/pick ({picks} picks), {:.1} touched flows/recompute \
             (max {}, sampled peak {probe_max_flows})",
            point.repairs_per_pick(),
            point.touched_mean(),
            point.touched_max,
        );
        complexity.push(point);
    }

    // ── Telemetry overhead ──────────────────────────────────────────────
    // The worker-sweep rows time the *disabled* path (one branch per
    // instrument site). This section re-runs the naive-comparison config
    // with every instrument, span and probe recording live, so the cost of
    // turning telemetry on is a published number — and `--check` asserts
    // the traced run dispatched bit-identical events (inertness at bench
    // scale, deterministic and noise-free).
    let overhead = {
        let workload = scale_workload((compare_at * 2).max(200) as u32, args.seed);
        let config = build_config(
            &workload,
            compare_at,
            SITES,
            StrategyKind::Combined2,
            EvalMode::Incremental,
            None,
            args.seed,
        )
        .with_probe_interval(600.0);
        let started = Instant::now();
        let report = GridSim::new(config)
            .with_telemetry(Telemetry::enabled())
            .run();
        let traced_wall_s = started.elapsed().as_secs_f64();
        let disabled = runs
            .iter()
            .find(|r| {
                r.workers == compare_at
                    && r.sites == SITES
                    && r.strategy == StrategyKind::Combined2
                    && r.mode == EvalMode::Incremental
                    && r.throttle == "none"
            })
            .expect("the worker sweep always measures combined2 at the comparison point");
        println!(
            "telemetry overhead @ {compare_at} workers (combined2): disabled \
             {:.2}s -> traced {traced_wall_s:.2}s ({:+.1}%)",
            disabled.wall_s,
            (traced_wall_s / disabled.wall_s.max(1e-9) - 1.0) * 100.0
        );
        (
            traced_wall_s,
            disabled.wall_s,
            report.events_dispatched,
            disabled.events,
        )
    };

    // ── Digest determinism witness ──────────────────────────────────────
    // Repeats a modest combined2 run twice with the windowed event-stream
    // digest folding and compares the files byte-for-byte. The traced
    // event-count equality above cannot see a *reordering* that keeps the
    // count; the digest hashes every dispatched event in order, so any
    // nondeterminism in the hot path flips it.
    let digest_identical = {
        let workload = scale_workload(800, args.seed);
        let dir = std::env::temp_dir();
        let paths: Vec<PathBuf> = ["a", "b"]
            .iter()
            .map(|tag| {
                dir.join(format!(
                    "perf-scale-digest-{}-{tag}.jsonl",
                    std::process::id()
                ))
            })
            .collect();
        for p in &paths {
            let config = build_config(
                &workload,
                400,
                SITES,
                StrategyKind::Combined2,
                EvalMode::Incremental,
                None,
                args.seed,
            )
            .with_digest_out(p.to_str().expect("utf-8 temp path"));
            let _ = GridSim::new(config).run();
        }
        let bytes: Vec<Vec<u8>> = paths
            .iter()
            .map(|p| std::fs::read(p).expect("digest file written"))
            .collect();
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
        let identical = bytes[0] == bytes[1];
        println!(
            "digest witness @ 400 workers (combined2): repeat runs {}",
            if identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        identical
    };

    let total_wall_s: f64 = runs.iter().map(|r| r.wall_s).sum();
    // Read the previous baseline *before* overwriting it: the regression
    // guard compares like-for-like (same sweep shape, same seed) totals.
    let baseline = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|s| parse_baseline(&s));

    let json = to_json(
        &runs,
        &speedups,
        &complexity,
        overhead,
        digest_identical,
        total_wall_s,
        &sweep,
        &sites_sweep,
        compare_at,
        &args,
    );
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("error: could not write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());

    if args.check {
        let mut ok = true;
        for r in &runs {
            if r.completed != r.tasks as u64 {
                eprintln!(
                    "CHECK FAIL: {} @ {} workers / {} sites ({}) completed {}/{} tasks",
                    r.strategy, r.workers, r.sites, r.throttle, r.completed, r.tasks
                );
                ok = false;
            }
        }
        // One row per configuration: the sites sweep must reuse the
        // worker-sweep measurements instead of re-running (and re-timing)
        // identical configs.
        let mut seen = std::collections::HashSet::new();
        for r in &runs {
            if !seen.insert(run_key(r)) {
                eprintln!(
                    "CHECK FAIL: duplicate run key {} @ {} workers / {} sites ({}, {})",
                    r.strategy, r.workers, r.sites, r.mode, r.throttle
                );
                ok = false;
            }
        }
        if seen.len() == runs.len() {
            println!("CHECK PASS: all {} run keys unique", runs.len());
        }
        // Sparse per-site propagation: wall time must not grow
        // super-linearly in S at fixed workers (it should be ~flat; the
        // linear bound leaves headroom for fixed per-site costs and timing
        // noise). Sub-50ms anchors are skipped — smoke-scale wall clocks
        // are dominated by noise.
        for (strategy, throttle_is_none) in [
            (StrategyKind::StorageAffinity, false),
            (StrategyKind::Combined2, true),
            (StrategyKind::Sufferage, true),
        ] {
            let mut points: Vec<(usize, f64)> = runs
                .iter()
                .filter(|r| {
                    r.workers == sites_sweep_workers
                        && r.strategy == strategy
                        && r.mode == EvalMode::Incremental
                        && (r.throttle == "none") == throttle_is_none
                        && sites_sweep.contains(&r.sites)
                })
                .map(|r| (r.sites, r.wall_s))
                .collect();
            points.sort_unstable_by_key(|&(s, _)| s);
            let (Some(&(s_lo, w_lo)), Some(&(s_hi, w_hi))) = (points.first(), points.last()) else {
                continue;
            };
            if s_lo == s_hi {
                continue;
            }
            if w_lo < 0.05 {
                println!(
                    "CHECK SKIP: {strategy} sites-growth guard (anchor {w_lo:.3}s too \
                     noisy at {s_lo} sites)"
                );
                continue;
            }
            let ratio = w_hi / w_lo;
            let linear = s_hi as f64 / s_lo as f64;
            if ratio > linear {
                eprintln!(
                    "CHECK FAIL: {strategy} wall time grows super-linearly in sites: \
                     {w_lo:.2}s @ {s_lo} -> {w_hi:.2}s @ {s_hi} ({ratio:.1}x > {linear:.1}x)"
                );
                ok = false;
            } else {
                println!(
                    "CHECK PASS: {strategy} sites growth {ratio:.2}x over {s_lo}->{s_hi} \
                     sites (linear bound {linear:.1}x)"
                );
            }
        }
        let throttled_runs = runs.iter().filter(|r| r.throttle != "none").count();
        let sites_rows = runs.iter().filter(|r| r.sites != SITES).count();
        if throttled_runs == 0 {
            eprintln!("CHECK FAIL: no throttled storage-affinity run");
            ok = false;
        } else {
            println!("CHECK PASS: {throttled_runs} throttled storage-affinity runs");
        }
        if sites_rows == 0 {
            eprintln!("CHECK FAIL: sites sweep did not run");
            ok = false;
        } else {
            println!("CHECK PASS: sites sweep covered {sites_rows} configurations");
        }
        if args.smoke {
            // The smoke sweep is too small for the asymptotics to show,
            // and millisecond-scale wall-clock ratios flake on loaded CI
            // runners — only assert the comparison *ran* and both paths
            // simulated the same event count (same decisions).
            for &(strategy, _, _, _) in &speedups {
                let events = |mode: EvalMode| {
                    runs.iter()
                        .find(|r| {
                            r.workers == compare_at
                                && r.sites == SITES
                                && r.strategy == strategy
                                && r.mode == mode
                                && r.throttle == "none"
                        })
                        .map(|r| r.events)
                };
                if events(EvalMode::Naive) == events(EvalMode::Incremental) {
                    println!("CHECK PASS: {strategy} naive/incremental event counts match");
                } else {
                    eprintln!("CHECK FAIL: {strategy} naive/incremental event counts differ");
                    ok = false;
                }
            }
            if speedups.is_empty() {
                eprintln!("CHECK FAIL: naive comparison did not run");
                ok = false;
            }
        } else {
            for &(strategy, _, _, speedup) in &speedups {
                if speedup < 5.0 {
                    eprintln!("CHECK FAIL: {strategy} speedup {speedup:.1}x < 5x");
                    ok = false;
                } else {
                    println!("CHECK PASS: {strategy} incremental ≥ 5x naive");
                }
            }
            // The replica storm must be cut ≥ 10x in events at the largest
            // scale where the uncapped baseline ran.
            if let Some((w, (ue, _, _), (te, _, _))) = storm {
                if w >= 100_000 && te.saturating_mul(10) > ue {
                    eprintln!(
                        "CHECK FAIL: throttle cut events only {ue} -> {te} at {w} workers (< 10x)"
                    );
                    ok = false;
                } else {
                    println!(
                        "CHECK PASS: throttle events {ue} -> {te} at {w} workers ({:.1}x)",
                        ue as f64 / te.max(1) as f64
                    );
                }
            }
        }
        // Telemetry inertness at bench scale: the traced run must have
        // dispatched bit-identical events. Deterministic — no noise.
        let (_, _, traced_events, disabled_events) = overhead;
        if traced_events == disabled_events {
            println!("CHECK PASS: traced run events match disabled run ({traced_events})");
        } else {
            eprintln!(
                "CHECK FAIL: telemetry perturbed the run: {disabled_events} events \
                 disabled vs {traced_events} traced"
            );
            ok = false;
        }
        // The digest witnesses dispatch *order*, not just the count.
        if digest_identical {
            println!("CHECK PASS: repeat-run event digests byte-identical");
        } else {
            eprintln!("CHECK FAIL: repeat runs produced different event digests");
            ok = false;
        }
        // Rank maintenance stays amortized-O(1) per rank entry: lazy
        // deletion evicts each completed task from each of the S per-site
        // ranks exactly once, so total repairs are bounded by rank
        // insertions (tasks × S) and the per-(pick × site) rate stays flat
        // as S grows — no stale entry is ever re-scanned after repair.
        // Instrument counts are deterministic, so this cannot flake.
        let complexity_tasks = complexity_workload.task_count() as u64;
        if let (Some(lo), Some(hi)) = (complexity.first(), complexity.last()) {
            if lo.sites != hi.sites {
                let norm = |p: &ComplexityPoint| p.repairs_per_pick() / p.sites as f64;
                let (n_lo, n_hi) = (norm(lo), norm(hi));
                if hi.picks == 0 || lo.picks == 0 {
                    eprintln!("CHECK FAIL: complexity sweep recorded no ranked picks");
                    ok = false;
                } else if n_hi > 2.0 * n_lo + 0.5 {
                    eprintln!(
                        "CHECK FAIL: repairs per (pick x site) grows with sites: \
                         {n_lo:.3} @ {} -> {n_hi:.3} @ {} sites",
                        lo.sites, hi.sites
                    );
                    ok = false;
                } else {
                    println!(
                        "CHECK PASS: repairs per (pick x site) flat ({n_lo:.3} @ {} -> \
                         {n_hi:.3} @ {} sites)",
                        lo.sites, hi.sites
                    );
                }
            }
        }
        for p in &complexity {
            if p.repairs > complexity_tasks * p.sites as u64 {
                eprintln!(
                    "CHECK FAIL: {} repairs exceed the insertion bound {} at {} sites \
                     (a stale entry was repaired twice)",
                    p.repairs,
                    complexity_tasks * p.sites as u64,
                    p.sites
                );
                ok = false;
            }
        }
        // Solver work tracks concurrency: recomputes fire on every flow
        // arrival/departure, so the per-recompute flow count must reach at
        // least the probe-sampled in-flight peak at every site count.
        for p in &complexity {
            if p.recomputes == 0 {
                eprintln!("CHECK FAIL: no solver recomputes at {} sites", p.sites);
                ok = false;
            } else if p.touched_max < p.probe_max_flows {
                eprintln!(
                    "CHECK FAIL: solver touched-flow max {} below sampled in-flight \
                     peak {} at {} sites",
                    p.touched_max, p.probe_max_flows, p.sites
                );
                ok = false;
            }
        }
        if complexity
            .iter()
            .all(|p| p.recomputes > 0 && p.touched_max >= p.probe_max_flows)
        {
            println!(
                "CHECK PASS: solver touched flows track concurrency at all {} site counts",
                complexity.len()
            );
        }
        // Disabled-telemetry wall-time guard: total sweep time vs the
        // previous BENCH_scale.json, compared only like-for-like (same
        // sweep shape and seed). Shared CI runners are noisy, so the smoke
        // gate is loose (1.5x — still catches accidentally always-on
        // telemetry, which costs far more than noise) while the full run
        // enforces the 3% budget.
        match baseline {
            Some(ref b) if b.worker_sweep == list_string(&sweep) && b.seed == args.seed => {
                let ratio = total_wall_s / b.total_wall_s.max(1e-9);
                let limit = if args.smoke { 1.5 } else { 1.03 };
                if ratio > limit {
                    eprintln!(
                        "CHECK FAIL: total wall {total_wall_s:.2}s is {ratio:.2}x the \
                         previous baseline {:.2}s (limit {limit:.2}x)",
                        b.total_wall_s
                    );
                    ok = false;
                } else {
                    println!(
                        "CHECK PASS: total wall {total_wall_s:.2}s within {limit:.2}x of \
                         baseline {:.2}s ({ratio:.2}x)",
                        b.total_wall_s
                    );
                }
            }
            Some(_) => {
                println!("CHECK SKIP: baseline has a different sweep shape or seed");
            }
            None => {
                println!(
                    "CHECK SKIP: no comparable total_wall_s baseline in {}",
                    args.out.display()
                );
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "CHECK PASS: all {} runs completed their workload",
            runs.len()
        );
    }
}

/// One point of the instrumented sites sweep: deterministic hot-path
/// instrument readings at a fixed worker count.
struct ComplexityPoint {
    sites: usize,
    events: u64,
    picks: u64,
    repairs: u64,
    recomputes: u64,
    touched_count: u64,
    touched_sum: u64,
    touched_max: u64,
    probe_max_flows: u64,
}

impl ComplexityPoint {
    fn repairs_per_pick(&self) -> f64 {
        self.repairs as f64 / (self.picks as f64).max(1.0)
    }

    fn touched_mean(&self) -> f64 {
        self.touched_sum as f64 / (self.touched_count as f64).max(1.0)
    }
}

/// The fields of a previous `BENCH_scale.json` the regression guard needs.
struct Baseline {
    total_wall_s: f64,
    seed: u64,
    worker_sweep: String,
}

/// Extracts the guard fields from a previous report. Hand-rolled (the
/// workspace carries no JSON dependency); returns `None` when any field is
/// missing — e.g. a baseline written before `total_wall_s` existed.
fn parse_baseline(json: &str) -> Option<Baseline> {
    fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
        let start = json.find(key)? + key.len();
        let rest = &json[start..];
        let end = rest.find([',', '\n', '}'])?;
        Some(rest[..end].trim())
    }
    let worker_sweep = {
        let key = "\"worker_sweep\": [";
        let start = json.find(key)? + key.len();
        let rest = &json[start..];
        rest[..rest.find(']')?].trim().to_string()
    };
    Some(Baseline {
        total_wall_s: field(json, "\"total_wall_s\": ")?.parse().ok()?,
        seed: field(json, "\"seed\": ")?.parse().ok()?,
        worker_sweep,
    })
}

fn list_string(values: &[usize]) -> String {
    values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// The identity of a measured configuration: one JSON row per key.
fn run_key(r: &Run) -> (usize, usize, StrategyKind, EvalMode, String) {
    (r.workers, r.sites, r.strategy, r.mode, r.throttle.clone())
}

fn push_row(table: &mut Table, run: &Run) {
    table.push_row(vec![
        run.workers.to_string(),
        run.sites.to_string(),
        run.tasks.to_string(),
        run.strategy.to_string(),
        run.mode.to_string(),
        run.throttle.clone(),
        format!("{:.3}", run.wall_s),
        run.events.to_string(),
        format!("{:.0}", run.events_per_s),
    ]);
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    runs: &[Run],
    speedups: &[(StrategyKind, f64, f64, f64)],
    complexity: &[ComplexityPoint],
    overhead: (f64, f64, u64, u64),
    digest_identical: bool,
    total_wall_s: f64,
    sweep: &[usize],
    sites_sweep: &[usize],
    compare_at: usize,
    args: &Args,
) -> String {
    let list = list_string;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"perf_scale\",");
    let _ = writeln!(out, "  \"sites\": {SITES},");
    let _ = writeln!(out, "  \"seed\": {},", args.seed);
    let _ = writeln!(out, "  \"total_wall_s\": {total_wall_s:.6},");
    let _ = writeln!(out, "  \"worker_sweep\": [{}],", list(sweep));
    let _ = writeln!(out, "  \"sites_sweep\": [{}],", list(sites_sweep));
    let _ = writeln!(
        out,
        "  \"throttle\": \"cap={THROTTLE_CAP} site-budget={THROTTLE_SITE_BUDGET}\","
    );
    let _ = writeln!(out, "  \"naive_comparison_at\": {compare_at},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"sites\": {}, \"tasks\": {}, \"strategy\": \"{}\", \
             \"mode\": \"{}\", \"throttle\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_s\": {:.1}, \"makespan_min\": {:.3}, \"tasks_completed\": {}}}{comma}",
            r.workers,
            r.sites,
            r.tasks,
            r.strategy,
            r.mode,
            r.throttle,
            r.wall_s,
            r.events,
            r.events_per_s,
            r.makespan_min,
            r.completed,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedups\": [");
    for (i, &(strategy, naive, inc, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{strategy}\", \"workers\": {compare_at}, \
             \"naive_wall_s\": {naive:.6}, \"incremental_wall_s\": {inc:.6}, \
             \"speedup\": {speedup:.2}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"complexity\": [");
    for (i, p) in complexity.iter().enumerate() {
        let comma = if i + 1 < complexity.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"sites\": {}, \"events\": {}, \"rank_picks\": {}, \
             \"rank_repairs\": {}, \"repairs_per_pick\": {:.4}, \
             \"solver_recomputes\": {}, \"touched_flows_mean\": {:.2}, \
             \"touched_flows_max\": {}, \"probe_max_in_flight\": {}}}{comma}",
            p.sites,
            p.events,
            p.picks,
            p.repairs,
            p.repairs_per_pick(),
            p.recomputes,
            p.touched_mean(),
            p.touched_max,
            p.probe_max_flows,
        );
    }
    let _ = writeln!(out, "  ],");
    let (traced_wall_s, disabled_wall_s, traced_events, disabled_events) = overhead;
    let _ = writeln!(
        out,
        "  \"telemetry_overhead\": {{\"workers\": {compare_at}, \
         \"disabled_wall_s\": {disabled_wall_s:.6}, \"traced_wall_s\": {traced_wall_s:.6}, \
         \"disabled_events\": {disabled_events}, \"traced_events\": {traced_events}, \
         \"digest_identical\": {digest_identical}}}"
    );
    out.push_str("}\n");
    out
}
