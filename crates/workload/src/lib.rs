//! # gridsched-workload — Bag-of-Tasks workloads and the Coadd generator
//!
//! Data-intensive grid applications in the paper are **Bag-of-Tasks** jobs:
//! many independent tasks, each reading a (large, overlapping) set of input
//! files. This crate provides:
//!
//! * [`Workload`], [`TaskSpec`], [`FileId`], [`TaskId`] — the job model,
//! * [`coadd`] — a synthetic generator for the paper's evaluation workload,
//!   **Coadd** (Sloan Digital Sky Survey southern-hemisphere coaddition),
//!   calibrated against the paper's Table 2 and Figure 3,
//! * [`stats`] — files-per-task statistics and the file-reference CDF the
//!   paper plots in Figures 1 and 3,
//! * [`builder`] — generic synthetic workloads (uniform and Zipf file
//!   popularity) for ablations,
//! * [`trace`] — a plain-text trace format to save/load workloads.
//!
//! ## Example
//!
//! ```
//! use gridsched_workload::coadd::CoaddConfig;
//!
//! let wl = CoaddConfig::paper_6000().generate();
//! assert_eq!(wl.task_count(), 6000);
//! let stats = wl.stats();
//! assert!(stats.mean_files_per_task > 70.0 && stats.mean_files_per_task < 90.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod coadd;
pub mod stats;
pub mod trace;
pub mod types;

pub use stats::WorkloadStats;
pub use types::{FileId, TaskId, TaskSpec, Workload};
