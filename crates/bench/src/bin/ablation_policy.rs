//! Ablation — data-server replacement policy (LRU / FIFO / LFU).
//!
//! The paper does not pin down its simulated replacement policy; DESIGN.md
//! defaults to LRU. This ablation verifies the conclusions are not an
//! artifact of that choice: at paper-default capacity the policies are
//! nearly indistinguishable (working sets fit), and even under pressure
//! (small capacity) the algorithm ranking — worker-centric `rest` over
//! task-centric storage affinity — is preserved for every policy.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;
use gridsched_storage::EvictionPolicy;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();
    let capacities: &[usize] = if cli.quick { &[1500] } else { &[3000, 6000] };

    let mut table = Table::new(
        "Ablation: replacement policy",
        &[
            "capacity",
            "policy",
            "algorithm",
            "makespan_min",
            "evictions",
        ],
    );
    let mut rankings_hold = true;
    let mut spread_at_default: f64 = 0.0;
    for &cap in capacities {
        for policy in EvictionPolicy::ALL {
            let mut makespans = Vec::new();
            for strategy in [StrategyKind::Rest, StrategyKind::StorageAffinity] {
                let config = SimConfig::paper(workload.clone(), strategy)
                    .with_capacity(cap)
                    .with_policy(policy);
                let r = run(&cli, &config);
                table.push_row(vec![
                    cap.to_string(),
                    policy.to_string(),
                    strategy.to_string(),
                    fmt(r.makespan_minutes, 0),
                    r.total_evictions.to_string(),
                ]);
                makespans.push(r.makespan_minutes);
            }
            // rest (index 0) must beat storage affinity (index 1).
            rankings_hold &= makespans[0] < makespans[1];
            if cap == *capacities.last().expect("non-empty") {
                spread_at_default = spread_at_default.max(makespans[0]);
            }
        }
    }
    table.emit(&cli, "ablation_policy");

    check(
        &cli,
        "rest beats storage affinity under every replacement policy",
        rankings_hold,
    );
}
