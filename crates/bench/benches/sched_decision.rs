//! §4.4 complexity benchmark — one scheduling decision.
//!
//! The paper: the worker-centric basic algorithm is `O(T·I)` per request
//! (`T` pending tasks, `I` files per task), versus `O(T·I·S)` for
//! task-centric assignment. We measure:
//!
//! * the naive `O(T·I)` weight evaluation (direct file probing),
//! * the indexed `O(T)` evaluation (this library's incremental fast path),
//! * storage affinity's full `O(T·I·S)` assignment phase,
//!
//! at several queue lengths `T`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gridsched_core::index::{weigh_all_indexed, FileIndex, SiteView};
use gridsched_core::weight::weigh_all_naive;
use gridsched_core::{GridEnv, Scheduler, StorageAffinity, TaskPool, WeightMetric};
use gridsched_storage::{EvictionPolicy, SiteStore};
use gridsched_workload::coadd::CoaddConfig;
use gridsched_workload::Workload;

fn warm_store(workload: &Workload, files: usize) -> SiteStore {
    let mut store = SiteStore::new(files.max(1), EvictionPolicy::Lru);
    // Fill with the first tasks' inputs so overlaps are non-trivial.
    'outer: for task in workload.tasks() {
        for &f in task.files() {
            if store.len() >= files {
                break 'outer;
            }
            store.insert(f);
        }
    }
    store
}

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_decision");
    for &tasks in &[500u32, 2000, 6000] {
        let mut cfg = CoaddConfig::paper_6000();
        cfg.tasks = tasks;
        let workload = Arc::new(cfg.generate());
        let store = warm_store(&workload, 3000);
        let pool = TaskPool::full(workload.task_count());
        let index = FileIndex::build(&workload);
        let mut view = SiteView::new(workload.task_count());
        for f in store.resident() {
            view.on_file_added(&index, f, store.ref_count(f));
        }

        for metric in [
            WeightMetric::Overlap,
            WeightMetric::Rest,
            WeightMetric::Combined,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("naive_OTI_{metric}"), tasks),
                &tasks,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(weigh_all_naive(metric, &workload, &pool, &store))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_OT_{metric}"), tasks),
                &tasks,
                |b, _| {
                    b.iter(|| std::hint::black_box(weigh_all_indexed(metric, &index, &pool, &view)))
                },
            );
        }
    }
    group.finish();
}

fn bench_storage_affinity_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_assignment_OTIS");
    group.sample_size(10);
    for &sites in &[10usize, 26] {
        let mut cfg = CoaddConfig::paper_6000();
        cfg.tasks = 2000;
        let workload = Arc::new(cfg.generate());
        let env = GridEnv {
            sites,
            workers_per_site: 1,
            capacity_files: 6000,
        };
        let stores: Vec<SiteStore> = (0..sites)
            .map(|_| SiteStore::new(6000, EvictionPolicy::Lru))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, _| {
            b.iter(|| {
                let mut sched = StorageAffinity::new(workload.clone());
                sched.initialize(&env, &stores);
                std::hint::black_box(sched.unfinished())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision, bench_storage_affinity_assignment);
criterion_main!(benches);
