//! Named instruments: counters and fixed-bucket histograms.
//!
//! Handles are `Option<Rc<…>>` so a disabled instrument costs one branch
//! per record. The [`Registry`] dedupes handles by name: two layers asking
//! for the same instrument share one cell, and the snapshot is stable
//! (sorted by name) for deterministic export.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Number of power-of-two histogram buckets: bucket `k` counts values `v`
/// with `v.ilog2() == k` (bucket 0 additionally holds `v == 0` and
/// `v == 1`), so bucket `k` spans `[2^k, 2^(k+1))`.
pub(crate) const BUCKETS: usize = 33;

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Rc<Cell<u64>>>,
}

impl Counter {
    /// The inert handle: records are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Counter { cell: None }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.set(c.get() + n);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: Cell<u64>,
    sum: Cell<u64>,
    max: Cell<u64>,
    buckets: [Cell<u64>; BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: Cell::new(0),
            sum: Cell::new(0),
            max: Cell::new(0),
            buckets: [(); BUCKETS].map(|()| Cell::new(0)),
        }
    }
}

/// A fixed-bucket (power-of-two) histogram handle. Cloning shares the
/// underlying cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Rc<HistogramCore>>,
}

impl Histogram {
    /// The inert handle: records are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.core {
            h.count.set(h.count.get() + 1);
            h.sum.set(h.sum.get().saturating_add(value));
            if value > h.max.get() {
                h.max.set(value);
            }
            let bucket = if value <= 1 {
                0
            } else {
                (value.ilog2() as usize).min(BUCKETS - 1)
            };
            let b = &h.buckets[bucket];
            b.set(b.get() + 1);
        }
    }

    /// Number of observations (0 when disabled).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |h| h.count.get())
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.core.as_ref().map_or(0, |h| h.sum.get())
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.core.as_ref().map_or(0, |h| h.max.get())
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .as_ref()
            .map_or_else(Vec::new, |h| h.buckets.iter().map(Cell::get).collect())
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Histogram(Histogram),
}

/// The deduplicating instrument registry backing a [`crate::Telemetry`].
#[derive(Debug, Default)]
pub struct Registry {
    by_name: RefCell<BTreeMap<&'static str, Handle>>,
}

impl Registry {
    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.by_name.borrow_mut();
        let h = map.entry(name).or_insert_with(|| {
            Handle::Counter(Counter {
                cell: Some(Rc::new(Cell::new(0))),
            })
        });
        match h {
            Handle::Counter(c) => c.clone(),
            Handle::Histogram(_) => panic!("instrument {name} is a histogram, not a counter"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut map = self.by_name.borrow_mut();
        let h = map.entry(name).or_insert_with(|| {
            Handle::Histogram(Histogram {
                core: Some(Rc::new(HistogramCore::default())),
            })
        });
        match h {
            Handle::Histogram(hist) => hist.clone(),
            Handle::Counter(_) => panic!("instrument {name} is a counter, not a histogram"),
        }
    }

    /// Snapshot of every instrument, sorted by name (BTreeMap order).
    #[must_use]
    pub fn snapshot(&self) -> Vec<InstrumentSnapshot> {
        self.by_name
            .borrow()
            .iter()
            .map(|(&name, h)| InstrumentSnapshot {
                name,
                value: match h {
                    Handle::Counter(c) => InstrumentValue::Counter { value: c.get() },
                    Handle::Histogram(h) => InstrumentValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        buckets: h.bucket_counts(),
                    },
                },
            })
            .collect()
    }
}

/// A point-in-time copy of one instrument's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentSnapshot {
    /// The instrument's registered name.
    pub name: &'static str,
    /// Its value at snapshot time.
    pub value: InstrumentValue,
}

/// The value variants of [`InstrumentSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstrumentValue {
    /// A monotone counter.
    Counter {
        /// Accumulated count.
        value: u64,
    },
    /// A power-of-two-bucket histogram.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Largest observed value.
        max: u64,
        /// Per-bucket observation counts; bucket `k` spans `[2^k, 2^(k+1))`
        /// (bucket 0 also holds zeros).
        buckets: Vec<u64>,
    },
}

impl InstrumentSnapshot {
    /// Activity rank: counter value, or histogram observation count.
    #[must_use]
    pub fn activity(&self) -> u64 {
        match &self.value {
            InstrumentValue::Counter { value } => *value,
            InstrumentValue::Histogram { count, .. } => *count,
        }
    }

    /// Appends this snapshot as one JSONL line (`{"type":"instrument",…}`).
    pub fn write_jsonl_line(&self, out: &mut String) {
        match &self.value {
            InstrumentValue::Counter { value } => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"instrument\",\"kind\":\"counter\",\"name\":\"{}\",\
                     \"value\":{value}}}",
                    self.name
                );
            }
            InstrumentValue::Histogram {
                count,
                sum,
                max,
                buckets,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"instrument\",\"kind\":\"histogram\",\"name\":\"{}\",\
                     \"count\":{count},\"sum\":{sum},\"max\":{max},\"buckets\":[",
                    self.name
                );
                // Sparse emission: only non-empty buckets, as [lo, n] pairs.
                let mut first = true;
                for (k, &n) in buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let lo: u64 = if k == 0 { 0 } else { 1 << k };
                    let _ = write!(out, "[{lo},{n}]");
                }
                out.push_str("]}\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_total_equals_count() {
        let r = Registry::default();
        let h = r.histogram("lens");
        for v in [0, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot();
        let InstrumentValue::Histogram { count, buckets, .. } = &snap[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 9);
        assert_eq!(buckets.iter().sum::<u64>(), *count);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries() {
        let h = Registry::default().histogram("b");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let b = h.bucket_counts();
        assert_eq!(b[0], 2, "0 and 1 share bucket 0");
        assert_eq!(b[1], 2, "2 and 3 in [2,4)");
        assert_eq!(b[2], 1, "4 in [4,8)");
    }

    #[test]
    fn exact_powers_of_two_land_in_their_own_bucket() {
        // Bucket k spans [2^k, 2^(k+1)), so an exact power 2^k opens
        // bucket k and 2^k - 1 still belongs to bucket k-1 (k = 32 is the
        // saturation bucket, entered exactly at 2^32).
        for k in 1..=32u32 {
            let h = Registry::default().histogram("p");
            h.record(1u64 << k);
            h.record((1u64 << k) - 1);
            let b = h.bucket_counts();
            assert_eq!(b[k as usize], 1, "2^{k} must open bucket {k}");
            assert_eq!(b[k as usize - 1], 1, "2^{k} - 1 must stay one bucket below");
        }
    }

    #[test]
    fn extreme_values_saturate_the_top_bucket() {
        let h = Registry::default().histogram("x");
        // Everything with ilog2 >= 32 collapses into the saturation
        // bucket; the sum saturates instead of wrapping.
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(1u64 << 32);
        let b = h.bucket_counts();
        assert_eq!(b[BUCKETS - 1], 4);
        assert_eq!(b.iter().sum::<u64>(), 4);
        assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        assert_eq!(h.max(), u64::MAX);
        // The largest value still inside the second-to-top bucket.
        let h = Registry::default().histogram("y");
        h.record((1u64 << 32) - 1);
        assert_eq!(h.bucket_counts()[BUCKETS - 2], 1);
    }

    #[test]
    fn zero_only_histogram_stays_in_bucket_zero() {
        let h = Registry::default().histogram("z");
        h.record(0);
        h.record(0);
        let b = h.bucket_counts();
        assert_eq!(b[0], 2);
        assert_eq!(b.iter().sum::<u64>(), 2);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_and_sum() {
        let h = Registry::default().histogram("m");
        h.record(2);
        h.record(4);
        assert_eq!(h.sum(), 6);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::default();
        let _ = r.counter("x");
        let _ = r.histogram("x");
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::default();
        let _ = r.counter("zeta");
        let _ = r.counter("alpha");
        let names: Vec<_> = r.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
