//! Dense bitset file sets.
//!
//! [`FileId`]s are dense `u32`s (the workload crate guarantees ids
//! `0..num_files`), so residency can be stored as one bit per file in a
//! `u64`-word array instead of a hash set: membership probes become a
//! shift-and-mask, and overlap cardinality between a task's input set and a
//! site's storage becomes AND + popcount over the handful of words the
//! task's (spatially clustered) files actually touch.
//!
//! Two types cooperate:
//!
//! * [`FileSet`] — a growable dense bitset, the "storage side";
//! * [`FileMask`] — a task's input set pre-lowered to sparse
//!   `(word, bits)` pairs, the "query side". [`FileMask::overlap`] is the
//!   AND+popcount kernel.

use gridsched_workload::FileId;

/// A growable dense bitset over [`FileId`]s.
///
/// # Example
///
/// ```
/// use gridsched_storage::{FileMask, FileSet};
/// use gridsched_workload::FileId;
///
/// let mut set = FileSet::new();
/// set.insert(FileId(3));
/// set.insert(FileId(200));
/// assert!(set.contains(FileId(3)));
/// assert!(!set.contains(FileId(4)));
///
/// let mask = FileMask::new(&[FileId(3), FileId(4), FileId(200)]);
/// assert_eq!(mask.overlap(&set), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSet {
    words: Vec<u64>,
    len: usize,
}

impl FileSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        FileSet::default()
    }

    /// An empty set pre-sized for ids `0..num_files` (avoids regrowth).
    #[must_use]
    pub fn with_capacity(num_files: usize) -> Self {
        FileSet {
            words: vec![0; num_files.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of member files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `file` is a member.
    #[must_use]
    pub fn contains(&self, file: FileId) -> bool {
        let w = file.index() / 64;
        self.words
            .get(w)
            .is_some_and(|bits| bits & (1u64 << (file.index() % 64)) != 0)
    }

    /// Inserts `file`; returns whether it was newly added.
    pub fn insert(&mut self, file: FileId) -> bool {
        let w = file.index() / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (file.index() % 64);
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(newly);
        newly
    }

    /// Removes `file`; returns whether it was a member.
    pub fn remove(&mut self, file: FileId) -> bool {
        let w = file.index() / 64;
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let bit = 1u64 << (file.index() % 64);
        let was = *word & bit != 0;
        *word &= !bit;
        self.len -= usize::from(was);
        was
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(FileId((w as u32) * 64 + b))
            })
        })
    }

    /// The backing words (for [`FileMask::overlap`]).
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A file set pre-lowered to sparse `(word index, bits)` pairs — the query
/// side of AND+popcount overlap counting.
///
/// Built once per task; spatially clustered input sets (adjacent Coadd
/// windows) collapse `|t|` files into `⌈|t|/64⌉`-ish entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMask {
    entries: Vec<(u32, u64)>,
    len: u32,
}

impl FileMask {
    /// Lowers `files` (any order, duplicates ignored) into a mask.
    #[must_use]
    pub fn new(files: &[FileId]) -> Self {
        let mut entries: Vec<(u32, u64)> = Vec::with_capacity(files.len() / 32 + 1);
        let mut len = 0u32;
        for &f in files {
            let w = (f.index() / 64) as u32;
            let bit = 1u64 << (f.index() % 64);
            match entries.iter_mut().find(|(ew, _)| *ew == w) {
                Some((_, bits)) => {
                    len += u32::from(*bits & bit == 0);
                    *bits |= bit;
                }
                None => {
                    entries.push((w, bit));
                    len += 1;
                }
            }
        }
        entries.sort_unstable_by_key(|&(w, _)| w);
        FileMask { entries, len }
    }

    /// Number of files in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the mask is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `|F_t|` against `set`: AND + popcount over the touched words.
    #[must_use]
    pub fn overlap(&self, set: &FileSet) -> usize {
        let words = set.words();
        self.entries
            .iter()
            .map(|&(w, bits)| match words.get(w as usize) {
                Some(&sw) => (sw & bits).count_ones() as usize,
                None => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = FileSet::new();
        assert!(s.insert(f(0)));
        assert!(s.insert(f(65)));
        assert!(!s.insert(f(65)), "double insert");
        assert!(s.contains(f(0)));
        assert!(s.contains(f(65)));
        assert!(!s.contains(f(64)));
        assert!(!s.contains(f(1000)), "beyond allocated words");
        assert_eq!(s.len(), 2);
        assert!(s.remove(f(0)));
        assert!(!s.remove(f(0)), "double remove");
        assert!(!s.remove(f(1000)), "remove beyond words");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_ascending() {
        let mut s = FileSet::with_capacity(300);
        for i in [256u32, 3, 64, 63, 127] {
            s.insert(f(i));
        }
        let got: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(got, vec![3, 63, 64, 127, 256]);
    }

    #[test]
    fn clear_resets() {
        let mut s = FileSet::with_capacity(10);
        s.insert(f(5));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(f(5)));
    }

    #[test]
    fn mask_overlap_counts() {
        let mut s = FileSet::new();
        for i in [1u32, 2, 70, 200] {
            s.insert(f(i));
        }
        let m = FileMask::new(&[f(2), f(3), f(70), f(199)]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.overlap(&s), 2);
        // Mask reaching beyond the set's words.
        let far = FileMask::new(&[f(100_000)]);
        assert_eq!(far.overlap(&s), 0);
    }

    #[test]
    fn mask_dedups() {
        let m = FileMask::new(&[f(7), f(7), f(8)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn mask_matches_probing() {
        // Cross-check AND+popcount against per-file probing on a spread of
        // patterns (including word boundaries).
        let files: Vec<FileId> = (0..400).filter(|i| i % 3 == 0).map(f).collect();
        let mut s = FileSet::new();
        for i in (0..400).filter(|i| i % 5 == 0) {
            s.insert(f(i));
        }
        let m = FileMask::new(&files);
        let probed = files.iter().filter(|&&x| s.contains(x)).count();
        assert_eq!(m.overlap(&s), probed);
    }
}
